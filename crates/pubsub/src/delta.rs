//! Plan deltas: the minimal per-RP forwarding-state diff between two
//! dissemination plans.
//!
//! The membership server of the paper rebuilds and redistributes the whole
//! plan on every change. A [`PlanDelta`] instead captures exactly which
//! [`ForwardingEntry`]s changed at which RPs, so executors (the
//! discrete-event simulator, the live TCP cluster) can repair their
//! forwarding state in place and keep every unaffected link running.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use serde::{Deserialize, Serialize};
use teeve_types::{Quality, SessionId, SiteId, StreamId};

use crate::plan::{DisseminationPlan, ForwardingEntry};

/// One RP's forwarding entry for one stream changing from `old` to `new`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EntryChange {
    /// The RP whose forwarding table changes.
    pub site: SiteId,
    /// The stream whose entry changes.
    pub stream: StreamId,
    /// The entry before the change; `None` when the entry is new.
    pub old: Option<ForwardingEntry>,
    /// The entry after the change; `None` when the entry is removed.
    pub new: Option<ForwardingEntry>,
}

impl EntryChange {
    /// Returns true when the change only moves quality rungs — the
    /// entry's own delivery rung and/or the rungs on its child links:
    /// the stream keeps its parent and child *sites*, so applying it can
    /// never open or close a connection.
    pub fn is_quality_only(&self) -> bool {
        match (&self.old, &self.new) {
            (Some(old), Some(new)) => {
                old != new
                    && old.parent == new.parent
                    && old.children.len() == new.children.len()
                    && old
                        .children
                        .iter()
                        .zip(&new.children)
                        .all(|(a, b)| a.site == b.site)
            }
            _ => false,
        }
    }
}

/// One surviving subscription's quality rung moving between plan
/// revisions, as reported by [`PlanDelta::quality_changes`]. Entries
/// appearing or disappearing are *structural* changes (the link-level
/// `edges_added`/`edges_removed` dimension), not quality moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QualityChange {
    /// The receiving RP.
    pub site: SiteId,
    /// The stream whose delivery quality changes.
    pub stream: StreamId,
    /// Quality rung before the change.
    pub from: Quality,
    /// Quality rung after the change.
    pub to: Quality,
}

/// Error produced when applying a delta to a plan it does not match.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// A change references a site outside the plan.
    SiteOutOfRange {
        /// The offending site.
        site: SiteId,
        /// The plan's site count.
        sites: usize,
    },
    /// The plan's current entry does not match the change's `old` state:
    /// the delta was produced against a different plan revision.
    StaleEntry {
        /// The RP whose entry mismatched.
        site: SiteId,
        /// The stream whose entry mismatched.
        stream: StreamId,
    },
    /// The delta and the plan belong to different hosted sessions: a
    /// multi-session executor was handed another session's delta.
    ScopeMismatch {
        /// The session the delta is scoped to, if any.
        delta: Option<SessionId>,
        /// The session the plan is scoped to, if any.
        plan: Option<SessionId>,
    },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::SiteOutOfRange { site, sites } => {
                write!(f, "delta references {site} outside plan of {sites} sites")
            }
            DeltaError::StaleEntry { site, stream } => {
                write!(f, "delta is stale at {site} for {stream}")
            }
            DeltaError::ScopeMismatch { delta, plan } => {
                let name = |s: &Option<SessionId>| {
                    s.map_or_else(|| "unscoped".to_string(), |id| id.to_string())
                };
                write!(
                    f,
                    "delta for {} cannot apply to a plan of {}",
                    name(delta),
                    name(plan)
                )
            }
        }
    }
}

impl std::error::Error for DeltaError {}

/// An ordered set of forwarding-entry changes turning one plan revision
/// into the next.
///
/// # Examples
///
/// ```
/// use teeve_overlay::{OverlayManager, ProblemInstance};
/// use teeve_pubsub::{DisseminationPlan, PlanDelta, StreamProfile};
/// use teeve_types::{CostMatrix, CostMs, Degree, SiteId, StreamId};
///
/// let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(5));
/// let problem = ProblemInstance::builder(costs, CostMs::new(50))
///     .symmetric_capacities(Degree::new(4))
///     .streams_per_site(&[1, 0, 0])
///     .subscribe(SiteId::new(1), StreamId::new(SiteId::new(0), 0))
///     .subscribe(SiteId::new(2), StreamId::new(SiteId::new(0), 0))
///     .build()?;
/// let mut manager = OverlayManager::new(problem.clone());
/// let profile = StreamProfile::default();
/// let before =
///     DisseminationPlan::from_forest(&problem, &manager.forest_snapshot(), profile);
/// manager.subscribe(SiteId::new(1), StreamId::new(SiteId::new(0), 0))?;
/// let mut after =
///     DisseminationPlan::from_forest(&problem, &manager.forest_snapshot(), profile);
/// after.set_revision(before.revision() + 1);
///
/// let delta = PlanDelta::diff(&before, &after);
/// assert!(!delta.is_empty());
/// let mut patched = before.clone();
/// delta.apply(&mut patched)?;
/// assert_eq!(patched, after);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanDelta {
    changes: Vec<EntryChange>,
    /// The plan revision this delta was diffed against.
    from_revision: u64,
    /// The revision a plan reaches once this delta is applied.
    to_revision: u64,
    /// The hosted session both plan revisions belong to, inherited from
    /// the diffed plans. Deltas of different sessions never apply to each
    /// other's forwarding state; a [`DeltaRouter`] dispatches on this tag.
    scope: Option<SessionId>,
}

impl PlanDelta {
    /// Computes the entry-level diff turning `old` into `new`.
    ///
    /// The delta is tagged with revisions: it applies *from* `old`'s
    /// revision and advances *to* `new`'s revision, or to `old`'s
    /// revision + 1 when the caller never stamped `new` (fresh plans all
    /// start at revision 0).
    ///
    /// # Panics
    ///
    /// Panics if the plans cover different site counts, or if their
    /// session scopes disagree — different scopes, or one scoped and one
    /// not (deltas only make sense between revisions of one session, and
    /// a half-stamped pair means a plan missed its stamp; silently
    /// minting a scoped delta from it would defeat the scope checks).
    pub fn diff(old: &DisseminationPlan, new: &DisseminationPlan) -> PlanDelta {
        assert_eq!(
            old.site_count(),
            new.site_count(),
            "plan revisions must cover the same sites"
        );
        assert_eq!(
            old.scope(),
            new.scope(),
            "plan revisions must belong to the same session"
        );
        let scope = old.scope();
        let from_revision = old.revision();
        let to_revision = new.revision().max(from_revision + 1);
        let mut changes = Vec::new();
        for (old_sp, new_sp) in old.site_plans().iter().zip(new.site_plans()) {
            let streams: BTreeSet<StreamId> = old_sp
                .entries
                .iter()
                .chain(&new_sp.entries)
                .map(|e| e.stream)
                .collect();
            for stream in streams {
                let old_entry = old_sp.entry(stream).cloned();
                let new_entry = new_sp.entry(stream).cloned();
                if old_entry != new_entry {
                    changes.push(EntryChange {
                        site: old_sp.site,
                        stream,
                        old: old_entry,
                        new: new_entry,
                    });
                }
            }
        }
        PlanDelta {
            changes,
            from_revision,
            to_revision,
            scope,
        }
    }

    /// Returns the changes, ordered by site then stream.
    pub fn changes(&self) -> &[EntryChange] {
        &self.changes
    }

    /// Returns the hosted session this delta is scoped to, if any.
    pub fn scope(&self) -> Option<SessionId> {
        self.scope
    }

    /// Returns the plan revision this delta was produced against.
    pub fn from_revision(&self) -> u64 {
        self.from_revision
    }

    /// Returns the revision a plan reaches once this delta is applied.
    pub fn to_revision(&self) -> u64 {
        self.to_revision
    }

    /// Returns the number of changed entries.
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// Returns true when the revisions were identical.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Returns the sites whose forwarding tables change.
    pub fn touched_sites(&self) -> BTreeSet<SiteId> {
        self.changes.iter().map(|c| c.site).collect()
    }

    /// Returns every *surviving* subscription whose delivery quality rung
    /// moves under this delta — the quality dimension of the diff,
    /// alongside the link-level `edges_added`/`edges_removed` views.
    /// Entries appearing or disappearing are structural and not reported
    /// here, so a purely structural delta has no quality changes.
    pub fn quality_changes(&self) -> Vec<QualityChange> {
        self.changes
            .iter()
            .filter_map(|c| {
                let from = c.old.as_ref()?.quality;
                let to = c.new.as_ref()?.quality;
                (from != to).then_some(QualityChange {
                    site: c.site,
                    stream: c.stream,
                    from,
                    to,
                })
            })
            .collect()
    }

    /// Returns true when this non-empty delta *only* re-stamps quality
    /// rungs: every change keeps its entry's parent and children, so the
    /// delta is provably socket-free — a live cluster applies it with
    /// `Reconfigure` orders alone, opening and closing nothing.
    pub fn is_quality_only(&self) -> bool {
        !self.changes.is_empty() && self.changes.iter().all(EntryChange::is_quality_only)
    }

    /// Returns the directed overlay edges `(parent, child, stream)` that
    /// exist after the delta but not before it.
    pub fn edges_added(&self) -> Vec<(SiteId, SiteId, StreamId)> {
        self.edge_diff(|c| (&c.old, &c.new))
    }

    /// Returns the directed overlay edges removed by the delta.
    pub fn edges_removed(&self) -> Vec<(SiteId, SiteId, StreamId)> {
        self.edge_diff(|c| (&c.new, &c.old))
    }

    fn edge_diff<'c>(
        &'c self,
        select: impl Fn(&'c EntryChange) -> (&'c Option<ForwardingEntry>, &'c Option<ForwardingEntry>),
    ) -> Vec<(SiteId, SiteId, StreamId)> {
        let mut edges = Vec::new();
        for change in &self.changes {
            let (before, after) = select(change);
            let before_children: BTreeSet<SiteId> = before
                .iter()
                .flat_map(|e| e.children.iter().map(|c| c.site))
                .collect();
            for child in after.iter().flat_map(|e| &e.children) {
                if !before_children.contains(&child.site) {
                    edges.push((change.site, child.site, change.stream));
                }
            }
        }
        edges
    }

    /// Applies the delta to `plan` in place, advancing the plan's
    /// revision to [`to_revision`](Self::to_revision) on success.
    ///
    /// Every change is validated against the plan's current entry first,
    /// so a stale delta (produced against a different revision) is
    /// rejected before anything is mutated. The entry-level check is
    /// authoritative; the revision tags are control-plane metadata that
    /// live executors (the TCP cluster) additionally enforce before
    /// pushing a delta at running rendezvous points.
    ///
    /// A session-scoped plan only accepts deltas carrying the *same*
    /// scope: a foreign-session delta and an unscoped delta are both
    /// rejected, since a scoped runtime stamps everything it emits — an
    /// unscoped delta cannot be this session's. Unscoped plans accept
    /// any delta (single-session executors keep working unchanged).
    ///
    /// # Errors
    ///
    /// Returns an error if the plan is scoped and the delta does not
    /// share its scope, a change references an unknown site, or its
    /// `old` state disagrees with the plan.
    pub fn apply(&self, plan: &mut DisseminationPlan) -> Result<(), DeltaError> {
        if let Some(plan_scope) = plan.scope() {
            if self.scope != Some(plan_scope) {
                return Err(DeltaError::ScopeMismatch {
                    delta: self.scope,
                    plan: Some(plan_scope),
                });
            }
        }
        let sites = plan.site_count();
        for change in &self.changes {
            if change.site.index() >= sites {
                return Err(DeltaError::SiteOutOfRange {
                    site: change.site,
                    sites,
                });
            }
            let current = plan.site_plan(change.site).entry(change.stream);
            if current != change.old.as_ref() {
                return Err(DeltaError::StaleEntry {
                    site: change.site,
                    stream: change.stream,
                });
            }
        }
        for change in &self.changes {
            match &change.new {
                Some(entry) => plan.upsert_entry(change.site, entry.clone()),
                None => {
                    plan.remove_entry(change.site, change.stream);
                }
            }
        }
        // Revisions only ever advance: a replayed old delta that passes
        // the entry-level validation vacuously (e.g. an empty quiet-epoch
        // delta) must not rewind a newer plan.
        if self.to_revision > plan.revision() {
            plan.set_revision(self.to_revision);
        }
        Ok(())
    }
}

/// An executor that plan deltas can be pushed into as they are produced:
/// the delta-aware simulator, the live TCP cluster (both the in-process
/// `LiveCluster` wrapper and the wire-only `Coordinator` driving a fleet
/// of RP processes by address), or a test recorder.
///
/// The session runtime's epoch driver
/// (`teeve_runtime::SessionRuntime::drive_epochs`) is generic over this
/// trait, so the same churn trace can exercise any executor.
pub trait DeltaSink {
    /// Error the executor produces when a delta cannot be applied.
    type Error;

    /// Applies one plan delta to the running executor.
    ///
    /// # Errors
    ///
    /// Returns the executor's error when the delta does not apply (stale
    /// revision, dead links, …).
    fn apply_delta(&mut self, delta: &PlanDelta) -> Result<(), Self::Error>;
}

impl DeltaSink for DisseminationPlan {
    type Error = DeltaError;

    fn apply_delta(&mut self, delta: &PlanDelta) -> Result<(), Self::Error> {
        delta.apply(self)
    }
}

/// Error produced by a [`DeltaRouter`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError<E> {
    /// The delta carried no session scope, so it cannot be routed.
    Unscoped,
    /// The delta's session has no registered executor.
    UnknownSession(SessionId),
    /// The routed executor rejected the delta.
    Sink(E),
}

impl<E: fmt::Display> fmt::Display for RouteError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::Unscoped => write!(f, "delta carries no session scope"),
            RouteError::UnknownSession(id) => write!(f, "no executor registered for {id}"),
            RouteError::Sink(e) => write!(f, "executor rejected the delta: {e}"),
        }
    }
}

impl<E: std::error::Error + 'static> std::error::Error for RouteError<E> {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RouteError::Sink(e) => Some(e),
            RouteError::Unscoped | RouteError::UnknownSession(_) => None,
        }
    }
}

/// Routes session-scoped plan deltas to per-session executors.
///
/// A multi-session membership service emits one delta stream per hosted
/// session; each delta is stamped with its [`SessionId`] scope. A
/// `DeltaRouter` holds one executor per session (a live TCP cluster, the
/// wire-only coordinator of an external RP fleet, a shadow plan, the
/// simulator's replanner, …) and dispatches every delta on its scope, so
/// a single executor process can serve many sessions concurrently
/// without their forwarding state bleeding into each other.
///
/// The router is itself a [`DeltaSink`], so it drops straight into
/// `SessionRuntime::drive_epochs` or a service's delta fan-out.
#[derive(Debug, Default, Clone)]
pub struct DeltaRouter<S> {
    routes: BTreeMap<SessionId, S>,
}

impl<S> DeltaRouter<S> {
    /// Creates an empty router.
    pub fn new() -> Self {
        DeltaRouter {
            routes: BTreeMap::new(),
        }
    }

    /// Registers (or replaces) the executor of `session`, returning the
    /// previous one if it existed.
    pub fn register(&mut self, session: SessionId, sink: S) -> Option<S> {
        self.routes.insert(session, sink)
    }

    /// Removes and returns the executor of `session`.
    pub fn unregister(&mut self, session: SessionId) -> Option<S> {
        self.routes.remove(&session)
    }

    /// Returns the executor of `session`, if registered.
    pub fn get(&self, session: SessionId) -> Option<&S> {
        self.routes.get(&session)
    }

    /// Returns the executor of `session` mutably, if registered.
    pub fn get_mut(&mut self, session: SessionId) -> Option<&mut S> {
        self.routes.get_mut(&session)
    }

    /// Returns the registered sessions, ascending.
    pub fn sessions(&self) -> impl Iterator<Item = SessionId> + '_ {
        self.routes.keys().copied()
    }

    /// Returns the number of registered executors.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Returns true when no executor is registered.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }
}

impl<S: DeltaSink> DeltaSink for DeltaRouter<S> {
    type Error = RouteError<S::Error>;

    fn apply_delta(&mut self, delta: &PlanDelta) -> Result<(), Self::Error> {
        let session = delta.scope().ok_or(RouteError::Unscoped)?;
        self.routes
            .get_mut(&session)
            .ok_or(RouteError::UnknownSession(session))?
            .apply_delta(delta)
            .map_err(RouteError::Sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StreamProfile;
    use teeve_overlay::{OverlayManager, ProblemInstance};
    use teeve_types::{CostMatrix, CostMs, Degree};

    fn site(i: u32) -> SiteId {
        SiteId::new(i)
    }

    fn stream(origin: u32, q: u32) -> StreamId {
        StreamId::new(site(origin), q)
    }

    fn problem() -> ProblemInstance {
        let costs = CostMatrix::from_fn(4, |_, _| CostMs::new(3));
        ProblemInstance::builder(costs, CostMs::new(50))
            .symmetric_capacities(Degree::new(3))
            .streams_per_site(&[1, 1, 0, 0])
            .subscribe(site(1), stream(0, 0))
            .subscribe(site(2), stream(0, 0))
            .subscribe(site(3), stream(0, 0))
            .subscribe(site(2), stream(1, 0))
            .build()
            .unwrap()
    }

    fn plan_of(problem: &ProblemInstance, manager: &OverlayManager) -> DisseminationPlan {
        DisseminationPlan::from_forest(
            problem,
            &manager.forest_snapshot(),
            StreamProfile::default(),
        )
    }

    #[test]
    fn diff_of_identical_plans_is_empty() {
        let p = problem();
        let m = OverlayManager::new(p.clone());
        let plan = plan_of(&p, &m);
        let delta = PlanDelta::diff(&plan, &plan);
        assert!(delta.is_empty());
        assert_eq!(delta.len(), 0);
        assert!(delta.touched_sites().is_empty());
    }

    #[test]
    fn apply_reproduces_the_target_plan() {
        let p = problem();
        let mut m = OverlayManager::new(p.clone());
        let before = plan_of(&p, &m);
        m.subscribe(site(1), stream(0, 0)).unwrap();
        m.subscribe(site(2), stream(0, 0)).unwrap();
        m.subscribe(site(2), stream(1, 0)).unwrap();
        let mut after = plan_of(&p, &m);
        after.set_revision(before.revision() + 1);

        let delta = PlanDelta::diff(&before, &after);
        assert!(!delta.is_empty());
        assert_eq!(delta.from_revision(), before.revision());
        assert_eq!(delta.to_revision(), after.revision());
        let mut patched = before.clone();
        delta.apply(&mut patched).unwrap();
        assert_eq!(patched, after);
        assert_eq!(patched.revision(), delta.to_revision());
    }

    #[test]
    fn unsubscribe_deltas_apply_too() {
        let p = problem();
        let mut m = OverlayManager::new(p.clone());
        m.subscribe(site(1), stream(0, 0)).unwrap();
        m.subscribe(site(2), stream(0, 0)).unwrap();
        let before = plan_of(&p, &m);
        m.unsubscribe(site(1), stream(0, 0)).unwrap();
        let mut after = plan_of(&p, &m);
        after.set_revision(before.revision() + 1);

        let delta = PlanDelta::diff(&before, &after);
        let mut patched = before.clone();
        delta.apply(&mut patched).unwrap();
        assert_eq!(patched, after);
    }

    #[test]
    fn stale_empty_deltas_never_rewind_the_revision() {
        // An empty delta passes entry validation vacuously whatever its
        // revisions; a plan already past its target must stay put.
        let p = problem();
        let m = OverlayManager::new(p.clone());
        let mut plan = plan_of(&p, &m);
        plan.set_revision(99);
        PlanDelta::default().apply(&mut plan).unwrap();
        assert_eq!(plan.revision(), 99, "to_revision 0 must not rewind");
        let mut old = plan_of(&p, &m);
        old.set_revision(3);
        let quiet = PlanDelta::diff(&old, &old);
        assert_eq!(quiet.to_revision(), 4);
        quiet.apply(&mut plan).unwrap();
        assert_eq!(plan.revision(), 99, "old quiet epochs must not rewind");
    }

    #[test]
    fn unstamped_targets_still_advance_one_revision() {
        // Plans derived outside the runtime are never revision-stamped;
        // the delta still advances the applied plan by one.
        let p = problem();
        let mut m = OverlayManager::new(p.clone());
        let before = plan_of(&p, &m);
        m.subscribe(site(1), stream(0, 0)).unwrap();
        let after = plan_of(&p, &m);
        assert_eq!(after.revision(), 0);
        let delta = PlanDelta::diff(&before, &after);
        assert_eq!(delta.from_revision(), 0);
        assert_eq!(delta.to_revision(), 1);
        let mut patched = before.clone();
        patched.apply_delta(&delta).unwrap();
        assert_eq!(patched.revision(), 1);
    }

    #[test]
    fn stale_deltas_are_rejected_before_mutation() {
        let p = problem();
        let mut m = OverlayManager::new(p.clone());
        let empty = plan_of(&p, &m);
        m.subscribe(site(1), stream(0, 0)).unwrap();
        let one = plan_of(&p, &m);
        m.subscribe(site(2), stream(0, 0)).unwrap();
        let two = plan_of(&p, &m);

        // A delta from `one` to `two` cannot apply to `empty`.
        let delta = PlanDelta::diff(&one, &two);
        let mut target = empty.clone();
        let err = delta.apply(&mut target).unwrap_err();
        assert!(matches!(err, DeltaError::StaleEntry { .. }));
        assert_eq!(target, empty, "failed application must not mutate");
    }

    #[test]
    fn quality_only_deltas_are_well_formed_and_socket_free() {
        use teeve_types::Quality;
        let p = problem();
        let mut m = OverlayManager::new(p.clone());
        m.subscribe(site(1), stream(0, 0)).unwrap();
        m.subscribe(site(2), stream(0, 0)).unwrap();
        let before = plan_of(&p, &m);

        // Same forest, one subscription re-stamped a rung down.
        let mut after = before.clone();
        assert!(after.set_quality(site(2), stream(0, 0), Quality::new(1)));
        after.set_revision(before.revision() + 1);

        let delta = PlanDelta::diff(&before, &after);
        assert!(!delta.is_empty());
        assert!(delta.is_quality_only(), "only a quality stamp moved");
        // Revision-bumped like any other delta…
        assert_eq!(delta.from_revision(), before.revision());
        assert_eq!(delta.to_revision(), before.revision() + 1);
        // …provably socket-free: the quality dimension reports the move,
        // the link dimension reports nothing.
        assert_eq!(
            delta.quality_changes(),
            vec![QualityChange {
                site: site(2),
                stream: stream(0, 0),
                from: Quality::FULL,
                to: Quality::new(1),
            }]
        );
        assert!(delta.edges_added().is_empty());
        assert!(delta.edges_removed().is_empty());

        let mut patched = before.clone();
        delta.apply(&mut patched).unwrap();
        assert_eq!(patched, after);
        assert_eq!(
            patched.quality_of(site(2), stream(0, 0)),
            Some(Quality::new(1))
        );
    }

    #[test]
    fn mixed_deltas_are_not_quality_only_but_still_report_quality() {
        use teeve_types::Quality;
        let p = problem();
        let mut m = OverlayManager::new(p.clone());
        m.subscribe(site(1), stream(0, 0)).unwrap();
        let before = plan_of(&p, &m);
        // A structural change (site 2 joins) and a quality re-stamp.
        m.subscribe(site(2), stream(0, 0)).unwrap();
        let mut after = plan_of(&p, &m);
        assert!(after.set_quality(site(1), stream(0, 0), Quality::new(2)));

        let delta = PlanDelta::diff(&before, &after);
        assert!(!delta.is_quality_only(), "a new entry is not quality-only");
        // The surviving entry's rung move is reported…
        let changes = delta.quality_changes();
        assert!(changes.contains(&QualityChange {
            site: site(1),
            stream: stream(0, 0),
            from: Quality::FULL,
            to: Quality::new(2),
        }));
        // …but site 2's fresh entry is structural, not a quality move:
        // a purely structural delta reports no quality changes at all.
        assert!(changes.iter().all(|c| c.site != site(2)));
        let structural = PlanDelta::diff(&before, &plan_of(&p, &m));
        assert!(!structural.edges_added().is_empty());
        assert!(structural.quality_changes().is_empty());
        // An empty delta is not "quality only" either.
        assert!(!PlanDelta::default().is_quality_only());
    }

    #[test]
    fn edge_diffs_report_link_changes() {
        let p = problem();
        let mut m = OverlayManager::new(p.clone());
        let before = plan_of(&p, &m);
        m.subscribe(site(1), stream(0, 0)).unwrap();
        let after = plan_of(&p, &m);
        let delta = PlanDelta::diff(&before, &after);
        assert_eq!(delta.edges_added(), vec![(site(0), site(1), stream(0, 0))]);
        assert!(delta.edges_removed().is_empty());

        let reverse = PlanDelta::diff(&after, &before);
        assert_eq!(
            reverse.edges_removed(),
            vec![(site(0), site(1), stream(0, 0))]
        );
        assert!(reverse.edges_added().is_empty());
    }

    #[test]
    fn scoped_plans_stamp_their_deltas() {
        let p = problem();
        let mut m = OverlayManager::new(p.clone());
        let session = SessionId::new(7);
        let mut before = plan_of(&p, &m);
        before.set_scope(Some(session));
        m.subscribe(site(1), stream(0, 0)).unwrap();
        let mut after = plan_of(&p, &m);
        after.set_scope(Some(session));
        after.set_revision(1);

        let delta = PlanDelta::diff(&before, &after);
        assert_eq!(delta.scope(), Some(session));
        let mut patched = before.clone();
        delta.apply(&mut patched).unwrap();
        assert_eq!(patched, after);
        assert_eq!(patched.scope(), Some(session));
    }

    #[test]
    fn foreign_session_deltas_are_rejected_before_entry_checks() {
        let p = problem();
        let mut m = OverlayManager::new(p.clone());
        let mut before = plan_of(&p, &m);
        before.set_scope(Some(SessionId::new(1)));
        m.subscribe(site(1), stream(0, 0)).unwrap();
        let mut after = plan_of(&p, &m);
        after.set_scope(Some(SessionId::new(1)));
        let delta = PlanDelta::diff(&before, &after);

        // The same forwarding state under another session's scope: the
        // entries would validate, the scope must not.
        let mut foreign = before.clone();
        foreign.set_scope(Some(SessionId::new(2)));
        let err = delta.apply(&mut foreign).unwrap_err();
        assert_eq!(
            err,
            DeltaError::ScopeMismatch {
                delta: Some(SessionId::new(1)),
                plan: Some(SessionId::new(2)),
            }
        );
        // An *unscoped* delta is just as foreign to a scoped plan: the
        // plan's own runtime stamps everything it emits, so an unstamped
        // delta cannot be this session's.
        let mut unscoped_before = before.clone();
        unscoped_before.set_scope(None);
        let mut unscoped_after = after.clone();
        unscoped_after.set_scope(None);
        let unscoped_delta = PlanDelta::diff(&unscoped_before, &unscoped_after);
        let err = delta_target_scoped(&unscoped_delta, &before);
        assert_eq!(
            err,
            DeltaError::ScopeMismatch {
                delta: None,
                plan: Some(SessionId::new(1)),
            }
        );
        // Unscoped plans accept scoped deltas (executors that never
        // registered a scope keep working as before).
        let mut unscoped = before.clone();
        unscoped.set_scope(None);
        delta.apply(&mut unscoped).unwrap();
    }

    /// Applies `delta` to a clone of the scoped `plan`, returning the
    /// expected rejection.
    fn delta_target_scoped(delta: &PlanDelta, plan: &DisseminationPlan) -> DeltaError {
        let mut target = plan.clone();
        delta.apply(&mut target).unwrap_err()
    }

    #[test]
    #[should_panic(expected = "same session")]
    fn diffing_a_scoped_plan_against_an_unscoped_one_panics() {
        // A half-stamped pair means a plan missed its scope stamp; diff
        // must refuse to mint a scoped delta out of it.
        let p = problem();
        let m = OverlayManager::new(p.clone());
        let unscoped = plan_of(&p, &m);
        let mut scoped = unscoped.clone();
        scoped.set_scope(Some(SessionId::new(3)));
        let _ = PlanDelta::diff(&unscoped, &scoped);
    }

    #[test]
    fn router_dispatches_deltas_to_their_sessions() {
        let p = problem();
        let a = SessionId::new(0);
        let b = SessionId::new(1);

        // Two independent sessions over the same universe, one router.
        let mut router: DeltaRouter<DisseminationPlan> = DeltaRouter::new();
        let mut managers = Vec::new();
        for (id, subscriber) in [(a, site(1)), (b, site(2))] {
            let m = OverlayManager::new(p.clone());
            let mut plan = plan_of(&p, &m);
            plan.set_scope(Some(id));
            router.register(id, plan);
            managers.push((id, subscriber, m));
        }
        assert_eq!(router.len(), 2);

        for (id, subscriber, m) in &mut managers {
            let mut before = plan_of(&p, m);
            before.set_scope(Some(*id));
            m.subscribe(*subscriber, stream(0, 0)).unwrap();
            let mut after = plan_of(&p, m);
            after.set_scope(Some(*id));
            after.set_revision(1);
            router
                .apply_delta(&PlanDelta::diff(&before, &after))
                .unwrap();
        }

        // Each session's executor saw exactly its own change.
        assert!(router
            .get(a)
            .unwrap()
            .deliveries_to(site(1))
            .contains(&stream(0, 0)));
        assert!(router.get(a).unwrap().deliveries_to(site(2)).is_empty());
        assert!(router
            .get(b)
            .unwrap()
            .deliveries_to(site(2))
            .contains(&stream(0, 0)));
        assert!(router.get(b).unwrap().deliveries_to(site(1)).is_empty());
    }

    #[test]
    fn router_rejects_unscoped_and_unknown_deltas() {
        let p = problem();
        let mut m = OverlayManager::new(p.clone());
        let before = plan_of(&p, &m);
        m.subscribe(site(1), stream(0, 0)).unwrap();
        let after = plan_of(&p, &m);

        let mut router: DeltaRouter<DisseminationPlan> = DeltaRouter::new();
        let unscoped = PlanDelta::diff(&before, &after);
        assert_eq!(
            router.apply_delta(&unscoped).unwrap_err(),
            RouteError::Unscoped
        );

        let mut scoped_before = before.clone();
        scoped_before.set_scope(Some(SessionId::new(9)));
        let mut scoped_after = after.clone();
        scoped_after.set_scope(Some(SessionId::new(9)));
        let scoped = PlanDelta::diff(&scoped_before, &scoped_after);
        assert_eq!(
            router.apply_delta(&scoped).unwrap_err(),
            RouteError::UnknownSession(SessionId::new(9))
        );
        // Registering the session unblocks it, unregistering re-breaks it.
        router.register(SessionId::new(9), scoped_before.clone());
        router.apply_delta(&scoped).unwrap();
        assert!(router.unregister(SessionId::new(9)).is_some());
        assert!(router.is_empty());
        assert!(matches!(
            router.apply_delta(&scoped).unwrap_err(),
            RouteError::UnknownSession(_)
        ));
    }

    #[test]
    fn delta_serde_roundtrip() {
        let p = problem();
        let mut m = OverlayManager::new(p.clone());
        let before = plan_of(&p, &m);
        m.subscribe(site(3), stream(0, 0)).unwrap();
        let delta = PlanDelta::diff(&before, &plan_of(&p, &m));
        let json = serde_json::to_string(&delta).unwrap();
        let back: PlanDelta = serde_json::from_str(&json).unwrap();
        assert_eq!(back, delta);
    }
}
