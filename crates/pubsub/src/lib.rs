//! The publish-subscribe session layer of the TEEVE reproduction (paper
//! Section 3).
//!
//! 3D cameras are **publishers**, 3D displays are **subscribers**, and each
//! site's **rendezvous point (RP)** decouples them: locally a star network,
//! across sites an overlay dictated by a centralized **membership server**.
//!
//! * [`RendezvousPoint`] — per-site aggregation of display subscriptions;
//! * [`MembershipServer`] — collects all RPs' request sets, runs an overlay
//!   construction algorithm (`teeve-overlay`), and emits the plan;
//! * [`DisseminationPlan`] / [`SitePlan`] / [`ForwardingEntry`] — the
//!   forwarding state each RP executes;
//! * [`Session`] — the user-facing entry point wiring cyber-space geometry
//!   (FOV subscriptions via `teeve-geometry`) to the above;
//! * [`StreamProfile`] — media parameters (bit rate, frame rate) shared by
//!   the dissemination simulator and the live network substrate.
//!
//! # Examples
//!
//! ```
//! use rand::SeedableRng;
//! use teeve_overlay::RandomJoin;
//! use teeve_pubsub::Session;
//! use teeve_types::{CostMatrix, CostMs, Degree, DisplayId, SiteId};
//!
//! // Three sites in a virtual meeting circle, eight cameras each.
//! let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(7));
//! let mut session = Session::builder(costs)
//!     .symmetric_capacity(Degree::new(10))
//!     .build();
//!
//! // Each site's first display watches the next site's participant.
//! for site in SiteId::all(3) {
//!     let target = SiteId::new((site.index() as u32 + 1) % 3);
//!     session.subscribe_viewpoint(DisplayId::new(site, 0), target);
//! }
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//! let (outcome, plan) = session.build_plan(&RandomJoin::default(), &mut rng)?;
//! assert_eq!(outcome.metrics().rejection_ratio(), 0.0);
//! assert_eq!(plan.site_count(), 3);
//! # Ok::<(), teeve_pubsub::MembershipError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod churn;
mod delta;
mod membership;
mod plan;
mod profile;
mod rp;
mod session;

pub use churn::{run_churn, subscription_universe, ChurnError, ChurnEvent, ChurnReport};
pub use delta::{DeltaError, DeltaRouter, DeltaSink, EntryChange, PlanDelta, RouteError};
pub use membership::{MembershipError, MembershipServer};
pub use plan::{ChildLink, DisseminationPlan, ForwardingEntry, SitePlan};
pub use profile::StreamProfile;
pub use rp::RendezvousPoint;
pub use session::{Session, SessionBuilder};
