//! The centralized membership server (paper Section 3.2).
//!
//! "The subscription requests from all displays are collected by the local
//! RP, and further aggregated to a centralized membership server. Based on
//! the global subscription workload, the server dictates all RPs to
//! organize into an application-level overlay network for data
//! dissemination." The centralized design is deliberate: 3DTI sessions are
//! small to medium sized.

use std::collections::BTreeSet;
use std::fmt;

use rand::RngCore;
use serde::{Deserialize, Serialize};
use teeve_overlay::{
    ConstructionAlgorithm, ConstructionOutcome, NodeCapacity, ProblemError, ProblemInstance,
};
use teeve_types::{CostMatrix, CostMs, SiteId, StreamId};

use crate::{DisseminationPlan, StreamProfile};

/// Error produced by the membership server.
#[derive(Debug)]
pub enum MembershipError {
    /// The per-site capacity or stream tables do not cover the same sites
    /// as the cost matrix.
    ShapeMismatch {
        /// Sites covered by the cost matrix.
        sites: usize,
        /// Entries in the capacity table.
        capacities: usize,
        /// Entries in the published-stream-count table.
        streams: usize,
    },
    /// A site registered or submitted with an index outside the session.
    UnknownSite {
        /// The offending site.
        site: SiteId,
        /// Session size.
        sites: usize,
    },
    /// Overlay construction was requested before every site submitted its
    /// request set.
    MissingSubmissions {
        /// Sites that have not submitted yet.
        missing: Vec<SiteId>,
    },
    /// The aggregated workload did not form a valid problem instance.
    Problem(ProblemError),
}

impl fmt::Display for MembershipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MembershipError::ShapeMismatch {
                sites,
                capacities,
                streams,
            } => write!(
                f,
                "tables must cover all {sites} sites \
                 (got {capacities} capacities, {streams} stream counts)"
            ),
            MembershipError::UnknownSite { site, sites } => {
                write!(f, "site {site} outside session of {sites} sites")
            }
            MembershipError::MissingSubmissions { missing } => {
                write!(f, "awaiting request sets from {} sites", missing.len())
            }
            MembershipError::Problem(e) => write!(f, "invalid aggregated workload: {e}"),
        }
    }
}

impl std::error::Error for MembershipError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MembershipError::Problem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProblemError> for MembershipError {
    fn from(e: ProblemError) -> Self {
        MembershipError::Problem(e)
    }
}

/// The centralized membership server: aggregates per-site request sets and
/// turns them into a dissemination plan by running a construction
/// algorithm.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use teeve_overlay::{NodeCapacity, RandomJoin};
/// use teeve_pubsub::{MembershipServer, StreamProfile};
/// use teeve_types::{CostMatrix, CostMs, Degree, SiteId, StreamId};
///
/// let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(5));
/// let mut server = MembershipServer::new(
///     costs,
///     CostMs::new(50),
///     vec![NodeCapacity::symmetric(Degree::new(4)); 3],
///     vec![1, 1, 1],
///     StreamProfile::default(),
/// )?;
/// for site in SiteId::all(3) {
///     let wanted = if site == SiteId::new(0) {
///         vec![StreamId::new(SiteId::new(1), 0)]
///     } else {
///         vec![StreamId::new(SiteId::new(0), 0)]
///     };
///     server.submit_requests(site, wanted.into_iter().collect())?;
/// }
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let (outcome, plan) = server.build_overlay(&RandomJoin::default(), &mut rng)?;
/// assert_eq!(outcome.metrics().rejection_ratio(), 0.0);
/// assert_eq!(plan.site_count(), 3);
/// # Ok::<(), teeve_pubsub::MembershipError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MembershipServer {
    costs: CostMatrix,
    cost_bound: CostMs,
    capacities: Vec<NodeCapacity>,
    streams_per_site: Vec<u32>,
    profile: StreamProfile,
    submissions: Vec<Option<BTreeSet<StreamId>>>,
}

impl MembershipServer {
    /// Creates a server for the session described by the cost matrix,
    /// latency bound, per-site capacities, and per-site published stream
    /// counts.
    ///
    /// # Errors
    ///
    /// Returns [`MembershipError::ShapeMismatch`] if the capacity or
    /// stream tables do not cover the same sites as the cost matrix.
    pub fn new(
        costs: CostMatrix,
        cost_bound: CostMs,
        capacities: Vec<NodeCapacity>,
        streams_per_site: Vec<u32>,
        profile: StreamProfile,
    ) -> Result<Self, MembershipError> {
        let n = costs.len();
        if capacities.len() != n || streams_per_site.len() != n {
            return Err(MembershipError::ShapeMismatch {
                sites: n,
                capacities: capacities.len(),
                streams: streams_per_site.len(),
            });
        }
        Ok(MembershipServer {
            costs,
            cost_bound,
            capacities,
            streams_per_site,
            profile,
            submissions: vec![None; n],
        })
    }

    /// Returns the number of sites in the session.
    pub fn site_count(&self) -> usize {
        self.submissions.len()
    }

    /// Submits (replacing) the aggregated request set of one RP.
    ///
    /// # Errors
    ///
    /// Returns an error if `site` is outside the session.
    pub fn submit_requests(
        &mut self,
        site: SiteId,
        requests: BTreeSet<StreamId>,
    ) -> Result<(), MembershipError> {
        let n = self.site_count();
        if site.index() >= n {
            return Err(MembershipError::UnknownSite { site, sites: n });
        }
        self.submissions[site.index()] = Some(requests);
        Ok(())
    }

    /// Withdraws a departed site's submission, so its stale request set no
    /// longer shapes the aggregated workload. The site drops back into
    /// [`pending_sites`](Self::pending_sites) until it submits again —
    /// exactly what session-lifecycle churn needs when an RP leaves and
    /// may later rejoin.
    ///
    /// # Errors
    ///
    /// Returns an error if `site` is outside the session.
    pub fn withdraw(&mut self, site: SiteId) -> Result<(), MembershipError> {
        let n = self.site_count();
        if site.index() >= n {
            return Err(MembershipError::UnknownSite { site, sites: n });
        }
        self.submissions[site.index()] = None;
        Ok(())
    }

    /// Returns the sites that have not yet submitted a request set.
    pub fn pending_sites(&self) -> Vec<SiteId> {
        self.submissions
            .iter()
            .enumerate()
            .filter(|(_, s)| s.is_none())
            .map(|(i, _)| SiteId::new(i as u32))
            .collect()
    }

    /// Assembles the global subscription workload into a problem instance.
    ///
    /// # Errors
    ///
    /// Returns an error if any site has not submitted or the aggregated
    /// workload is invalid.
    pub fn problem(&self) -> Result<ProblemInstance, MembershipError> {
        let missing = self.pending_sites();
        if !missing.is_empty() {
            return Err(MembershipError::MissingSubmissions { missing });
        }
        let mut builder = ProblemInstance::builder(self.costs.clone(), self.cost_bound)
            .capacities(self.capacities.clone())
            .streams_per_site(&self.streams_per_site);
        for (i, submission) in self.submissions.iter().enumerate() {
            let site = SiteId::new(i as u32);
            for &stream in submission.as_ref().expect("checked above") {
                builder = builder.subscribe(site, stream);
            }
        }
        Ok(builder.build()?)
    }

    /// Runs `algorithm` on the aggregated workload and derives the
    /// dissemination plan the server dictates to all RPs.
    ///
    /// # Errors
    ///
    /// Returns an error if submissions are missing or invalid.
    pub fn build_overlay(
        &self,
        algorithm: &dyn ConstructionAlgorithm,
        rng: &mut dyn RngCore,
    ) -> Result<(ConstructionOutcome, DisseminationPlan), MembershipError> {
        let problem = self.problem()?;
        let outcome = algorithm.construct(&problem, rng);
        let plan = DisseminationPlan::from_forest(&problem, outcome.forest(), self.profile);
        Ok((outcome, plan))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use teeve_overlay::RandomJoin;
    use teeve_types::Degree;

    fn server() -> MembershipServer {
        MembershipServer::new(
            CostMatrix::from_fn(3, |_, _| CostMs::new(4)),
            CostMs::new(40),
            vec![NodeCapacity::symmetric(Degree::new(5)); 3],
            vec![2, 2, 2],
            StreamProfile::default(),
        )
        .expect("tables cover every site")
    }

    fn stream(origin: u32, q: u32) -> StreamId {
        StreamId::new(SiteId::new(origin), q)
    }

    #[test]
    fn requires_all_submissions_before_building() {
        let mut s = server();
        s.submit_requests(SiteId::new(0), BTreeSet::new()).unwrap();
        let err = s.problem().unwrap_err();
        match err {
            MembershipError::MissingSubmissions { missing } => {
                assert_eq!(missing, vec![SiteId::new(1), SiteId::new(2)]);
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn mismatched_tables_are_rejected_at_construction() {
        let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(4));
        let err = MembershipServer::new(
            costs.clone(),
            CostMs::new(40),
            vec![NodeCapacity::symmetric(Degree::new(5)); 2],
            vec![2, 2, 2],
            StreamProfile::default(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            MembershipError::ShapeMismatch {
                sites: 3,
                capacities: 2,
                streams: 3,
            }
        ));
        let err = MembershipServer::new(
            costs,
            CostMs::new(40),
            vec![NodeCapacity::symmetric(Degree::new(5)); 3],
            vec![2, 2],
            StreamProfile::default(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            MembershipError::ShapeMismatch { streams: 2, .. }
        ));
    }

    #[test]
    fn withdraw_clears_a_departed_sites_submission() {
        let mut s = server();
        s.submit_requests(SiteId::new(0), [stream(1, 0)].into())
            .unwrap();
        s.submit_requests(SiteId::new(1), BTreeSet::new()).unwrap();
        s.submit_requests(SiteId::new(2), BTreeSet::new()).unwrap();
        assert!(s.pending_sites().is_empty());

        // Site 0 departs: its stale request set must not linger.
        s.withdraw(SiteId::new(0)).unwrap();
        assert_eq!(s.pending_sites(), vec![SiteId::new(0)]);
        match s.problem().unwrap_err() {
            MembershipError::MissingSubmissions { missing } => {
                assert_eq!(missing, vec![SiteId::new(0)]);
            }
            other => panic!("unexpected error {other}"),
        }

        // A rejoin submits fresh requests and the workload reflects only
        // those, not the withdrawn ones.
        s.submit_requests(SiteId::new(0), [stream(2, 1)].into())
            .unwrap();
        let problem = s.problem().unwrap();
        let all: Vec<_> = problem.requests().collect();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].stream, stream(2, 1));
    }

    #[test]
    fn withdraw_of_unknown_sites_is_an_error() {
        let mut s = server();
        assert!(matches!(
            s.withdraw(SiteId::new(7)).unwrap_err(),
            MembershipError::UnknownSite { .. }
        ));
    }

    #[test]
    fn rejects_unknown_sites() {
        let mut s = server();
        let err = s
            .submit_requests(SiteId::new(9), BTreeSet::new())
            .unwrap_err();
        assert!(matches!(err, MembershipError::UnknownSite { .. }));
    }

    #[test]
    fn builds_plan_from_submissions() {
        let mut s = server();
        s.submit_requests(SiteId::new(0), [stream(1, 0)].into())
            .unwrap();
        s.submit_requests(SiteId::new(1), [stream(0, 0), stream(2, 1)].into())
            .unwrap();
        s.submit_requests(SiteId::new(2), [stream(0, 0)].into())
            .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let (outcome, plan) = s.build_overlay(&RandomJoin, &mut rng).unwrap();
        assert_eq!(outcome.metrics().rejection_ratio(), 0.0);
        assert_eq!(plan.deliveries_to(SiteId::new(0)), vec![stream(1, 0)]);
        assert_eq!(
            plan.deliveries_to(SiteId::new(1)),
            vec![stream(0, 0), stream(2, 1)]
        );
    }

    #[test]
    fn resubmission_replaces_requests() {
        let mut s = server();
        s.submit_requests(SiteId::new(0), [stream(1, 0)].into())
            .unwrap();
        s.submit_requests(SiteId::new(0), [stream(1, 1)].into())
            .unwrap();
        s.submit_requests(SiteId::new(1), BTreeSet::new()).unwrap();
        s.submit_requests(SiteId::new(2), BTreeSet::new()).unwrap();
        let problem = s.problem().unwrap();
        let all: Vec<_> = problem.requests().collect();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].stream, stream(1, 1));
    }

    #[test]
    fn invalid_aggregate_workload_is_reported() {
        let mut s = server();
        // Self-subscription is invalid.
        s.submit_requests(SiteId::new(0), [stream(0, 0)].into())
            .unwrap();
        s.submit_requests(SiteId::new(1), BTreeSet::new()).unwrap();
        s.submit_requests(SiteId::new(2), BTreeSet::new()).unwrap();
        assert!(matches!(
            s.problem().unwrap_err(),
            MembershipError::Problem(ProblemError::SelfSubscription { .. })
        ));
    }
}
