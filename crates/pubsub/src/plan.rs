//! Dissemination plans: the per-RP forwarding state derived from a
//! constructed overlay forest.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use teeve_overlay::{Forest, MulticastTree, ProblemInstance};
use teeve_types::{CostMs, Quality, SessionId, SiteId, StreamId};

use crate::StreamProfile;

/// One downstream link of a forwarding entry: the child RP and the
/// quality rung it takes the stream at.
///
/// The rung mirrors the child's own entry (`quality` there); the parent
/// carries a copy because *it* is the one sizing every forwarded frame —
/// degrading a subscription must shrink the bytes on the hop *into* the
/// congested receiver, which only the sender can do.
/// [`DisseminationPlan::set_quality`] keeps the two in sync.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChildLink {
    /// The downstream RP.
    pub site: SiteId,
    /// The rung the child takes the stream at.
    pub quality: Quality,
}

impl ChildLink {
    /// A full-quality link to `site` (how freshly derived plans start).
    pub fn full(site: SiteId) -> ChildLink {
        ChildLink {
            site,
            quality: Quality::FULL,
        }
    }
}

/// One stream's forwarding entry at one RP: where the stream comes from,
/// where to send it next (and at which rung), and the quality this RP
/// takes it at.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForwardingEntry {
    /// The stream being handled.
    pub stream: StreamId,
    /// Upstream parent; `None` when this RP is the stream's origin (the
    /// local cameras feed it through the site's star network).
    pub parent: Option<SiteId>,
    /// Downstream links to forward every frame along, each carrying the
    /// receiving child's quality rung.
    pub children: Vec<ChildLink>,
    /// The quality rung this RP receives (and re-forwards) the stream at.
    /// Freshly derived plans stamp [`Quality::FULL`]; the session runtime
    /// overwrites it with the adaptation loop's per-subscription decision
    /// so degradation — not hard rejection — travels with the plan.
    pub quality: Quality,
}

impl ForwardingEntry {
    /// Returns true if this RP originates the stream.
    pub fn is_origin(&self) -> bool {
        self.parent.is_none()
    }

    /// Returns the downstream sites, without their rungs.
    pub fn child_sites(&self) -> Vec<SiteId> {
        self.children.iter().map(|c| c.site).collect()
    }
}

/// The complete forwarding state of one RP.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SitePlan {
    /// The RP this plan belongs to.
    pub site: SiteId,
    /// Forwarding entries, sorted by stream.
    pub entries: Vec<ForwardingEntry>,
}

impl SitePlan {
    /// Returns the entry for `stream`, if this RP handles it.
    pub fn entry(&self, stream: StreamId) -> Option<&ForwardingEntry> {
        self.entries.iter().find(|e| e.stream == stream)
    }

    /// Returns the streams this RP receives from other sites.
    pub fn received_streams(&self) -> impl Iterator<Item = StreamId> + '_ {
        self.entries
            .iter()
            .filter(|e| !e.is_origin())
            .map(|e| e.stream)
    }

    /// Returns the total number of outgoing stream copies (the RP's actual
    /// out-degree under this plan).
    pub fn out_degree(&self) -> usize {
        self.entries.iter().map(|e| e.children.len()).sum()
    }

    /// Returns the number of streams received from other sites (the RP's
    /// actual in-degree under this plan).
    pub fn in_degree(&self) -> usize {
        self.entries.iter().filter(|e| !e.is_origin()).count()
    }
}

/// A dissemination plan: everything the RPs need to move streams along the
/// constructed overlay — forwarding tables, link latencies, and stream
/// media profiles.
///
/// Produced by [`MembershipServer`](crate::MembershipServer) from a
/// constructed forest; consumed by the discrete-event simulator
/// (`teeve-sim`) and the live TCP cluster (`teeve-net`).
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use teeve_overlay::{ConstructionAlgorithm, ProblemInstance, RandomJoin};
/// use teeve_pubsub::{DisseminationPlan, StreamProfile};
/// use teeve_types::{CostMatrix, CostMs, Degree, SiteId, StreamId};
///
/// let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(5));
/// let problem = ProblemInstance::builder(costs, CostMs::new(50))
///     .symmetric_capacities(Degree::new(4))
///     .streams_per_site(&[1, 1, 1])
///     .subscribe(SiteId::new(1), StreamId::new(SiteId::new(0), 0))
///     .build()?;
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let outcome = RandomJoin::default().construct(&problem, &mut rng);
/// let plan = DisseminationPlan::from_forest(&problem, outcome.forest(), StreamProfile::default());
/// assert_eq!(plan.site_plans().len(), 3);
/// # Ok::<(), teeve_overlay::ProblemError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DisseminationPlan {
    site_plans: Vec<SitePlan>,
    costs: teeve_types::CostMatrix,
    cost_bound: CostMs,
    profile: StreamProfile,
    /// Control-plane revision counter. Freshly derived plans start at 0;
    /// the session runtime bumps it every epoch, and
    /// [`PlanDelta::apply`](crate::PlanDelta::apply) advances it to the
    /// delta's target revision, so executors (the live TCP cluster) can
    /// refuse deltas produced against a different revision.
    revision: u64,
    /// The hosted session this plan belongs to, when the plan is produced
    /// by a multi-session service. Freshly derived plans are unscoped;
    /// revisions of one plan always share a scope, and deltas inherit it,
    /// so one executor process serving several sessions can route every
    /// delta to the right forwarding state.
    scope: Option<SessionId>,
}

impl DisseminationPlan {
    /// Derives the plan from a constructed forest: one forwarding entry per
    /// (tree, member) pair, with all streams sharing `profile`.
    pub fn from_forest(problem: &ProblemInstance, forest: &Forest, profile: StreamProfile) -> Self {
        Self::from_trees(problem, forest.trees(), profile)
    }

    /// [`from_forest`](Self::from_forest) over a borrowed tree slice, for
    /// callers holding live construction state (e.g. the session runtime
    /// deriving a plan every epoch) that should not clone the forest
    /// first.
    pub fn from_trees(
        problem: &ProblemInstance,
        trees: &[MulticastTree],
        profile: StreamProfile,
    ) -> Self {
        let n = problem.site_count();
        let mut per_site: Vec<BTreeMap<StreamId, ForwardingEntry>> =
            (0..n).map(|_| BTreeMap::new()).collect();
        for tree in trees {
            for site in SiteId::all(n) {
                if !tree.is_member(site) {
                    continue;
                }
                let entry = ForwardingEntry {
                    stream: tree.stream(),
                    parent: tree.parent_of(site),
                    children: tree
                        .children(site)
                        .into_iter()
                        .map(ChildLink::full)
                        .collect(),
                    quality: Quality::FULL,
                };
                // The origin only needs an entry when it actually has
                // members to serve; an undisseminated stream stays local
                // to the site's star network and out of the plan.
                if entry.is_origin() && entry.children.is_empty() {
                    continue;
                }
                per_site[site.index()].insert(tree.stream(), entry);
            }
        }
        let site_plans = per_site
            .into_iter()
            .enumerate()
            .map(|(i, entries)| SitePlan {
                site: SiteId::new(i as u32),
                entries: entries.into_values().collect(),
            })
            .collect();
        DisseminationPlan {
            site_plans,
            costs: problem.costs().clone(),
            cost_bound: problem.cost_bound(),
            profile,
            revision: 0,
            scope: None,
        }
    }

    /// Returns the plan's control-plane revision.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Sets the plan's control-plane revision. Used by the session runtime
    /// (which bumps the revision every epoch) and by delta application.
    pub fn set_revision(&mut self, revision: u64) {
        self.revision = revision;
    }

    /// Returns the hosted session this plan belongs to, if any.
    pub fn scope(&self) -> Option<SessionId> {
        self.scope
    }

    /// Tags the plan as belonging to one hosted session. The session
    /// runtime stamps every derived plan when it runs inside a
    /// multi-session service, and [`PlanDelta::diff`](crate::PlanDelta)
    /// carries the tag into every emitted delta.
    pub fn set_scope(&mut self, scope: Option<SessionId>) {
        self.scope = scope;
    }

    /// Returns the per-site plans, in site order.
    pub fn site_plans(&self) -> &[SitePlan] {
        &self.site_plans
    }

    /// Returns the plan of one site.
    ///
    /// # Panics
    ///
    /// Panics if `site` is outside the session.
    pub fn site_plan(&self, site: SiteId) -> &SitePlan {
        &self.site_plans[site.index()]
    }

    /// Returns the number of sites.
    pub fn site_count(&self) -> usize {
        self.site_plans.len()
    }

    /// Returns the link latency between two sites.
    pub fn link_cost(&self, a: SiteId, b: SiteId) -> CostMs {
        self.costs.cost(a, b)
    }

    /// Returns the interactivity bound the overlay was constructed under.
    pub fn cost_bound(&self) -> CostMs {
        self.cost_bound
    }

    /// Returns the media profile shared by all streams.
    pub fn profile(&self) -> StreamProfile {
        self.profile
    }

    /// Returns every directed overlay edge `(parent, child, stream)`.
    pub fn edges(&self) -> impl Iterator<Item = (SiteId, SiteId, StreamId)> + '_ {
        self.site_plans.iter().flat_map(|sp| {
            sp.entries
                .iter()
                .flat_map(move |e| e.children.iter().map(move |c| (sp.site, c.site, e.stream)))
        })
    }

    /// Returns the set of streams site `site` is planned to receive.
    pub fn deliveries_to(&self, site: SiteId) -> Vec<StreamId> {
        self.site_plan(site).received_streams().collect()
    }

    /// Inserts or replaces one forwarding entry at `site`, keeping the
    /// site's entries sorted by stream. Used by delta application
    /// ([`PlanDelta::apply`](crate::PlanDelta::apply)).
    ///
    /// # Panics
    ///
    /// Panics if `site` is outside the session.
    pub fn upsert_entry(&mut self, site: SiteId, entry: ForwardingEntry) {
        let entries = &mut self.site_plans[site.index()].entries;
        match entries.binary_search_by_key(&entry.stream, |e| e.stream) {
            Ok(i) => entries[i] = entry,
            Err(i) => entries.insert(i, entry),
        }
    }

    /// Sets the quality rung `site` receives `stream` at, returning true
    /// when the plan has such an entry. The session runtime stamps every
    /// derived plan with its adaptation decisions through this.
    ///
    /// The rung is recorded twice, and this keeps both in sync: on the
    /// receiver's entry (its delivery quality) and on the parent's
    /// [`ChildLink`] to it — the parent is the one sizing forwarded
    /// frames, so degradation must be visible where the bytes originate.
    ///
    /// # Panics
    ///
    /// Panics if `site` is outside the session.
    pub fn set_quality(&mut self, site: SiteId, stream: StreamId, quality: Quality) -> bool {
        let entries = &mut self.site_plans[site.index()].entries;
        let parent = match entries.binary_search_by_key(&stream, |e| e.stream) {
            Ok(i) => {
                entries[i].quality = quality;
                entries[i].parent
            }
            Err(_) => return false,
        };
        if let Some(parent) = parent {
            if let Some(up) = self.site_plans[parent.index()]
                .entries
                .iter_mut()
                .find(|e| e.stream == stream)
            {
                for child in &mut up.children {
                    if child.site == site {
                        child.quality = quality;
                    }
                }
            }
        }
        true
    }

    /// Returns the quality rung `site` receives `stream` at, if the plan
    /// routes it there.
    ///
    /// # Panics
    ///
    /// Panics if `site` is outside the session.
    pub fn quality_of(&self, site: SiteId, stream: StreamId) -> Option<Quality> {
        self.site_plan(site).entry(stream).map(|e| e.quality)
    }

    /// Removes `site`'s forwarding entry for `stream`, returning it if it
    /// existed. Used by delta application.
    ///
    /// # Panics
    ///
    /// Panics if `site` is outside the session.
    pub fn remove_entry(&mut self, site: SiteId, stream: StreamId) -> Option<ForwardingEntry> {
        let entries = &mut self.site_plans[site.index()].entries;
        match entries.binary_search_by_key(&stream, |e| e.stream) {
            Ok(i) => Some(entries.remove(i)),
            Err(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use teeve_overlay::{ConstructionAlgorithm, RandomJoin};
    use teeve_types::{CostMatrix, Degree};

    fn site(i: u32) -> SiteId {
        SiteId::new(i)
    }

    fn stream(origin: u32, q: u32) -> StreamId {
        StreamId::new(site(origin), q)
    }

    fn plan_for_four_sites() -> (ProblemInstance, DisseminationPlan) {
        // The paper's Figure 5: four sites; everyone subscribes to stream
        // "B"; A, B, D subscribe to "A"; etc. Simplified to the A and B
        // streams.
        let costs = CostMatrix::from_fn(4, |_, _| CostMs::new(3));
        let problem = ProblemInstance::builder(costs, CostMs::new(50))
            .symmetric_capacities(Degree::new(4))
            .streams_per_site(&[1, 1, 1, 1])
            // Stream from B (site 1) requested by everyone else.
            .subscribe(site(0), stream(1, 0))
            .subscribe(site(2), stream(1, 0))
            .subscribe(site(3), stream(1, 0))
            // Stream from A (site 0) requested by B and D.
            .subscribe(site(1), stream(0, 0))
            .subscribe(site(3), stream(0, 0))
            .build()
            .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let outcome = RandomJoin.construct(&problem, &mut rng);
        assert_eq!(outcome.metrics().rejection_ratio(), 0.0);
        let plan =
            DisseminationPlan::from_forest(&problem, outcome.forest(), StreamProfile::default());
        (problem, plan)
    }

    #[test]
    fn every_accepted_subscription_is_planned() {
        let (problem, plan) = plan_for_four_sites();
        for r in problem.requests() {
            assert!(
                plan.deliveries_to(r.subscriber).contains(&r.stream),
                "{r} missing from the plan"
            );
        }
    }

    #[test]
    fn origins_have_no_parent() {
        let (_, plan) = plan_for_four_sites();
        let entry = plan.site_plan(site(1)).entry(stream(1, 0)).unwrap();
        assert!(entry.is_origin());
        assert!(!entry.children.is_empty(), "B's stream must fan out");
    }

    #[test]
    fn edges_are_consistent_between_parent_and_child() {
        let (_, plan) = plan_for_four_sites();
        for (parent, child, s) in plan.edges() {
            let child_entry = plan.site_plan(child).entry(s).expect("child has entry");
            assert_eq!(child_entry.parent, Some(parent));
        }
    }

    #[test]
    fn degrees_match_forest_accounting() {
        let (_, plan) = plan_for_four_sites();
        // 5 accepted requests = 5 edges total.
        let total_out: usize = plan.site_plans().iter().map(SitePlan::out_degree).sum();
        let total_in: usize = plan.site_plans().iter().map(SitePlan::in_degree).sum();
        assert_eq!(total_out, 5);
        assert_eq!(total_in, 5);
    }

    #[test]
    fn plan_serde_roundtrip() {
        let (_, plan) = plan_for_four_sites();
        let json = serde_json::to_string(&plan).unwrap();
        let back: DisseminationPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }
}
