//! Stream profiles: the media parameters of a 3D video stream.

use serde::{Deserialize, Serialize};
use teeve_types::BitRate;

/// Media parameters of one 3D video stream.
///
/// The paper's measurements (Sections 1 and 5.1): a raw 3D stream is
/// `640 × 480 × 15 fps × 5 B/pixel ≈ 180 Mbps`; after background
/// subtraction, resolution reduction, and real-time compression it runs at
/// 5–10 Mbps. Rendering costs about 10 ms per stream per frame.
///
/// # Examples
///
/// ```
/// use teeve_pubsub::StreamProfile;
///
/// let p = StreamProfile::default();
/// assert_eq!(p.fps, 15);
/// // 8 Mbps at 15 fps: each frame is ~66 kB.
/// assert_eq!(p.frame_bytes(), 66_666);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StreamProfile {
    /// Compressed stream bit rate.
    pub bitrate: BitRate,
    /// Frames per second produced by the camera.
    pub fps: u32,
}

impl StreamProfile {
    /// The paper's raw (uncompressed) stream rate, ≈180 Mbps.
    pub fn raw() -> Self {
        StreamProfile {
            bitrate: BitRate::new(640 * 480 * 15 * 5 * 8),
            fps: 15,
        }
    }

    /// A compressed stream at `mbps` megabits per second, 15 fps.
    ///
    /// # Panics
    ///
    /// Panics if `mbps` is zero.
    pub fn compressed_mbps(mbps: u64) -> Self {
        assert!(mbps > 0, "bit rate must be positive");
        StreamProfile {
            bitrate: BitRate::from_mbps(mbps),
            fps: 15,
        }
    }

    /// Returns the size of one frame in bytes (bitrate / fps / 8, rounded
    /// *down* so that a stream's frames serialize within its own rate —
    /// one frame never takes longer than one frame interval on a
    /// dedicated stream slot).
    pub fn frame_bytes(&self) -> u64 {
        self.bitrate.bits_per_sec() / (u64::from(self.fps) * 8)
    }

    /// Returns the capture interval between frames in microseconds.
    pub fn frame_interval_micros(&self) -> u64 {
        1_000_000 / u64::from(self.fps)
    }
}

impl Default for StreamProfile {
    /// 8 Mbps compressed at 15 fps — the middle of the paper's 5–10 Mbps
    /// measurement.
    fn default() -> Self {
        StreamProfile::compressed_mbps(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_profile_matches_paper_estimate() {
        let raw = StreamProfile::raw();
        let mbps = raw.bitrate.bits_per_sec() as f64 / 1e6;
        assert!((175.0..=190.0).contains(&mbps), "raw was {mbps} Mbps");
    }

    #[test]
    fn compressed_profiles_are_in_paper_range() {
        for mbps in 5..=10 {
            let p = StreamProfile::compressed_mbps(mbps);
            assert_eq!(p.bitrate.bits_per_sec(), mbps * 1_000_000);
        }
    }

    #[test]
    fn frame_arithmetic() {
        let p = StreamProfile::compressed_mbps(6);
        // 6 Mbps / 15 fps = 400 kbit = 50 kB per frame.
        assert_eq!(p.frame_bytes(), 50_000);
        assert_eq!(p.frame_interval_micros(), 66_666);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_bitrate() {
        let _ = StreamProfile::compressed_mbps(0);
    }
}
