//! The rendezvous point: the per-site proxy that decouples cameras from
//! displays.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};
use teeve_types::{DisplayId, SiteId, StreamId};

/// The logical rendezvous point (RP) of one site.
///
/// Within a site the RP forms a star network to the local 3D cameras
/// (publishers) and 3D displays (subscribers): it collects all locally
/// produced streams for dissemination, records each display's subscription,
/// and aggregates them into the site-level request set sent to the
/// membership server — "each RP requests only those streams that are
/// subscribed by at least one of its local displays" (Section 4.1).
///
/// # Examples
///
/// ```
/// use teeve_pubsub::RendezvousPoint;
/// use teeve_types::{DisplayId, SiteId, StreamId};
///
/// let mut rp = RendezvousPoint::new(SiteId::new(0), 4, 2);
/// let display = DisplayId::new(SiteId::new(0), 0);
/// let remote = StreamId::new(SiteId::new(1), 3);
/// rp.set_subscription(display, vec![remote]);
/// assert!(rp.aggregated_requests().contains(&remote));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RendezvousPoint {
    site: SiteId,
    cameras: u32,
    displays: u32,
    subscriptions: BTreeMap<DisplayId, Vec<StreamId>>,
}

impl RendezvousPoint {
    /// Creates the RP of `site`, serving `cameras` local publishers and
    /// `displays` local subscribers.
    ///
    /// # Panics
    ///
    /// Panics if the site has no displays (an RP with nothing to subscribe
    /// for would be inert) — cameras may be zero for a view-only site.
    pub fn new(site: SiteId, cameras: u32, displays: u32) -> Self {
        assert!(displays > 0, "a site needs at least one display");
        RendezvousPoint {
            site,
            cameras,
            displays,
            subscriptions: BTreeMap::new(),
        }
    }

    /// Returns the RP's site.
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Returns the number of local cameras (= locally published streams).
    pub fn camera_count(&self) -> u32 {
        self.cameras
    }

    /// Returns the number of local displays.
    pub fn display_count(&self) -> u32 {
        self.displays
    }

    /// Returns the streams published by this site's cameras.
    pub fn published_streams(&self) -> impl Iterator<Item = StreamId> + '_ {
        (0..self.cameras).map(|q| StreamId::new(self.site, q))
    }

    /// Records (replacing) the subscription of one local display.
    ///
    /// # Panics
    ///
    /// Panics if the display belongs to another site or its index is out of
    /// range.
    pub fn set_subscription(&mut self, display: DisplayId, streams: Vec<StreamId>) {
        assert_eq!(display.site(), self.site, "display belongs to another site");
        assert!(
            display.local_index() < self.displays,
            "display index out of range"
        );
        self.subscriptions.insert(display, streams);
    }

    /// Returns the recorded subscription of `display`, if any.
    pub fn subscription(&self, display: DisplayId) -> Option<&[StreamId]> {
        self.subscriptions.get(&display).map(Vec::as_slice)
    }

    /// Aggregates display subscriptions into the site-level request set:
    /// the union of all display subscriptions, minus locally originated
    /// streams (those reach local displays over the site's star network,
    /// not the overlay).
    pub fn aggregated_requests(&self) -> BTreeSet<StreamId> {
        self.subscriptions
            .values()
            .flatten()
            .copied()
            .filter(|s| s.origin() != self.site)
            .collect()
    }

    /// Returns the displays subscribed to `stream` (used to fan a received
    /// stream out over the local star network).
    pub fn displays_for(&self, stream: StreamId) -> Vec<DisplayId> {
        self.subscriptions
            .iter()
            .filter(|(_, streams)| streams.contains(&stream))
            .map(|(&d, _)| d)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(i: u32) -> SiteId {
        SiteId::new(i)
    }

    fn stream(origin: u32, q: u32) -> StreamId {
        StreamId::new(site(origin), q)
    }

    #[test]
    fn aggregation_unions_display_subscriptions() {
        let mut rp = RendezvousPoint::new(site(0), 2, 3);
        rp.set_subscription(DisplayId::new(site(0), 0), vec![stream(1, 0), stream(2, 1)]);
        rp.set_subscription(DisplayId::new(site(0), 1), vec![stream(1, 0), stream(1, 1)]);
        let agg = rp.aggregated_requests();
        assert_eq!(
            agg.into_iter().collect::<Vec<_>>(),
            vec![stream(1, 0), stream(1, 1), stream(2, 1)]
        );
    }

    #[test]
    fn local_streams_are_excluded_from_requests() {
        let mut rp = RendezvousPoint::new(site(0), 2, 1);
        rp.set_subscription(DisplayId::new(site(0), 0), vec![stream(0, 0), stream(1, 0)]);
        let agg = rp.aggregated_requests();
        assert!(
            !agg.contains(&stream(0, 0)),
            "local stream must not transit the overlay"
        );
        assert!(agg.contains(&stream(1, 0)));
    }

    #[test]
    fn resubscription_replaces_previous() {
        let mut rp = RendezvousPoint::new(site(0), 1, 1);
        let d = DisplayId::new(site(0), 0);
        rp.set_subscription(d, vec![stream(1, 0)]);
        rp.set_subscription(d, vec![stream(2, 0)]);
        let agg = rp.aggregated_requests();
        assert!(!agg.contains(&stream(1, 0)));
        assert!(agg.contains(&stream(2, 0)));
    }

    #[test]
    fn displays_for_finds_all_subscribers() {
        let mut rp = RendezvousPoint::new(site(0), 1, 2);
        let d0 = DisplayId::new(site(0), 0);
        let d1 = DisplayId::new(site(0), 1);
        rp.set_subscription(d0, vec![stream(1, 0)]);
        rp.set_subscription(d1, vec![stream(1, 0), stream(1, 1)]);
        assert_eq!(rp.displays_for(stream(1, 0)), vec![d0, d1]);
        assert_eq!(rp.displays_for(stream(1, 1)), vec![d1]);
        assert!(rp.displays_for(stream(2, 0)).is_empty());
    }

    #[test]
    fn published_streams_enumerate_cameras() {
        let rp = RendezvousPoint::new(site(3), 4, 1);
        let streams: Vec<_> = rp.published_streams().collect();
        assert_eq!(streams.len(), 4);
        assert!(streams.iter().all(|s| s.origin() == site(3)));
    }

    #[test]
    #[should_panic(expected = "another site")]
    fn rejects_foreign_displays() {
        let mut rp = RendezvousPoint::new(site(0), 1, 1);
        rp.set_subscription(DisplayId::new(site(1), 0), vec![]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_display() {
        let mut rp = RendezvousPoint::new(site(0), 1, 1);
        rp.set_subscription(DisplayId::new(site(0), 5), vec![]);
    }
}
