//! Multi-site 3DTI sessions: the user-facing entry point gluing geometry
//! (FOV subscriptions), RP aggregation, and the membership server.

use std::collections::BTreeSet;

use rand::RngCore;
use serde::{Deserialize, Serialize};
use teeve_geometry::{CyberSpace, FieldOfView, ScoredStream, ViewSelector};
use teeve_overlay::{ConstructionAlgorithm, ConstructionOutcome, NodeCapacity};
use teeve_types::{CostMatrix, CostMs, Degree, DisplayId, SiteId, StreamId};

use crate::{DisseminationPlan, MembershipError, MembershipServer, RendezvousPoint, StreamProfile};

/// A complete multi-site 3DTI session.
///
/// A session owns:
///
/// * the **cyber-space**: every site's participant and camera ring placed
///   in one shared virtual coordinate system;
/// * one **rendezvous point** per site, recording local display
///   subscriptions;
/// * the **view selector** converting display FOVs into concrete stream
///   subscriptions (the subscription framework of Section 3.2);
/// * the **membership server** parameters (capacities, latency bound) used
///   to construct the overlay.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use teeve_overlay::RandomJoin;
/// use teeve_pubsub::Session;
/// use teeve_types::{CostMatrix, CostMs, Degree, DisplayId, SiteId};
///
/// let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(8));
/// let mut session = Session::builder(costs)
///     .cameras_per_site(8)
///     .displays_per_site(2)
///     .symmetric_capacity(Degree::new(12))
///     .build();
///
/// // The display at site 0 watches site 1's participant.
/// let display = DisplayId::new(SiteId::new(0), 0);
/// let selected = session.subscribe_viewpoint(display, SiteId::new(1));
/// assert!(!selected.is_empty());
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let (outcome, plan) = session.build_plan(&RandomJoin::default(), &mut rng)?;
/// assert_eq!(outcome.metrics().rejection_ratio(), 0.0);
/// assert!(!plan.deliveries_to(SiteId::new(0)).is_empty());
/// # Ok::<(), teeve_pubsub::MembershipError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Session {
    space: CyberSpace,
    rps: Vec<RendezvousPoint>,
    selector: ViewSelector,
    costs: CostMatrix,
    cost_bound: CostMs,
    capacities: Vec<NodeCapacity>,
    profile: StreamProfile,
}

impl Session {
    /// Starts building a session over the sites covered by `costs`.
    pub fn builder(costs: CostMatrix) -> SessionBuilder {
        SessionBuilder {
            costs,
            cameras_per_site: 8,
            displays_per_site: 2,
            capacities: None,
            cost_bound: CostMs::new(60),
            selector: ViewSelector::top_k(4),
            profile: StreamProfile::default(),
        }
    }

    /// Returns the number of sites.
    pub fn site_count(&self) -> usize {
        self.rps.len()
    }

    /// Returns the shared cyber-space.
    pub fn space(&self) -> &CyberSpace {
        &self.space
    }

    /// Returns the pairwise latency matrix.
    pub fn costs(&self) -> &CostMatrix {
        &self.costs
    }

    /// Returns the interactivity bound `B_cost`.
    pub fn cost_bound(&self) -> CostMs {
        self.cost_bound
    }

    /// Returns the per-site bandwidth capacities, in site order.
    pub fn capacities(&self) -> &[NodeCapacity] {
        &self.capacities
    }

    /// Returns the media profile shared by all streams.
    pub fn profile(&self) -> StreamProfile {
        self.profile
    }

    /// Returns the RP of `site`.
    ///
    /// # Panics
    ///
    /// Panics if `site` is outside the session.
    pub fn rp(&self, site: SiteId) -> &RendezvousPoint {
        &self.rps[site.index()]
    }

    /// Subscribes `display` with an explicit field of view: the view
    /// selector scores every stream in the cyber-space and the top
    /// contributors become the display's subscription. Returns the
    /// selected streams with their scores.
    ///
    /// # Panics
    ///
    /// Panics if the display's site or index is out of range.
    pub fn subscribe_fov(&mut self, display: DisplayId, fov: &FieldOfView) -> Vec<ScoredStream> {
        let selected = self.selector.select(&self.space, fov);
        let streams = selected.iter().map(|s| s.stream).collect();
        self.rps[display.site().index()].set_subscription(display, streams);
        selected
    }

    /// Convenience: subscribes `display` with a viewpoint looking at the
    /// participant of `target` from the subscriber participant's position.
    ///
    /// # Panics
    ///
    /// Panics if either site is outside the session or the display index
    /// is out of range.
    pub fn subscribe_viewpoint(&mut self, display: DisplayId, target: SiteId) -> Vec<ScoredStream> {
        let eye = self.space.participant_position(display.site())
            + teeve_geometry::Vec3::new(0.0, 0.0, 1.6);
        let target_pos = self.space.participant_position(target);
        let fov = FieldOfView::looking_at(eye, target_pos, 60.0);
        self.subscribe_fov(display, &fov)
    }

    /// Subscribes `display` to an explicit stream list (bypassing the view
    /// selector — e.g. for surveillance-style workloads).
    ///
    /// # Panics
    ///
    /// Panics if the display's site or index is out of range.
    pub fn subscribe_streams(&mut self, display: DisplayId, streams: Vec<StreamId>) {
        self.rps[display.site().index()].set_subscription(display, streams);
    }

    /// Assembles the membership server for the current subscription state.
    pub fn membership_server(&self) -> MembershipServer {
        let mut server = MembershipServer::new(
            self.costs.clone(),
            self.cost_bound,
            self.capacities.clone(),
            self.rps.iter().map(RendezvousPoint::camera_count).collect(),
            self.profile,
        )
        .expect("session tables cover every site by construction");
        for rp in &self.rps {
            server
                .submit_requests(rp.site(), rp.aggregated_requests())
                .expect("session RPs are in range");
        }
        server
    }

    /// Builds the overlay for the current subscriptions and derives the
    /// dissemination plan.
    ///
    /// # Errors
    ///
    /// Returns an error if the aggregated workload is invalid (e.g. fewer
    /// than three sites).
    pub fn build_plan(
        &self,
        algorithm: &dyn ConstructionAlgorithm,
        rng: &mut dyn RngCore,
    ) -> Result<(ConstructionOutcome, DisseminationPlan), MembershipError> {
        self.membership_server().build_overlay(algorithm, rng)
    }

    /// Returns the streams `display` will actually render under `plan`:
    /// its subscription, intersected with what the overlay delivers to the
    /// site, plus any locally originated streams it subscribed to.
    pub fn display_deliveries(
        &self,
        display: DisplayId,
        plan: &DisseminationPlan,
    ) -> Vec<StreamId> {
        let site = display.site();
        let delivered: BTreeSet<StreamId> = plan.deliveries_to(site).into_iter().collect();
        self.rps[site.index()]
            .subscription(display)
            .unwrap_or(&[])
            .iter()
            .copied()
            .filter(|s| s.origin() == site || delivered.contains(s))
            .collect()
    }
}

/// Incremental builder for [`Session`]; see [`Session::builder`].
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    costs: CostMatrix,
    cameras_per_site: u32,
    displays_per_site: u32,
    capacities: Option<Vec<NodeCapacity>>,
    cost_bound: CostMs,
    selector: ViewSelector,
    profile: StreamProfile,
}

impl SessionBuilder {
    /// Sets the number of 3D cameras (streams) per site. Default 8, the
    /// ring of the paper's Figure 4.
    #[must_use]
    pub fn cameras_per_site(mut self, cameras: u32) -> Self {
        self.cameras_per_site = cameras;
        self
    }

    /// Sets the number of 3D displays per site. Default 2.
    #[must_use]
    pub fn displays_per_site(mut self, displays: u32) -> Self {
        self.displays_per_site = displays;
        self
    }

    /// Gives every site the same symmetric bandwidth capacity.
    #[must_use]
    pub fn symmetric_capacity(mut self, limit: Degree) -> Self {
        self.capacities = Some(vec![NodeCapacity::symmetric(limit); self.costs.len()]);
        self
    }

    /// Sets per-site capacities explicitly.
    #[must_use]
    pub fn capacities(mut self, capacities: Vec<NodeCapacity>) -> Self {
        self.capacities = Some(capacities);
        self
    }

    /// Sets the interactivity bound `B_cost`. Default 60 ms.
    #[must_use]
    pub fn cost_bound(mut self, bound: CostMs) -> Self {
        self.cost_bound = bound;
        self
    }

    /// Sets the FOV-to-streams selector. Default: top-4 contributors, the
    /// paper's Figure 4 example.
    #[must_use]
    pub fn view_selector(mut self, selector: ViewSelector) -> Self {
        self.selector = selector;
        self
    }

    /// Sets the media profile shared by all streams.
    #[must_use]
    pub fn stream_profile(mut self, profile: StreamProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Assembles the session.
    ///
    /// # Panics
    ///
    /// Panics if the cost matrix is empty, a capacity table has the wrong
    /// length, or there are zero cameras or displays per site.
    pub fn build(self) -> Session {
        let n = self.costs.len();
        assert!(n > 0, "a session needs at least one site");
        assert!(self.cameras_per_site > 0, "sites need at least one camera");
        let capacities = self
            .capacities
            .unwrap_or_else(|| vec![NodeCapacity::symmetric(Degree::new(20)); n]);
        assert_eq!(capacities.len(), n, "capacities must cover every site");
        let space = CyberSpace::meeting_circle(n, self.cameras_per_site);
        let rps = SiteId::all(n)
            .map(|site| RendezvousPoint::new(site, self.cameras_per_site, self.displays_per_site))
            .collect();
        Session {
            space,
            rps,
            selector: self.selector,
            costs: self.costs,
            cost_bound: self.cost_bound,
            capacities,
            profile: self.profile,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use teeve_overlay::RandomJoin;

    fn session(n: usize) -> Session {
        let costs = CostMatrix::from_fn(n, |i, j| CostMs::new(4 + ((i + j) % 3) as u32));
        Session::builder(costs)
            .cameras_per_site(8)
            .displays_per_site(2)
            .symmetric_capacity(Degree::new(15))
            .build()
    }

    #[test]
    fn fov_subscription_reaches_the_rp() {
        let mut s = session(3);
        let display = DisplayId::new(SiteId::new(0), 0);
        let selected = s.subscribe_viewpoint(display, SiteId::new(2));
        assert!(!selected.is_empty());
        let recorded = s.rp(SiteId::new(0)).subscription(display).unwrap();
        assert_eq!(recorded.len(), selected.len());
        assert!(recorded.iter().all(|st| st.origin() == SiteId::new(2)));
    }

    #[test]
    fn end_to_end_plan_delivers_subscribed_streams() {
        let mut s = session(4);
        for site in SiteId::all(4) {
            let target = SiteId::new((site.index() as u32 + 1) % 4);
            s.subscribe_viewpoint(DisplayId::new(site, 0), target);
        }
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let (outcome, plan) = s.build_plan(&RandomJoin, &mut rng).unwrap();
        assert_eq!(outcome.metrics().rejection_ratio(), 0.0);
        for site in SiteId::all(4) {
            let display = DisplayId::new(site, 0);
            let deliveries = s.display_deliveries(display, &plan);
            let subscription = s.rp(site).subscription(display).unwrap();
            assert_eq!(deliveries.len(), subscription.len());
        }
    }

    #[test]
    fn local_streams_are_delivered_without_the_overlay() {
        let mut s = session(3);
        let display = DisplayId::new(SiteId::new(1), 0);
        // Subscribe to a local stream and a remote one.
        s.subscribe_streams(
            display,
            vec![
                StreamId::new(SiteId::new(1), 0),
                StreamId::new(SiteId::new(0), 3),
            ],
        );
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let (_, plan) = s.build_plan(&RandomJoin, &mut rng).unwrap();
        let deliveries = s.display_deliveries(display, &plan);
        assert!(deliveries.contains(&StreamId::new(SiteId::new(1), 0)));
        assert!(deliveries.contains(&StreamId::new(SiteId::new(0), 3)));
        // The local stream never transits the overlay.
        assert!(!plan
            .deliveries_to(SiteId::new(1))
            .contains(&StreamId::new(SiteId::new(1), 0)));
    }

    #[test]
    fn rejected_streams_are_not_promised_to_displays() {
        // Capacity 1: only one remote stream can reach site 0.
        let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(4));
        let mut s = Session::builder(costs)
            .cameras_per_site(4)
            .displays_per_site(1)
            .symmetric_capacity(Degree::new(1))
            .build();
        let display = DisplayId::new(SiteId::new(0), 0);
        s.subscribe_streams(
            display,
            vec![
                StreamId::new(SiteId::new(1), 0),
                StreamId::new(SiteId::new(1), 1),
                StreamId::new(SiteId::new(2), 0),
            ],
        );
        for other in [SiteId::new(1), SiteId::new(2)] {
            s.subscribe_streams(DisplayId::new(other, 0), vec![]);
        }
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let (outcome, plan) = s.build_plan(&RandomJoin, &mut rng).unwrap();
        assert!(outcome.metrics().rejected_requests > 0);
        let deliveries = s.display_deliveries(display, &plan);
        assert!(deliveries.len() < 3, "some subscriptions must be dropped");
    }

    #[test]
    fn membership_server_reflects_rp_aggregation() {
        let mut s = session(3);
        s.subscribe_streams(
            DisplayId::new(SiteId::new(0), 0),
            vec![StreamId::new(SiteId::new(1), 2)],
        );
        s.subscribe_streams(
            DisplayId::new(SiteId::new(0), 1),
            vec![
                StreamId::new(SiteId::new(1), 2),
                StreamId::new(SiteId::new(2), 0),
            ],
        );
        for other in [SiteId::new(1), SiteId::new(2)] {
            s.subscribe_streams(DisplayId::new(other, 0), vec![]);
        }
        let problem = s.membership_server().problem().unwrap();
        // Duplicates collapse at the RP: site 0 requests 2 distinct streams.
        assert_eq!(problem.total_requests(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one camera")]
    fn builder_rejects_zero_cameras() {
        let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(4));
        let _ = Session::builder(costs).cameras_per_site(0).build();
    }
}
