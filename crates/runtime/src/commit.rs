//! The durable record one epoch leaves behind.

use serde::{Deserialize, Serialize};
use teeve_types::{Quality, QualityLadder, StreamId};

use crate::event::RuntimeEvent;

/// Everything a durability layer needs to persist about one committed
/// epoch — produced by
/// [`SessionRuntime::apply_epoch`](crate::SessionRuntime::apply_epoch)
/// alongside the delta, and consumed by `teeve-store`.
///
/// The commit is **event-sourced**: `events` is the exact input batch
/// the epoch consumed, and epoch reconciliation is deterministic, so
/// replaying every commit's events through a fresh runtime reproduces
/// the session bit-identically. The derived state carried alongside
/// (`revision`, `demand`, `granted`, `ladder`) is the integrity
/// cross-check a recovery runs after replay — and the direct answer for
/// snapshot readers that never replay at all.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochCommit {
    /// The epoch index this commit closed (0-based).
    pub epoch: u64,
    /// The plan revision the epoch advanced the session to.
    pub revision: u64,
    /// The event batch the epoch consumed, in ingestion order.
    pub events: Vec<RuntimeEvent>,
    /// Per-site desired streams at epoch end (index = site index),
    /// sorted — the demand the overlay reconciled toward.
    pub demand: Vec<Vec<StreamId>>,
    /// Per-site granted streams with the quality rung each is served at
    /// (index = site index), sorted by stream.
    pub granted: Vec<Vec<(StreamId, Quality)>>,
    /// The quality ladder admission and refitting used this epoch.
    pub ladder: QualityLadder,
}
