//! Runtime configuration: epoch policies and fall-back thresholds.

use serde::{Deserialize, Serialize};

/// When incremental repair is abandoned for full reconstruction.
///
/// Incremental node joins are cheap but path-dependent: long churn
/// sequences can leave trees deeper (higher latency) and more fragmented
/// (more rejections) than a from-scratch construction of the same demand.
/// The runtime watches both symptoms per epoch and rebuilds when either
/// crosses its threshold.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FallbackPolicy {
    /// Rebuild when the epoch's join rejection ratio exceeds this (joins
    /// rejected / joins attempted; ignored on epochs without joins).
    pub max_epoch_rejection_ratio: f64,
    /// Rebuild when any multicast tree grows deeper than this many hops.
    pub max_tree_depth: usize,
}

impl Default for FallbackPolicy {
    /// Rebuild past 25% epoch rejections or depth 6.
    fn default() -> Self {
        FallbackPolicy {
            max_epoch_rejection_ratio: 0.25,
            max_tree_depth: 6,
        }
    }
}

impl FallbackPolicy {
    /// A policy that never falls back (pure incremental repair).
    pub fn never() -> Self {
        FallbackPolicy {
            max_epoch_rejection_ratio: f64::INFINITY,
            max_tree_depth: usize::MAX,
        }
    }

    /// A policy that rebuilds on every epoch with overlay changes (pure
    /// full reconstruction — the baseline the bench compares against).
    pub fn always() -> Self {
        FallbackPolicy {
            max_epoch_rejection_ratio: -1.0,
            max_tree_depth: 0,
        }
    }

    /// Returns true when an epoch with the given symptoms must rebuild.
    pub fn must_rebuild(&self, epoch_rejection_ratio: Option<f64>, max_depth: usize) -> bool {
        epoch_rejection_ratio.is_some_and(|r| r > self.max_epoch_rejection_ratio)
            || max_depth > self.max_tree_depth
    }
}

/// Configuration of a [`SessionRuntime`](crate::SessionRuntime).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RuntimeConfig {
    /// When to abandon incremental repair for full reconstruction.
    pub fallback: FallbackPolicy,
    /// Attempt CO-RJ victim swapping on saturated joins.
    pub correlation_aware: bool,
    /// EWMA smoothing factor of the per-site bandwidth estimators.
    pub bandwidth_alpha: f64,
    /// Contribution score assumed for subscriptions without FOV scores
    /// (e.g. explicit stream lists), used when ranking adaptation.
    pub default_score: f64,
    /// Close the adaptation loop through the overlay: feed each site's
    /// bandwidth estimate into the degrade-don't-reject admission path
    /// (on the paper-default quality ladder), stamp every derived plan
    /// and emitted delta with per-subscription quality, and re-fit
    /// granted qualities to the estimate every epoch. Disabled, the
    /// runtime behaves as before: admission is purely structural and
    /// plans always carry full quality.
    pub degrade_dont_reject: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            fallback: FallbackPolicy::default(),
            correlation_aware: false,
            bandwidth_alpha: 0.3,
            default_score: 0.5,
            degrade_dont_reject: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_tolerates_mild_symptoms() {
        let p = FallbackPolicy::default();
        assert!(!p.must_rebuild(None, 3));
        assert!(!p.must_rebuild(Some(0.1), 3));
        assert!(p.must_rebuild(Some(0.5), 3));
        assert!(p.must_rebuild(None, 7));
    }

    #[test]
    fn never_and_always_are_extremes() {
        assert!(!FallbackPolicy::never().must_rebuild(Some(1.0), usize::MAX));
        assert!(FallbackPolicy::always().must_rebuild(Some(0.0), 1));
        assert!(FallbackPolicy::always().must_rebuild(None, 1));
    }
}
