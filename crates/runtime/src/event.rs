//! The event vocabulary a live session feeds the runtime.

use serde::{Deserialize, Serialize};
use teeve_geometry::FieldOfView;
use teeve_types::{DisplayId, SiteId};

/// One input event to a [`SessionRuntime`](crate::SessionRuntime) epoch.
///
/// Events come from three layers of the system:
///
/// * **geometry** — displays steering their fields of view
///   ([`FovChange`](RuntimeEvent::FovChange),
///   [`Viewpoint`](RuntimeEvent::Viewpoint),
///   [`FovClear`](RuntimeEvent::FovClear));
/// * **membership** — whole sites joining or leaving the session
///   ([`SiteJoin`](RuntimeEvent::SiteJoin),
///   [`SiteLeave`](RuntimeEvent::SiteLeave));
/// * **transport** — receivers reporting measured throughput
///   ([`BandwidthSample`](RuntimeEvent::BandwidthSample)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RuntimeEvent {
    /// `display` retargets to an explicit field of view; the view selector
    /// converts it into stream subscriptions.
    FovChange {
        /// The display changing its FOV.
        display: DisplayId,
        /// The new field of view.
        fov: FieldOfView,
    },
    /// Convenience form of [`FovChange`](RuntimeEvent::FovChange):
    /// `display` looks at the participant of `target` from its own
    /// participant's position.
    Viewpoint {
        /// The display changing its FOV.
        display: DisplayId,
        /// The site whose participant it now watches.
        target: SiteId,
    },
    /// `display` stops watching anything.
    FovClear {
        /// The display clearing its subscription.
        display: DisplayId,
    },
    /// `site` (re)joins the session. Its displays start blank; subsequent
    /// FOV events subscribe them. Other sites' suspended subscriptions to
    /// its streams resume automatically.
    SiteJoin {
        /// The joining site.
        site: SiteId,
    },
    /// `site` leaves the session: its subscriptions are released, its
    /// streams' trees are torn down, and other sites' subscriptions to its
    /// streams are suspended until it rejoins.
    SiteLeave {
        /// The departing site.
        site: SiteId,
    },
    /// A receiver reports its measured available bandwidth; feeds the
    /// per-site estimator driving quality adaptation.
    BandwidthSample {
        /// The reporting site.
        site: SiteId,
        /// Measured throughput in bits per second.
        bits_per_sec: f64,
    },
}

impl RuntimeEvent {
    /// Returns the site this event concerns.
    pub fn site(&self) -> SiteId {
        match self {
            RuntimeEvent::FovChange { display, .. }
            | RuntimeEvent::Viewpoint { display, .. }
            | RuntimeEvent::FovClear { display } => display.site(),
            RuntimeEvent::SiteJoin { site }
            | RuntimeEvent::SiteLeave { site }
            | RuntimeEvent::BandwidthSample { site, .. } => *site,
        }
    }

    /// Returns true for events that can change the overlay (everything
    /// except bandwidth samples).
    pub fn affects_overlay(&self) -> bool {
        !matches!(self, RuntimeEvent::BandwidthSample { .. })
    }
}
