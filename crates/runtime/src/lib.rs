//! The epoch-driven session runtime: live operation of a 3D
//! tele-immersive session, closing the FoV → overlay → dissemination loop
//! the paper leaves to future work.
//!
//! Every layer of the reproduction exists below this crate — geometry FOV
//! selection (`teeve-geometry`), pubsub membership (`teeve-pubsub`),
//! incremental overlay maintenance (`teeve-overlay`), bandwidth
//! adaptation (`teeve-adapt`) — but nothing drives them as *one running
//! system*. [`SessionRuntime`] does:
//!
//! * it consumes [`RuntimeEvent`]s — display FOV changes, site
//!   join/leave, bandwidth samples;
//! * reconciles them in **epochs** against the live forest via
//!   incremental repair, falling back to full reconstruction when a
//!   [`FallbackPolicy`] threshold trips;
//! * emits [`PlanDelta`]s (per-site forwarding-entry diffs) that the
//!   discrete-event simulator (`teeve_sim::simulate_with_replans`) and
//!   the live TCP cluster (`teeve_net::link_changes`) apply without
//!   tearing down unaffected links;
//! * records per-epoch [`EpochReport`] metrics: reconvergence time,
//!   delta size vs full plan size, dropped subscriptions;
//! * fits delivered streams into each site's estimated bandwidth
//!   (per-site [`AdaptationPlan`](teeve_adapt::AdaptationPlan)s).
//!
//! [`TraceConfig`] generates seeded churn traces for tests and benches.
//!
//! # Examples
//!
//! ```
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//! use teeve_pubsub::{subscription_universe, Session};
//! use teeve_runtime::{RuntimeConfig, SessionRuntime, TraceConfig};
//! use teeve_types::{CostMatrix, CostMs, Degree};
//!
//! let costs = CostMatrix::from_fn(5, |i, j| CostMs::new(4 + ((i + j) % 3) as u32));
//! let session = Session::builder(costs)
//!     .cameras_per_site(6)
//!     .displays_per_site(2)
//!     .symmetric_capacity(Degree::new(10))
//!     .build();
//! let universe = subscription_universe(&session)?;
//! let mut runtime = SessionRuntime::new(universe, session, RuntimeConfig::default())?;
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(2008);
//! for epoch in TraceConfig::default().generate(5, 2, &mut rng) {
//!     let outcome = runtime.apply_epoch(&epoch);
//!     runtime.validate()?; // every epoch maintains the static invariants
//!     assert_eq!(outcome.report.epoch + 1, runtime.epoch());
//! }
//! assert_eq!(runtime.epoch(), 20);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod commit;
mod config;
mod event;
mod metrics;
mod runtime;
mod trace;

pub use commit::EpochCommit;
pub use config::{FallbackPolicy, RuntimeConfig};
pub use event::RuntimeEvent;
pub use metrics::{EpochReport, PhaseBreakdown, RuntimeReport};
pub use runtime::{EpochOutcome, RuntimeError, SessionRuntime};
pub use trace::TraceConfig;

// Re-exported so runtime callers can build the universe and implement
// delta executors without importing teeve-pubsub directly.
pub use teeve_pubsub::{subscription_universe, DeltaSink, PlanDelta};
