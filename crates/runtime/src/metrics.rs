//! Per-epoch runtime metrics: what each reconciliation cost and changed.

use std::time::Duration;

/// Wall-clock breakdown of one epoch's reconvergence into its phases.
///
/// The phases are consecutive spans of
/// [`SessionRuntime::apply_epoch`](crate::SessionRuntime::apply_epoch)
/// measured from one monotonic clock, so they sum *exactly* to the
/// epoch's [`reconverge`](EpochReport::reconverge) — a skewed phase
/// always shows up, never hides in unaccounted time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// Ingesting the epoch's events and syncing bandwidth budgets.
    pub event_drain: Duration,
    /// Incremental repair: leaves, joins, and — on fallback epochs —
    /// the full reconstruction behind the rebuild gate.
    pub repair: Duration,
    /// Re-fitting granted streams to each site's current budget.
    pub refit: Duration,
    /// Deriving the epoch's dissemination plan.
    pub derive: Duration,
    /// Extracting the plan delta and accounting served/dropped state.
    pub delta: Duration,
}

impl PhaseBreakdown {
    /// Sum of every phase — by construction equal to the epoch's
    /// `reconverge`.
    pub fn total(&self) -> Duration {
        self.event_drain + self.repair + self.refit + self.derive + self.delta
    }

    /// Folds another breakdown in, phase-wise.
    pub fn accumulate(&mut self, other: &PhaseBreakdown) {
        self.event_drain += other.event_drain;
        self.repair += other.repair;
        self.refit += other.refit;
        self.derive += other.derive;
        self.delta += other.delta;
    }
}

/// Metrics of one [`SessionRuntime`](crate::SessionRuntime) epoch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EpochReport {
    /// The epoch number (monotonic from zero).
    pub epoch: u64,
    /// Events consumed this epoch.
    pub events: usize,
    /// Stream joins attempted, during incremental repair and — on
    /// fallback epochs — the full reconstruction that follows it.
    pub subscribes: usize,
    /// Site-level unsubscriptions applied.
    pub unsubscribes: usize,
    /// Joins that found a feasible parent.
    pub accepted: usize,
    /// Joins rejected for bandwidth or latency.
    pub rejected: usize,
    /// Downstream sites re-attached after a relay left.
    pub reattached: usize,
    /// Subscriptions that were being served at the start of the epoch,
    /// are still desired, but end the epoch unserved — descendants of a
    /// departed relay with no feasible parent left, or casualties of a
    /// full reconstruction. Drops re-admitted within the same epoch are
    /// not counted; the rest retry next epoch.
    pub dropped_subscriptions: usize,
    /// Subscriptions the epoch's plan serves at full quality.
    pub served_full: usize,
    /// Subscriptions the epoch's plan serves below full quality — the
    /// degrade-don't-reject outcome: still delivered, at a lower rung,
    /// instead of being dropped or rejected outright.
    pub served_degraded: usize,
    /// Whether the epoch fell back to full reconstruction.
    pub rebuilt: bool,
    /// Entry changes in the emitted [`PlanDelta`](teeve_pubsub::PlanDelta).
    pub delta_entries: usize,
    /// Forwarding entries in the full plan, for comparison with
    /// `delta_entries` (the dissemination savings of delta shipping).
    pub plan_entries: usize,
    /// Deepest multicast tree after the epoch, in hops.
    pub max_tree_depth: usize,
    /// Wall-clock time reconciling the epoch (repair or rebuild, plan
    /// derivation, and delta extraction).
    pub reconverge: Duration,
    /// Where `reconverge` went: per-phase spans summing exactly to it.
    pub phases: PhaseBreakdown,
}

impl EpochReport {
    /// Returns the epoch's join rejection ratio over every attempt
    /// recorded so far, or `None` when no joins were attempted. The
    /// fallback decision evaluates this before reconstruction counts in;
    /// a finished epoch's report covers both phases.
    pub fn rejection_ratio(&self) -> Option<f64> {
        if self.subscribes == 0 {
            None
        } else {
            Some(self.rejected as f64 / self.subscribes as f64)
        }
    }

    /// Returns the delta's size relative to shipping the full plan
    /// (1.0 = as expensive as a full replan; 0.0 = nothing changed).
    /// Can exceed 1.0 on shrinking epochs, where removals outnumber the
    /// entries that remain.
    pub fn delta_fraction(&self) -> f64 {
        if self.plan_entries == 0 {
            0.0
        } else {
            self.delta_entries as f64 / self.plan_entries as f64
        }
    }
}

/// Aggregate statistics over a runtime's whole history.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RuntimeReport {
    /// Epochs processed.
    pub epochs: usize,
    /// Epochs that fell back to full reconstruction.
    pub rebuilds: usize,
    /// Total joins attempted.
    pub subscribes: usize,
    /// Total joins accepted.
    pub accepted: usize,
    /// Total subscriptions dropped (descendants of departed relays).
    pub dropped_subscriptions: usize,
    /// Sum of per-epoch full-quality served subscription counts.
    pub served_full: usize,
    /// Sum of per-epoch degraded served subscription counts.
    pub served_degraded: usize,
    /// Sum of all epochs' reconvergence times.
    pub total_reconverge: Duration,
    /// Where the total reconvergence went, phase by phase.
    pub phase_totals: PhaseBreakdown,
    /// Sum of emitted delta entries.
    pub delta_entries: usize,
    /// Sum of full-plan entries at each epoch (the cost deltas avoided).
    pub plan_entries: usize,
}

impl RuntimeReport {
    /// Folds a history of epoch reports into totals.
    pub fn from_history(history: &[EpochReport]) -> Self {
        let mut report = RuntimeReport {
            epochs: history.len(),
            ..RuntimeReport::default()
        };
        for epoch in history {
            report.rebuilds += usize::from(epoch.rebuilt);
            report.subscribes += epoch.subscribes;
            report.accepted += epoch.accepted;
            report.dropped_subscriptions += epoch.dropped_subscriptions;
            report.served_full += epoch.served_full;
            report.served_degraded += epoch.served_degraded;
            report.total_reconverge += epoch.reconverge;
            report.phase_totals.accumulate(&epoch.phases);
            report.delta_entries += epoch.delta_entries;
            report.plan_entries += epoch.plan_entries;
        }
        report
    }

    /// Mean reconvergence time per epoch.
    pub fn mean_reconverge(&self) -> Duration {
        if self.epochs == 0 {
            Duration::ZERO
        } else {
            self.total_reconverge / self.epochs as u32
        }
    }

    /// Overall delta size relative to full-plan shipping.
    pub fn delta_fraction(&self) -> f64 {
        if self.plan_entries == 0 {
            0.0
        } else {
            self.delta_entries as f64 / self.plan_entries as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_empty_epochs() {
        let e = EpochReport::default();
        assert_eq!(e.rejection_ratio(), None);
        assert_eq!(e.delta_fraction(), 0.0);
    }

    #[test]
    fn history_folds_into_totals() {
        let history = vec![
            EpochReport {
                epoch: 0,
                subscribes: 4,
                accepted: 3,
                rejected: 1,
                delta_entries: 2,
                plan_entries: 10,
                reconverge: Duration::from_micros(50),
                ..EpochReport::default()
            },
            EpochReport {
                epoch: 1,
                rebuilt: true,
                subscribes: 6,
                accepted: 6,
                delta_entries: 8,
                plan_entries: 10,
                reconverge: Duration::from_micros(150),
                ..EpochReport::default()
            },
        ];
        let r = RuntimeReport::from_history(&history);
        assert_eq!(r.epochs, 2);
        assert_eq!(r.rebuilds, 1);
        assert_eq!(r.subscribes, 10);
        assert_eq!(r.accepted, 9);
        assert_eq!(r.mean_reconverge(), Duration::from_micros(100));
        assert_eq!(r.delta_fraction(), 0.5);
    }
}
