//! The epoch-driven session runtime.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use teeve_adapt::{AdaptStream, AdaptationController, AdaptationPlan, BandwidthEstimator};
use teeve_overlay::{
    fit_qualities, validate_forest, Forest, InvariantViolation, OverlayManager, ProblemInstance,
    SubscribeResult,
};
use teeve_pubsub::{DeltaSink, DisseminationPlan, PlanDelta, Session};
use teeve_telemetry::{FlightEventKind, FlightRecorder, Histogram, MetricsRegistry};
use teeve_types::{DisplayId, Quality, QualityLadder, SessionId, SiteId, StreamId};

use crate::commit::EpochCommit;
use crate::config::RuntimeConfig;
use crate::event::RuntimeEvent;
use crate::metrics::{EpochReport, PhaseBreakdown, RuntimeReport};

/// Pre-resolved telemetry handles the runtime records each epoch into:
/// one histogram per phase plus the whole-epoch reconvergence, and the
/// flight recorder for structural events (rebuild-gate trips).
#[derive(Debug, Clone)]
struct RuntimeTelemetry {
    event_drain: Histogram,
    repair: Histogram,
    refit: Histogram,
    derive: Histogram,
    delta: Histogram,
    reconverge: Histogram,
    recorder: FlightRecorder,
}

/// Error produced when assembling a runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// The subscription universe covers a different site count than the
    /// session (it was built for another session).
    UniverseMismatch {
        /// Sites in the universe problem.
        universe_sites: usize,
        /// Sites in the session.
        session_sites: usize,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::UniverseMismatch {
                universe_sites,
                session_sites,
            } => write!(
                f,
                "universe covers {universe_sites} sites, session has {session_sites}"
            ),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// Everything one epoch produced: the plan diff to disseminate, the
/// epoch's metrics, and per-site quality adaptation decisions.
#[derive(Debug, Clone)]
pub struct EpochOutcome {
    /// Forwarding-state changes turning the previous plan into the new
    /// one; executors apply this without touching unaffected links.
    pub delta: PlanDelta,
    /// The epoch's runtime metrics.
    pub report: EpochReport,
    /// Quality decisions for every site with a warm bandwidth estimate:
    /// which delivered streams to take at which ladder level.
    pub adaptation: BTreeMap<SiteId, AdaptationPlan>,
    /// The epoch's durable record — the consumed event batch plus the
    /// derived state a store persists (and a recovery cross-checks).
    pub commit: EpochCommit,
}

/// An event-driven orchestrator owning a live 3DTI session end to end.
///
/// The paper solves the static overlay construction problem; the runtime
/// closes the loop for *live* operation. It consumes a stream of
/// [`RuntimeEvent`]s — display FOV changes (geometry), site join/leave
/// (membership churn), bandwidth samples (transport) — and reconciles
/// them in **epochs**:
///
/// 1. events update the session's desired subscription state;
/// 2. the desired state is diffed against the live overlay and repaired
///    incrementally (leaves first, then joins, retrying past rejections);
/// 3. if the epoch's rejection ratio or tree depth degrades past the
///    [`FallbackPolicy`](crate::FallbackPolicy), the forest is rebuilt
///    from scratch instead — at most once per distinct demand, since
///    reconstruction is deterministic and rebuilding again for unchanged
///    demand would reproduce the same forest at full cost;
/// 4. a new [`DisseminationPlan`] is derived and emitted as a
///    [`PlanDelta`] against the previous epoch's plan, so executors (the
///    simulator's [`simulate_with_replans`], the TCP cluster) only touch
///    what changed;
/// 5. per-site [`AdaptationPlan`]s fit the delivered streams into each
///    site's estimated bandwidth.
///
/// [`simulate_with_replans`]: https://docs.rs/teeve-sim
///
/// # Examples
///
/// ```
/// use teeve_pubsub::{subscription_universe, Session};
/// use teeve_runtime::{RuntimeConfig, RuntimeEvent, SessionRuntime};
/// use teeve_types::{CostMatrix, CostMs, Degree, DisplayId, SiteId};
///
/// let costs = CostMatrix::from_fn(4, |_, _| CostMs::new(6));
/// let session = Session::builder(costs)
///     .cameras_per_site(6)
///     .displays_per_site(1)
///     .symmetric_capacity(Degree::new(12))
///     .build();
/// let universe = subscription_universe(&session)?;
/// let mut runtime = SessionRuntime::new(universe, session, RuntimeConfig::default())?;
///
/// let outcome = runtime.apply_epoch(&[RuntimeEvent::Viewpoint {
///     display: DisplayId::new(SiteId::new(0), 0),
///     target: SiteId::new(2),
/// }]);
/// assert!(!outcome.delta.is_empty());
/// assert!(outcome.report.accepted > 0);
/// runtime.validate()?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct SessionRuntime {
    universe: Arc<ProblemInstance>,
    session: Session,
    manager: OverlayManager,
    plan: DisseminationPlan,
    /// Streams each site currently receives through the overlay.
    granted: Vec<BTreeSet<StreamId>>,
    /// Site liveness; inactive sites hold no subscriptions and their
    /// streams are suspended everywhere.
    active: Vec<bool>,
    estimators: Vec<BandwidthEstimator>,
    /// Last FOV contribution score per (display, stream), for adaptation.
    /// Entries live exactly as long as the display's current FOV demands
    /// the stream: each FOV event replaces the display's scores wholesale.
    scores: BTreeMap<(DisplayId, StreamId), f64>,
    /// The quality-annotated demand the forest was last rebuilt for,
    /// valid while no incremental mutation has touched the forest since.
    /// Each site's desired streams map to the quality rung its current
    /// budget would fit them at, so unchanged membership with a changed
    /// budget reads as *new* demand (a rebuild may admit differently)
    /// while truly unchanged demand never rebuilds twice —
    /// reconstruction is deterministic, and thrashing on persistently
    /// infeasible demand is exactly what this gate prevents.
    rebuilt_for: Option<Vec<BTreeMap<StreamId, Quality>>>,
    /// The quality ladder shared by admission, refitting, and the
    /// per-epoch adaptation reports.
    ladder: QualityLadder,
    /// The hosted session this runtime serves when owned by a
    /// multi-session service; every derived plan and emitted delta is
    /// stamped with it.
    scope: Option<SessionId>,
    config: RuntimeConfig,
    epoch: u64,
    history: Vec<EpochReport>,
    /// Attached observability sinks; `None` keeps the hot path free of
    /// registry lookups.
    telemetry: Option<RuntimeTelemetry>,
}

impl SessionRuntime {
    /// Creates a runtime over `session`, seeding the overlay from the
    /// session's current display subscriptions.
    ///
    /// `universe` must be the session's subscription universe (see
    /// [`subscription_universe`](teeve_pubsub::subscription_universe)):
    /// the problem instance declaring every admissible subscription. The
    /// runtime *owns* it — pass the instance by value, or a clone of an
    /// `Arc<ProblemInstance>` when sharing it — so runtimes are
    /// free-standing values a long-lived service can collect in a
    /// registry.
    ///
    /// # Errors
    ///
    /// Returns an error if `universe` covers a different site count.
    pub fn new(
        universe: impl Into<Arc<ProblemInstance>>,
        session: Session,
        config: RuntimeConfig,
    ) -> Result<Self, RuntimeError> {
        let universe = universe.into();
        let n = session.site_count();
        if universe.site_count() != n {
            return Err(RuntimeError::UniverseMismatch {
                universe_sites: universe.site_count(),
                session_sites: n,
            });
        }
        let manager = Self::make_manager(&universe, &config);
        let mut runtime = SessionRuntime {
            plan: DisseminationPlan::from_forest(
                &universe,
                &manager.forest_snapshot(),
                session.profile(),
            ),
            universe,
            manager,
            granted: vec![BTreeSet::new(); n],
            active: vec![true; n],
            estimators: vec![BandwidthEstimator::new(config.bandwidth_alpha); n],
            scores: BTreeMap::new(),
            rebuilt_for: None,
            ladder: QualityLadder::paper_default(),
            scope: None,
            session,
            config,
            epoch: 0,
            history: Vec::new(),
            telemetry: None,
        };
        // Seed the overlay from the session's pre-existing subscriptions;
        // the empty-forest plan built above is already correct unless the
        // seed granted something.
        let mut seed_report = EpochReport::default();
        runtime.reconcile(&mut seed_report);
        if seed_report.accepted > 0 {
            runtime.plan = runtime.derive_plan();
        }
        Ok(runtime)
    }

    /// Scopes the runtime to one hosted session of a multi-session
    /// service: the current plan and every future plan and delta carry
    /// `scope`, so a shared executor (see
    /// [`DeltaRouter`](teeve_pubsub::DeltaRouter)) can route them.
    #[must_use]
    pub fn with_scope(mut self, scope: SessionId) -> Self {
        self.scope = Some(scope);
        self.plan.set_scope(Some(scope));
        self
    }

    /// Returns the hosted session this runtime is scoped to, if any.
    pub fn scope(&self) -> Option<SessionId> {
        self.scope
    }

    /// Attaches observability sinks: every subsequent epoch records its
    /// phase spans and reconvergence into `registry`'s
    /// `runtime.phase.*_micros` / `runtime.reconverge_micros` histograms,
    /// and structural events (rebuild-gate trips) into `recorder`.
    ///
    /// Handles are resolved once here so the epoch hot path never takes
    /// a registry lock. The registry and recorder are shared — a
    /// multi-session service attaches the same pair to every runtime it
    /// owns and reads one merged distribution.
    pub fn attach_telemetry(&mut self, registry: &MetricsRegistry, recorder: FlightRecorder) {
        self.telemetry = Some(RuntimeTelemetry {
            event_drain: registry.histogram("runtime.phase.event_drain_micros"),
            repair: registry.histogram("runtime.phase.repair_micros"),
            refit: registry.histogram("runtime.phase.refit_micros"),
            derive: registry.histogram("runtime.phase.derive_micros"),
            delta: registry.histogram("runtime.phase.delta_micros"),
            reconverge: registry.histogram("runtime.reconverge_micros"),
            recorder,
        });
    }

    /// Returns the session in its current state.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Returns the subscription universe the overlay operates over.
    pub fn universe(&self) -> &ProblemInstance {
        &self.universe
    }

    /// Returns the dissemination plan of the latest epoch.
    pub fn plan(&self) -> &DisseminationPlan {
        &self.plan
    }

    /// Returns the number of completed epochs.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Returns every epoch's metrics, oldest first.
    pub fn history(&self) -> &[EpochReport] {
        &self.history
    }

    /// Returns the aggregate statistics over all epochs.
    pub fn report(&self) -> RuntimeReport {
        RuntimeReport::from_history(&self.history)
    }

    /// Returns whether `site` is currently part of the session.
    pub fn is_active(&self, site: SiteId) -> bool {
        self.active[site.index()]
    }

    /// Returns the streams `site` currently receives through the overlay.
    pub fn granted(&self, site: SiteId) -> &BTreeSet<StreamId> {
        &self.granted[site.index()]
    }

    /// Returns a snapshot of the live multicast forest.
    pub fn forest_snapshot(&self) -> Forest {
        self.manager.forest_snapshot()
    }

    /// Checks every static invariant on the live forest.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), InvariantViolation> {
        validate_forest(&self.universe, &self.forest_snapshot())
    }

    /// Consumes one epoch's worth of events, reconciles the overlay, and
    /// returns the resulting plan delta, metrics, and adaptation plans.
    pub fn apply_epoch(&mut self, events: &[RuntimeEvent]) -> EpochOutcome {
        let started = Instant::now();
        let mut report = EpochReport {
            epoch: self.epoch,
            events: events.len(),
            ..EpochReport::default()
        };
        let n = self.session.site_count();
        let served_before = self.granted.clone();

        for event in events {
            self.ingest(event);
        }
        // Feed the transport layer's estimates into the overlay's
        // degrade-don't-reject admission before any join is attempted.
        self.sync_budgets();
        let drained = Instant::now();

        let desired = self.reconcile(&mut report);
        // The gate below keys on *quality-annotated* demand: the desired
        // streams plus the rung each site's current budget would fit them
        // at, so a budget shift re-opens the gate (a rebuild may now
        // admit differently) while truly unchanged demand never rebuilds
        // twice.
        let annotated = self.annotate_demand(&desired);
        if report.unsubscribes > 0 || report.accepted > 0 {
            // The forest mutated since any previous rebuild; a rebuild
            // for the same demand is no longer a guaranteed no-op.
            self.rebuilt_for = None;
        }

        // Degradation check: fall back to full reconstruction when the
        // incremental repair path has dug itself into a hole — unless the
        // forest is already the reconstruction of this exact demand
        // (persistently infeasible subscriptions re-rejected every epoch
        // must not trigger a full rebuild every epoch).
        if self
            .config
            .fallback
            .must_rebuild(report.rejection_ratio(), self.forest_depth())
            && self.rebuilt_for.as_ref() != Some(&annotated)
        {
            if let Some(telemetry) = &self.telemetry {
                telemetry
                    .recorder
                    .record(FlightEventKind::RebuildGate { epoch: self.epoch });
            }
            self.rebuild(&mut report);
            self.rebuilt_for = Some(annotated);
        }
        report.max_tree_depth = self.forest_depth();
        let repaired = Instant::now();

        // Close the adaptation loop: re-fit every site's granted streams
        // to its current budget (degrading under pressure, promoting when
        // it clears), so the plan derived below — and the delta diffed
        // from it — carries this epoch's quality decisions.
        self.refit_qualities();
        let refitted = Instant::now();

        // Every epoch is one control-plane revision, even a quiet one: the
        // emitted delta always advances executors from the previous
        // epoch's revision to this one's.
        let mut new_plan = self.derive_plan();
        new_plan.set_revision(self.plan.revision() + 1);
        let derived = Instant::now();
        let delta = PlanDelta::diff(&self.plan, &new_plan);
        report.delta_entries = delta.len();
        report.plan_entries = new_plan
            .site_plans()
            .iter()
            .map(|sp| sp.entries.len())
            .sum();
        self.plan = new_plan;

        // Service lost this epoch: previously served subscriptions that
        // are still wanted but end the epoch unserved (casualties of a
        // departed relay or of the reconstruction; they retry next epoch).
        for site in SiteId::all(n) {
            report.dropped_subscriptions += served_before[site.index()]
                .iter()
                .filter(|st| {
                    desired[site.index()].contains(st) && !self.granted[site.index()].contains(st)
                })
                .count();
        }
        // Quality of service actually delivered: every planned delivery
        // is either full or degraded — the degrade-don't-reject path
        // turns would-be drops into the latter.
        for sp in self.plan.site_plans() {
            for entry in &sp.entries {
                if entry.is_origin() {
                    continue;
                }
                if entry.quality.is_full() {
                    report.served_full += 1;
                } else {
                    report.served_degraded += 1;
                }
            }
        }
        let finished = Instant::now();
        // Consecutive spans of one monotonic clock: the phases telescope,
        // so their sum equals `reconverge` exactly — see PhaseBreakdown.
        report.phases = PhaseBreakdown {
            event_drain: drained.duration_since(started),
            repair: repaired.duration_since(drained),
            refit: refitted.duration_since(repaired),
            derive: derived.duration_since(refitted),
            delta: finished.duration_since(derived),
        };
        report.reconverge = finished.duration_since(started);
        if let Some(telemetry) = &self.telemetry {
            telemetry
                .event_drain
                .record_duration(report.phases.event_drain);
            telemetry.repair.record_duration(report.phases.repair);
            telemetry.refit.record_duration(report.phases.refit);
            telemetry.derive.record_duration(report.phases.derive);
            telemetry.delta.record_duration(report.phases.delta);
            telemetry.reconverge.record_duration(report.reconverge);
        }

        let adaptation = self.adaptation_plans();
        let commit = EpochCommit {
            epoch: report.epoch,
            revision: self.plan.revision(),
            events: events.to_vec(),
            demand: desired
                .iter()
                .map(|d| d.iter().copied().collect())
                .collect(),
            granted: SiteId::all(n)
                .map(|site| {
                    self.granted[site.index()]
                        .iter()
                        .map(|&stream| (stream, self.quality_of(site, stream)))
                        .collect()
                })
                .collect(),
            ladder: self.ladder.clone(),
        };
        self.epoch += 1;
        self.history.push(report.clone());
        EpochOutcome {
            delta,
            report,
            adaptation,
            commit,
        }
    }

    /// Replays a whole trace, pushing every epoch's [`PlanDelta`] into a
    /// live executor as it is produced: each epoch reconciles the overlay,
    /// then `sink` applies the delta before the next epoch runs, exactly
    /// how the membership server dictates reconfigurations to running
    /// rendezvous points.
    ///
    /// Returns every epoch's outcome, in order.
    ///
    /// # Errors
    ///
    /// Stops at — and returns — the first delta the executor rejects; the
    /// runtime itself has already advanced past that epoch.
    pub fn drive_epochs<S: DeltaSink>(
        &mut self,
        trace: &[Vec<RuntimeEvent>],
        sink: &mut S,
    ) -> Result<Vec<EpochOutcome>, S::Error> {
        let mut outcomes = Vec::with_capacity(trace.len());
        for events in trace {
            let outcome = self.apply_epoch(events);
            sink.apply_delta(&outcome.delta)?;
            outcomes.push(outcome);
        }
        Ok(outcomes)
    }

    /// Applies one event to the session's desired state.
    fn ingest(&mut self, event: &RuntimeEvent) {
        match event {
            RuntimeEvent::FovChange { display, fov } => {
                let scored = self.session.subscribe_fov(*display, fov);
                self.record_scores(*display, scored);
            }
            RuntimeEvent::Viewpoint { display, target } => {
                let scored = self.session.subscribe_viewpoint(*display, *target);
                self.record_scores(*display, scored);
            }
            RuntimeEvent::FovClear { display } => {
                self.session.subscribe_streams(*display, Vec::new());
                self.clear_scores(*display);
            }
            RuntimeEvent::SiteJoin { site } => {
                self.active[site.index()] = true;
            }
            RuntimeEvent::SiteLeave { site } => {
                self.active[site.index()] = false;
                // The departed site's displays are gone; blank them so a
                // rejoin starts fresh.
                let displays = self.session.rp(*site).display_count();
                for d in 0..displays {
                    let display = DisplayId::new(*site, d);
                    self.session.subscribe_streams(display, Vec::new());
                    self.clear_scores(display);
                }
                self.estimators[site.index()].reset();
            }
            RuntimeEvent::BandwidthSample { site, bits_per_sec } => {
                self.estimators[site.index()].observe_bps(*bits_per_sec);
            }
        }
    }

    /// Replaces `display`'s contribution scores with its new FOV's.
    fn record_scores(&mut self, display: DisplayId, scored: Vec<teeve_geometry::ScoredStream>) {
        self.clear_scores(display);
        for s in scored {
            self.scores.insert((display, s.stream), s.score);
        }
    }

    fn clear_scores(&mut self, display: DisplayId) {
        self.scores.retain(|(d, _), _| *d != display);
    }

    /// The strongest contribution score any of `site`'s displays currently
    /// records for `stream`, or the configured default when no live FOV
    /// explains the delivery.
    fn fov_score(&self, site: SiteId, stream: StreamId) -> f64 {
        (0..self.session.rp(site).display_count())
            .filter_map(|d| self.scores.get(&(DisplayId::new(site, d), stream)))
            .copied()
            .reduce(f64::max)
            .unwrap_or(self.config.default_score)
    }

    /// The streams `site` should receive: its aggregated display demand,
    /// filtered by liveness on both ends.
    fn desired(&self, site: SiteId) -> BTreeSet<StreamId> {
        if !self.active[site.index()] {
            return BTreeSet::new();
        }
        self.session
            .rp(site)
            .aggregated_requests()
            .into_iter()
            .filter(|s| self.active[s.origin().index()])
            .collect()
    }

    /// Diffs desired vs granted state and repairs the overlay
    /// incrementally: leaves first (freeing slots), then joins (including
    /// retries of joins rejected in earlier epochs). Returns the desired
    /// state it reconciled toward. Dropped descendants of departed relays
    /// are released here and retried in the join phase; whatever is still
    /// unserved is accounted once at the end of the epoch.
    fn reconcile(&mut self, report: &mut EpochReport) -> Vec<BTreeSet<StreamId>> {
        let n = self.session.site_count();
        let desired: Vec<BTreeSet<StreamId>> = SiteId::all(n).map(|s| self.desired(s)).collect();

        for site in SiteId::all(n) {
            let gone: Vec<StreamId> = self.granted[site.index()]
                .difference(&desired[site.index()])
                .copied()
                .collect();
            for stream in gone {
                report.unsubscribes += 1;
                if let Ok(result) = self.manager.unsubscribe(site, stream) {
                    report.reattached += result.reattached.len();
                    for dropped in result.dropped {
                        self.granted[dropped.index()].remove(&stream);
                    }
                }
                self.granted[site.index()].remove(&stream);
            }
        }

        for site in SiteId::all(n) {
            let wanted: Vec<StreamId> = desired[site.index()]
                .difference(&self.granted[site.index()])
                .copied()
                .collect();
            for stream in wanted {
                self.try_subscribe(site, stream, report);
            }
        }
        desired
    }

    /// Attempts one join through the degrade-don't-reject admission path,
    /// carrying the subscription's FOV contribution score, recording the
    /// attempt in `report` and the grant on success. Shared by
    /// incremental repair and full reconstruction so both feed the
    /// rejection ratio identically.
    fn try_subscribe(&mut self, site: SiteId, stream: StreamId, report: &mut EpochReport) {
        report.subscribes += 1;
        let score = self.fov_score(site, stream);
        match self.manager.subscribe_scored(site, stream, score) {
            Ok(admission)
                if matches!(
                    admission.result,
                    SubscribeResult::Joined { .. } | SubscribeResult::AlreadyJoined
                ) =>
            {
                report.accepted += 1;
                self.granted[site.index()].insert(stream);
                // A CO-RJ swap sacrificed another subscription at this
                // site; release it so it is re-tried (and accounted as
                // dropped if still unserved at epoch end) rather than
                // silently presumed delivered.
                if let Some(victim) = admission.victim {
                    self.granted[site.index()].remove(&victim);
                }
            }
            _ => report.rejected += 1,
        }
    }

    /// Pushes every site's current bandwidth estimate into the overlay's
    /// rate-admission budgets (a no-op with the loop disabled). Cold
    /// estimators leave their site unconstrained.
    fn sync_budgets(&mut self) {
        if !self.config.degrade_dont_reject {
            return;
        }
        for site in SiteId::all(self.session.site_count()) {
            let budget = self.budget_of(site);
            self.manager.set_rate_budget(site, budget);
        }
    }

    /// The bit-rate budget `site`'s warm estimator implies, or `None`
    /// while the estimator is cold (or the loop is disabled).
    fn budget_of(&self, site: SiteId) -> Option<u64> {
        let estimator = &self.estimators[site.index()];
        (self.config.degrade_dont_reject && estimator.is_warm())
            .then(|| estimator.estimate_bps().max(0.0) as u64)
    }

    /// Annotates the desired state with the quality rung each site's
    /// current budget would fit it at — the key of the rebuild-once gate.
    fn annotate_demand(&self, desired: &[BTreeSet<StreamId>]) -> Vec<BTreeMap<StreamId, Quality>> {
        SiteId::all(self.session.site_count())
            .map(|site| {
                let streams: Vec<(StreamId, f64)> = desired[site.index()]
                    .iter()
                    .map(|&stream| (stream, self.fov_score(site, stream)))
                    .collect();
                fit_qualities(&self.ladder, self.budget_of(site), &streams).qualities
            })
            .collect()
    }

    /// Re-fits every site's granted streams — freshly re-scored from the
    /// live FOV state — into its current budget, degrading or promoting
    /// as the estimate moved.
    fn refit_qualities(&mut self) {
        if !self.config.degrade_dont_reject {
            return;
        }
        for site in SiteId::all(self.session.site_count()) {
            let rescored: Vec<(StreamId, f64)> = self.granted[site.index()]
                .iter()
                .map(|&stream| (stream, self.fov_score(site, stream)))
                .collect();
            for (stream, score) in rescored {
                self.manager.rescore(site, stream, score);
            }
            self.manager.refit_site(site);
        }
    }

    /// Returns the quality rung `site` currently receives `stream` at
    /// ([`Quality::FULL`] unless the adaptation loop degraded it).
    pub fn quality_of(&self, site: SiteId, stream: StreamId) -> Quality {
        self.manager.quality_of(site, stream)
    }

    fn make_manager(universe: &Arc<ProblemInstance>, config: &RuntimeConfig) -> OverlayManager {
        let mut manager = OverlayManager::new(Arc::clone(universe));
        if config.correlation_aware {
            manager = manager.with_correlation_swapping();
        }
        if config.degrade_dont_reject {
            manager = manager.with_rate_admission(QualityLadder::paper_default());
        }
        manager
    }

    /// Rebuilds the forest from scratch for the current desired state,
    /// accounting every join attempted; subscriptions that lose their slot
    /// to the reconstruction surface in the epoch's final drop count.
    fn rebuild(&mut self, report: &mut EpochReport) {
        report.rebuilt = true;
        let n = self.session.site_count();
        self.manager = Self::make_manager(&self.universe, &self.config);
        // A fresh manager forgets its budgets; re-admission must see the
        // same rate constraints the incremental path did.
        self.sync_budgets();
        self.granted = vec![BTreeSet::new(); n];
        for site in SiteId::all(n) {
            for stream in self.desired(site) {
                self.try_subscribe(site, stream, report);
            }
        }
    }

    fn forest_depth(&self) -> usize {
        self.manager
            .state()
            .trees()
            .iter()
            .map(|t| t.depth())
            .max()
            .unwrap_or(0)
    }

    fn derive_plan(&self) -> DisseminationPlan {
        let mut plan = DisseminationPlan::from_trees(
            &self.universe,
            self.manager.state().trees(),
            self.session.profile(),
        );
        plan.set_scope(self.scope);
        // Stamp the adaptation loop's quality decisions onto the plan:
        // the delta diffed against the previous epoch then carries them
        // to every executor, socket-free when nothing structural moved.
        if self.config.degrade_dont_reject {
            for site in SiteId::all(self.session.site_count()) {
                for stream in plan.deliveries_to(site) {
                    let quality = self.manager.quality_of(site, stream);
                    if !quality.is_full() {
                        plan.set_quality(site, stream, quality);
                    }
                }
            }
        }
        plan
    }

    /// Fits each warm site's delivered streams into its estimated
    /// bandwidth, prioritized by FOV contribution.
    pub(crate) fn adaptation_plans(&self) -> BTreeMap<SiteId, AdaptationPlan> {
        let mut plans = BTreeMap::new();
        for site in SiteId::all(self.session.site_count()) {
            let estimator = &self.estimators[site.index()];
            if !self.active[site.index()] || !estimator.is_warm() {
                continue;
            }
            let streams: Vec<AdaptStream> = self
                .plan
                .deliveries_to(site)
                .into_iter()
                .map(|stream| AdaptStream {
                    stream,
                    score: self.fov_score(site, stream),
                    ladder: self.ladder.clone(),
                })
                .collect();
            if streams.is_empty() {
                continue;
            }
            let budget = estimator.estimate_bps().max(0.0) as u64;
            plans.insert(site, AdaptationController::new().plan(budget, &streams));
        }
        plans
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FallbackPolicy;
    use teeve_pubsub::subscription_universe;
    use teeve_types::{CostMatrix, CostMs, Degree};

    fn site(i: u32) -> SiteId {
        SiteId::new(i)
    }

    fn session(n: usize, capacity: u32) -> Session {
        let costs = CostMatrix::from_fn(n, |i, j| CostMs::new(4 + ((i + j) % 3) as u32));
        Session::builder(costs)
            .cameras_per_site(6)
            .displays_per_site(2)
            .symmetric_capacity(Degree::new(capacity))
            .build()
    }

    fn viewpoint(s: u32, d: u32, target: u32) -> RuntimeEvent {
        RuntimeEvent::Viewpoint {
            display: DisplayId::new(site(s), d),
            target: site(target),
        }
    }

    #[test]
    fn mismatched_universe_is_rejected() {
        let s4 = session(4, 10);
        let s5 = session(5, 10);
        let u5 = subscription_universe(&s5).unwrap();
        assert_eq!(
            SessionRuntime::new(u5, s4, RuntimeConfig::default()).unwrap_err(),
            RuntimeError::UniverseMismatch {
                universe_sites: 5,
                session_sites: 4
            }
        );
    }

    #[test]
    fn fov_changes_flow_into_the_plan() {
        let s = session(4, 10);
        let u = subscription_universe(&s).unwrap();
        let mut rt = SessionRuntime::new(u, s, RuntimeConfig::default()).unwrap();
        assert_eq!(
            rt.plan()
                .site_plans()
                .iter()
                .map(|sp| sp.entries.len())
                .sum::<usize>(),
            0
        );

        let outcome = rt.apply_epoch(&[viewpoint(0, 0, 2)]);
        assert!(outcome.report.accepted > 0);
        assert_eq!(outcome.report.rejected, 0);
        assert!(!outcome.delta.is_empty());
        assert!(!rt.plan().deliveries_to(site(0)).is_empty());
        assert!(rt
            .plan()
            .deliveries_to(site(0))
            .iter()
            .all(|st| st.origin() == site(2)));
        rt.validate().unwrap();
    }

    #[test]
    fn quiet_epochs_emit_empty_deltas() {
        let s = session(4, 10);
        let u = subscription_universe(&s).unwrap();
        let mut rt = SessionRuntime::new(u, s, RuntimeConfig::default()).unwrap();
        rt.apply_epoch(&[viewpoint(0, 0, 2)]);
        // Same viewpoint again: desired state unchanged, delta empty.
        let outcome = rt.apply_epoch(&[viewpoint(0, 0, 2)]);
        assert!(outcome.delta.is_empty());
        assert_eq!(outcome.report.subscribes, 0);
        assert_eq!(outcome.report.unsubscribes, 0);
    }

    #[test]
    fn site_leave_tears_down_its_trees_and_subscriptions() {
        let s = session(4, 10);
        let u = subscription_universe(&s).unwrap();
        let mut rt = SessionRuntime::new(u, s, RuntimeConfig::default()).unwrap();
        // Everyone watches site 1; site 1 watches site 2.
        rt.apply_epoch(&[
            viewpoint(0, 0, 1),
            viewpoint(2, 0, 1),
            viewpoint(3, 0, 1),
            viewpoint(1, 0, 2),
        ]);
        assert!(!rt.plan().deliveries_to(site(0)).is_empty());

        let outcome = rt.apply_epoch(&[RuntimeEvent::SiteLeave { site: site(1) }]);
        assert!(!rt.is_active(site(1)));
        assert!(outcome.report.unsubscribes > 0);
        // Site 1's streams are gone from everyone's deliveries, and its
        // own subscription to site 2 is released.
        for receiver in [site(0), site(2), site(3)] {
            assert!(rt
                .plan()
                .deliveries_to(receiver)
                .iter()
                .all(|st| st.origin() != site(1)));
        }
        assert!(rt.plan().deliveries_to(site(1)).is_empty());
        assert!(rt.granted(site(1)).is_empty());
        rt.validate().unwrap();
    }

    #[test]
    fn rejoin_resumes_suspended_subscriptions() {
        let s = session(4, 10);
        let u = subscription_universe(&s).unwrap();
        let mut rt = SessionRuntime::new(u, s, RuntimeConfig::default()).unwrap();
        rt.apply_epoch(&[viewpoint(0, 0, 1)]);
        rt.apply_epoch(&[RuntimeEvent::SiteLeave { site: site(1) }]);
        assert!(rt.plan().deliveries_to(site(0)).is_empty());

        // Site 1 rejoins: site 0's still-recorded FOV resubscribes
        // automatically (its display demand never changed).
        let outcome = rt.apply_epoch(&[RuntimeEvent::SiteJoin { site: site(1) }]);
        assert!(outcome.report.accepted > 0);
        assert!(!rt.plan().deliveries_to(site(0)).is_empty());
        rt.validate().unwrap();
    }

    #[test]
    fn rejected_joins_retry_on_later_epochs() {
        // Capacity 1: site 0 can only take one stream; the rest of its
        // demand stays pending and succeeds once the display looks away.
        let s = session(4, 1);
        let u = subscription_universe(&s).unwrap();
        let mut rt = SessionRuntime::new(
            u,
            s,
            RuntimeConfig {
                fallback: FallbackPolicy::never(),
                ..RuntimeConfig::default()
            },
        )
        .unwrap();
        let first = rt.apply_epoch(&[viewpoint(0, 0, 1), viewpoint(0, 1, 2)]);
        assert!(first.report.rejected > 0, "capacity 1 cannot serve all");
        let granted_before = rt.granted(site(0)).len();

        // Nothing changes: pending joins retry (and still fail).
        let retry = rt.apply_epoch(&[]);
        assert_eq!(retry.report.subscribes, retry.report.rejected);
        assert_eq!(rt.granted(site(0)).len(), granted_before);
        rt.validate().unwrap();
    }

    #[test]
    fn always_fallback_policy_rebuilds_every_epoch() {
        let s = session(4, 10);
        let u = subscription_universe(&s).unwrap();
        let mut rt = SessionRuntime::new(
            u,
            s,
            RuntimeConfig {
                fallback: FallbackPolicy::always(),
                ..RuntimeConfig::default()
            },
        )
        .unwrap();
        let outcome = rt.apply_epoch(&[viewpoint(0, 0, 1)]);
        assert!(outcome.report.rebuilt);
        assert!(rt.report().rebuilds >= 1);
        rt.validate().unwrap();
    }

    #[test]
    fn infeasible_demand_rebuilds_once_not_every_epoch() {
        // Inbound capacity 1 with two displays demanding different sites:
        // most joins are rejected every epoch, tripping the default
        // rejection-ratio fallback. The rebuild is deterministic in the
        // demand, so it must happen once — not on every retry epoch.
        let s = session(4, 1);
        let u = subscription_universe(&s).unwrap();
        let mut rt = SessionRuntime::new(u, s, RuntimeConfig::default()).unwrap();
        let first = rt.apply_epoch(&[viewpoint(0, 0, 1), viewpoint(0, 1, 2)]);
        assert!(first.report.rejected > 0, "capacity 1 cannot serve all");
        assert!(first.report.rebuilt, "default policy trips on rejections");

        // Demand unchanged: retries still fail, but no rebuild thrash.
        for _ in 0..3 {
            let retry = rt.apply_epoch(&[]);
            assert!(retry.report.rejected > 0);
            assert!(!retry.report.rebuilt, "unchanged demand must not rebuild");
        }
        assert_eq!(rt.report().rebuilds, 1);
        rt.validate().unwrap();
    }

    #[test]
    fn rebuild_accounts_joins_and_lost_service() {
        // Inbound capacity 1: site 0 can hold exactly one stream.
        let s = session(4, 1);
        let u = subscription_universe(&s).unwrap();
        let mut rt = SessionRuntime::new(
            u,
            s,
            RuntimeConfig {
                fallback: FallbackPolicy::always(),
                ..RuntimeConfig::default()
            },
        )
        .unwrap();
        let first = rt.apply_epoch(&[viewpoint(0, 0, 2)]);
        assert!(first.report.rebuilt);
        assert!(!rt.granted(site(0)).is_empty(), "one stream fits");

        // A second display demands site 1's streams, which sort before
        // the granted site-2 stream; the rebuild serves them first and
        // the old stream loses its slot. The epoch must report both the
        // reconstruction's join attempts and the lost subscription.
        let second = rt.apply_epoch(&[viewpoint(0, 1, 1)]);
        assert!(second.report.rebuilt);
        assert!(second.report.subscribes > 0);
        assert!(second.report.rejected > 0, "capacity 1 cannot serve all");
        assert!(
            second.report.dropped_subscriptions > 0,
            "losing a served stream to the rebuild must be reported"
        );
        assert!(rt.granted(site(0)).iter().all(|st| st.origin() == site(1)));
        rt.validate().unwrap();
    }

    #[test]
    fn fov_clear_and_site_leave_prune_contribution_scores() {
        let s = session(4, 10);
        let u = subscription_universe(&s).unwrap();
        let mut rt = SessionRuntime::new(u, s, RuntimeConfig::default()).unwrap();
        rt.apply_epoch(&[viewpoint(0, 0, 1), viewpoint(0, 1, 2), viewpoint(3, 0, 1)]);
        let display0 = DisplayId::new(site(0), 0);
        assert!(rt.scores.keys().any(|(d, _)| *d == display0));

        rt.apply_epoch(&[RuntimeEvent::FovClear { display: display0 }]);
        assert!(
            rt.scores.keys().all(|(d, _)| *d != display0),
            "cleared display keeps no scores"
        );
        assert!(
            rt.scores.keys().any(|(d, _)| d.site() == site(0)),
            "the sibling display's scores survive"
        );

        rt.apply_epoch(&[RuntimeEvent::SiteLeave { site: site(0) }]);
        assert!(rt.scores.keys().all(|(d, _)| d.site() != site(0)));
        assert!(rt.scores.keys().any(|(d, _)| d.site() == site(3)));
    }

    #[test]
    fn bandwidth_samples_produce_adaptation_plans() {
        let s = session(4, 10);
        let u = subscription_universe(&s).unwrap();
        let mut rt = SessionRuntime::new(u, s, RuntimeConfig::default()).unwrap();
        let outcome = rt.apply_epoch(&[
            viewpoint(0, 0, 1),
            viewpoint(0, 1, 2),
            // 12 Mbps cannot carry several 8 Mbps streams at full rate.
            RuntimeEvent::BandwidthSample {
                site: site(0),
                bits_per_sec: 12_000_000.0,
            },
        ]);
        let plan = outcome.adaptation.get(&site(0)).expect("warm estimator");
        assert!(plan.total_bitrate_bps() <= 12_000_000);
        assert!(plan.decisions().len() >= 2);
        // Sites without samples have no plan.
        assert!(!outcome.adaptation.contains_key(&site(3)));
    }

    #[test]
    fn bandwidth_pressure_emits_quality_only_deltas_and_degrades() {
        let s = session(4, 10);
        let u = subscription_universe(&s).unwrap();
        let mut rt = SessionRuntime::new(u, s, RuntimeConfig::default()).unwrap();
        // Epoch 0: one display watches site 1 (top-4 streams, all full).
        let setup = rt.apply_epoch(&[viewpoint(0, 0, 1)]);
        assert!(setup.report.accepted >= 2);
        assert_eq!(setup.report.served_degraded, 0);
        let streams = rt.plan().deliveries_to(site(0));
        assert!(streams.len() >= 2);

        // Epoch 1: congestion at site 0 — 12 Mbps cannot carry the
        // demand at full 8 Mbps rungs. Nothing structural changes, so
        // the emitted delta must be quality-only and socket-free.
        let pressured = rt.apply_epoch(&[RuntimeEvent::BandwidthSample {
            site: site(0),
            bits_per_sec: 12_000_000.0,
        }]);
        assert!(pressured.delta.is_quality_only(), "no membership churn");
        assert!(!pressured.delta.quality_changes().is_empty());
        assert!(pressured.delta.edges_added().is_empty());
        assert!(pressured.delta.edges_removed().is_empty());
        // Degrade, don't reject: every stream is still served — at a
        // lower rung — and none counts as dropped.
        assert_eq!(pressured.report.dropped_subscriptions, 0);
        assert!(pressured.report.served_degraded > 0);
        assert_eq!(rt.plan().deliveries_to(site(0)).len(), streams.len());
        let total: u64 = streams
            .iter()
            .map(|&st| {
                let q = rt.plan().quality_of(site(0), st).unwrap();
                QualityLadder::paper_default().rate_of(q)
            })
            .sum();
        assert!(total <= 12_000_000, "refit must respect the budget");

        // Epoch 2: congestion clears; the refit promotes back toward
        // full quality, again socket-free.
        let recovered = rt.apply_epoch(&[RuntimeEvent::BandwidthSample {
            site: site(0),
            bits_per_sec: 200_000_000.0,
        }]);
        assert!(recovered.delta.is_quality_only());
        assert!(recovered.report.served_degraded < pressured.report.served_degraded);
        rt.validate().unwrap();
    }

    #[test]
    fn disabling_the_loop_keeps_plans_at_full_quality() {
        let s = session(4, 10);
        let u = subscription_universe(&s).unwrap();
        let mut rt = SessionRuntime::new(
            u,
            s,
            RuntimeConfig {
                degrade_dont_reject: false,
                ..RuntimeConfig::default()
            },
        )
        .unwrap();
        rt.apply_epoch(&[viewpoint(0, 0, 1)]);
        let quiet = rt.apply_epoch(&[RuntimeEvent::BandwidthSample {
            site: site(0),
            bits_per_sec: 6_000_000.0,
        }]);
        // Without the loop, bandwidth samples never move the plan.
        assert!(quiet.delta.is_empty());
        assert_eq!(quiet.report.served_degraded, 0);
        assert!(quiet.report.served_full > 0);
        assert!(rt.plan().deliveries_to(site(0)).iter().all(|&st| rt
            .plan()
            .quality_of(site(0), st)
            .unwrap()
            .is_full()));
        // The adaptation *report* still exists for observability.
        assert!(quiet.adaptation.contains_key(&site(0)));
    }

    #[test]
    fn budget_shifts_reopen_the_rebuild_gate_once() {
        // Inbound capacity 1 with two displays demanding different
        // sites: persistently infeasible, so the default policy rebuilds
        // once and the gate then holds — until the demand's quality
        // annotation changes.
        let s = session(4, 1);
        let u = subscription_universe(&s).unwrap();
        let mut rt = SessionRuntime::new(u, s, RuntimeConfig::default()).unwrap();
        let first = rt.apply_epoch(&[viewpoint(0, 0, 1), viewpoint(0, 1, 2)]);
        assert!(first.report.rebuilt);
        for _ in 0..2 {
            assert!(!rt.apply_epoch(&[]).report.rebuilt, "gate must hold");
        }

        // A bandwidth sample re-annotates site 0's demand (its streams
        // now fit at lower rungs): the gate re-opens for exactly one
        // rebuild, then holds again.
        let shifted = rt.apply_epoch(&[RuntimeEvent::BandwidthSample {
            site: site(0),
            bits_per_sec: 9_000_000.0,
        }]);
        assert!(shifted.report.rebuilt, "changed annotation re-opens");
        for _ in 0..2 {
            assert!(!rt.apply_epoch(&[]).report.rebuilt, "gate holds again");
        }
        assert_eq!(rt.report().rebuilds, 2);
        rt.validate().unwrap();
    }

    #[test]
    fn epochs_advance_the_plan_revision_monotonically() {
        let s = session(4, 10);
        let u = subscription_universe(&s).unwrap();
        let mut rt = SessionRuntime::new(u, s, RuntimeConfig::default()).unwrap();
        assert_eq!(rt.plan().revision(), 0);
        let first = rt.apply_epoch(&[viewpoint(0, 0, 2)]);
        assert_eq!(first.delta.from_revision(), 0);
        assert_eq!(first.delta.to_revision(), 1);
        assert_eq!(rt.plan().revision(), 1);
        // Quiet epochs are still revisions: executors stay in lock-step.
        let quiet = rt.apply_epoch(&[]);
        assert!(quiet.delta.is_empty());
        assert_eq!(quiet.delta.from_revision(), 1);
        assert_eq!(quiet.delta.to_revision(), 2);
        assert_eq!(rt.plan().revision(), 2);
    }

    #[test]
    fn scoped_runtimes_stamp_plans_and_deltas() {
        let s = session(4, 10);
        let u = subscription_universe(&s).unwrap();
        let id = SessionId::new(42);
        let mut rt = SessionRuntime::new(u, s, RuntimeConfig::default())
            .unwrap()
            .with_scope(id);
        assert_eq!(rt.scope(), Some(id));
        assert_eq!(rt.plan().scope(), Some(id));
        let outcome = rt.apply_epoch(&[viewpoint(0, 0, 2)]);
        assert_eq!(outcome.delta.scope(), Some(id));
        assert_eq!(rt.plan().scope(), Some(id));
        // Unscoped runtimes keep emitting unscoped artifacts.
        let s = session(4, 10);
        let u = subscription_universe(&s).unwrap();
        let mut rt = SessionRuntime::new(u, s, RuntimeConfig::default()).unwrap();
        assert_eq!(rt.scope(), None);
        assert_eq!(rt.apply_epoch(&[viewpoint(0, 0, 2)]).delta.scope(), None);
    }

    #[test]
    fn drive_epochs_pushes_every_delta_into_the_sink() {
        // A plain DisseminationPlan is itself a sink; driving it must keep
        // it identical to the runtime's own plan after every trace.
        let s = session(4, 10);
        let u = subscription_universe(&s).unwrap();
        let mut rt = SessionRuntime::new(u, s, RuntimeConfig::default()).unwrap();
        let mut shadow = rt.plan().clone();
        let trace = vec![
            vec![viewpoint(0, 0, 2), viewpoint(1, 0, 3)],
            vec![RuntimeEvent::SiteLeave { site: site(2) }],
            vec![],
            vec![RuntimeEvent::SiteJoin { site: site(2) }],
        ];
        let outcomes = rt.drive_epochs(&trace, &mut shadow).unwrap();
        assert_eq!(outcomes.len(), 4);
        assert_eq!(&shadow, rt.plan());
        assert_eq!(shadow.revision(), 4);
    }

    #[test]
    fn drive_epochs_surfaces_the_first_sink_error() {
        struct Rejecting;
        impl teeve_pubsub::DeltaSink for Rejecting {
            type Error = &'static str;
            fn apply_delta(&mut self, _: &PlanDelta) -> Result<(), Self::Error> {
                Err("no thanks")
            }
        }
        let s = session(4, 10);
        let u = subscription_universe(&s).unwrap();
        let mut rt = SessionRuntime::new(u, s, RuntimeConfig::default()).unwrap();
        let err = rt
            .drive_epochs(&[vec![viewpoint(0, 0, 2)]], &mut Rejecting)
            .unwrap_err();
        assert_eq!(err, "no thanks");
        // The runtime itself advanced past the rejected epoch.
        assert_eq!(rt.epoch(), 1);
    }

    #[test]
    fn epoch_metrics_account_delta_against_full_plan() {
        let s = session(5, 10);
        let u = subscription_universe(&s).unwrap();
        let mut rt = SessionRuntime::new(u, s, RuntimeConfig::default()).unwrap();
        // Build up a session, then make one small change.
        let mut setup = Vec::new();
        for i in 0..5u32 {
            setup.push(viewpoint(i, 0, (i + 1) % 5));
            setup.push(viewpoint(i, 1, (i + 2) % 5));
        }
        rt.apply_epoch(&setup);
        let small = rt.apply_epoch(&[viewpoint(0, 0, 3)]);
        assert!(small.report.plan_entries > 0);
        assert!(
            small.report.delta_fraction() < 0.8,
            "one FOV swing must not rewrite the whole plan (fraction {})",
            small.report.delta_fraction()
        );
        assert!(small.report.reconverge.as_nanos() > 0);
    }

    #[test]
    fn phase_spans_sum_exactly_to_reconverge() {
        let s = session(5, 10);
        let u = subscription_universe(&s).unwrap();
        let mut rt = SessionRuntime::new(u, s, RuntimeConfig::default()).unwrap();
        let mut setup = Vec::new();
        for i in 0..5u32 {
            setup.push(viewpoint(i, 0, (i + 1) % 5));
        }
        for outcome in [rt.apply_epoch(&setup), rt.apply_epoch(&[])] {
            // The phases are consecutive spans of one monotonic clock,
            // so the telescoping sum is exact — no unaccounted time.
            assert_eq!(
                outcome.report.phases.total(),
                outcome.report.reconverge,
                "phases must partition reconverge"
            );
        }
        let totals = rt.report();
        assert_eq!(totals.phase_totals.total(), totals.total_reconverge);
    }

    #[test]
    fn attached_telemetry_records_phases_and_rebuild_gate_trips() {
        use teeve_telemetry::{FlightEventKind, FlightRecorder, MetricsRegistry};

        let s = session(4, 10);
        let u = subscription_universe(&s).unwrap();
        let mut rt = SessionRuntime::new(
            u,
            s,
            RuntimeConfig {
                fallback: FallbackPolicy::always(),
                ..RuntimeConfig::default()
            },
        )
        .unwrap();
        let registry = MetricsRegistry::new();
        let recorder = FlightRecorder::new();
        rt.attach_telemetry(&registry, recorder.clone());

        rt.apply_epoch(&[viewpoint(0, 0, 1)]);
        rt.apply_epoch(&[viewpoint(0, 0, 2)]);

        let snapshot = registry.snapshot();
        let reconverge = &snapshot.histograms["runtime.reconverge_micros"];
        assert_eq!(reconverge.count(), 2);
        for phase in ["event_drain", "repair", "refit", "derive", "delta"] {
            let hist = &snapshot.histograms[&format!("runtime.phase.{phase}_micros")];
            assert_eq!(hist.count(), 2, "phase {phase} must record every epoch");
        }
        // The always-fallback policy trips the gate on epochs with churn.
        assert!(recorder
            .events()
            .iter()
            .any(|e| matches!(e.kind, FlightEventKind::RebuildGate { .. })));
    }
}
