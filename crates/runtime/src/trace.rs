//! Seeded synthetic churn traces: reproducible event streams for tests,
//! benches, and examples.

use rand::seq::SliceRandom;
use rand::{Rng, RngCore};
use teeve_types::{DisplayId, SiteId};

use crate::event::RuntimeEvent;

/// Shape of a synthetic churn trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Number of epochs to script.
    pub epochs: usize,
    /// Events per epoch.
    pub events_per_epoch: usize,
    /// Relative weight of display retargeting events.
    pub retarget_weight: u32,
    /// Relative weight of FOV-clear events.
    pub clear_weight: u32,
    /// Relative weight of site leave events.
    pub leave_weight: u32,
    /// Relative weight of site join events (rejoining departed sites).
    pub join_weight: u32,
    /// Relative weight of bandwidth sample events.
    pub bandwidth_weight: u32,
}

impl Default for TraceConfig {
    /// 20 epochs of 5 events, dominated by retargeting with light
    /// membership churn and bandwidth reports.
    fn default() -> Self {
        TraceConfig {
            epochs: 20,
            events_per_epoch: 5,
            retarget_weight: 6,
            clear_weight: 1,
            leave_weight: 1,
            join_weight: 1,
            bandwidth_weight: 2,
        }
    }
}

impl TraceConfig {
    /// Generates a reproducible event trace for a session of `sites`
    /// sites with `displays_per_site` displays each, grouped per epoch.
    ///
    /// Membership churn keeps at least three sites active (the smallest
    /// session the overlay problem admits), leaves only active sites, and
    /// joins only departed ones; retargets aim active displays at other
    /// active sites.
    ///
    /// # Panics
    ///
    /// Panics if `sites < 3`, `displays_per_site == 0`, or every weight
    /// is zero.
    pub fn generate<R: RngCore + ?Sized>(
        &self,
        sites: usize,
        displays_per_site: u32,
        rng: &mut R,
    ) -> Vec<Vec<RuntimeEvent>> {
        assert!(sites >= 3, "the overlay problem needs at least 3 sites");
        assert!(displays_per_site > 0, "sites need at least one display");
        let weights = [
            self.retarget_weight,
            self.clear_weight,
            self.leave_weight,
            self.join_weight,
            self.bandwidth_weight,
        ];
        let total: u32 = weights.iter().sum();
        assert!(total > 0, "at least one event weight must be positive");

        let mut active: Vec<bool> = vec![true; sites];
        let mut trace = Vec::with_capacity(self.epochs);
        for _ in 0..self.epochs {
            let mut epoch = Vec::with_capacity(self.events_per_epoch);
            for _ in 0..self.events_per_epoch {
                let mut draw = rng.gen_range(0..total);
                let kind = weights
                    .iter()
                    .position(|&w| {
                        if draw < w {
                            true
                        } else {
                            draw -= w;
                            false
                        }
                    })
                    .expect("weights sum to total");
                if let Some(event) =
                    self.draw_event(kind, sites, displays_per_site, &mut active, rng)
                {
                    epoch.push(event);
                }
            }
            trace.push(epoch);
        }
        trace
    }

    fn draw_event<R: RngCore + ?Sized>(
        &self,
        kind: usize,
        sites: usize,
        displays_per_site: u32,
        active: &mut [bool],
        rng: &mut R,
    ) -> Option<RuntimeEvent> {
        let live: Vec<SiteId> = (0..sites as u32)
            .map(SiteId::new)
            .filter(|s| active[s.index()])
            .collect();
        match kind {
            // Retarget: an active display looks at another active site.
            0 => {
                let site = *live.choose(rng)?;
                let display = DisplayId::new(site, rng.gen_range(0..displays_per_site));
                let targets: Vec<SiteId> = live.iter().copied().filter(|&t| t != site).collect();
                let target = *targets.choose(rng)?;
                Some(RuntimeEvent::Viewpoint { display, target })
            }
            // Clear: an active display looks away.
            1 => {
                let site = *live.choose(rng)?;
                Some(RuntimeEvent::FovClear {
                    display: DisplayId::new(site, rng.gen_range(0..displays_per_site)),
                })
            }
            // Leave: keep at least three sites active.
            2 => {
                if live.len() <= 3 {
                    return None;
                }
                let site = *live.choose(rng)?;
                active[site.index()] = false;
                Some(RuntimeEvent::SiteLeave { site })
            }
            // Join: bring back a departed site.
            3 => {
                let departed: Vec<SiteId> = (0..sites as u32)
                    .map(SiteId::new)
                    .filter(|s| !active[s.index()])
                    .collect();
                let site = *departed.choose(rng)?;
                active[site.index()] = true;
                Some(RuntimeEvent::SiteJoin { site })
            }
            // Bandwidth: an active receiver reports throughput.
            _ => {
                let site = *live.choose(rng)?;
                Some(RuntimeEvent::BandwidthSample {
                    site,
                    bits_per_sec: rng.gen_range(5_000_000.0..120_000_000.0),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn traces_are_reproducible_per_seed() {
        let config = TraceConfig::default();
        let a = config.generate(6, 2, &mut ChaCha8Rng::seed_from_u64(9));
        let b = config.generate(6, 2, &mut ChaCha8Rng::seed_from_u64(9));
        assert_eq!(a, b);
        let c = config.generate(6, 2, &mut ChaCha8Rng::seed_from_u64(10));
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn traces_have_the_scripted_shape() {
        let config = TraceConfig {
            epochs: 7,
            events_per_epoch: 4,
            ..TraceConfig::default()
        };
        let trace = config.generate(5, 2, &mut ChaCha8Rng::seed_from_u64(1));
        assert_eq!(trace.len(), 7);
        assert!(trace.iter().all(|e| e.len() <= 4));
        let total: usize = trace.iter().map(Vec::len).sum();
        assert!(total > 0);
    }

    #[test]
    fn membership_churn_never_goes_below_three_sites() {
        let config = TraceConfig {
            epochs: 40,
            events_per_epoch: 6,
            retarget_weight: 1,
            clear_weight: 0,
            leave_weight: 10,
            join_weight: 1,
            bandwidth_weight: 0,
        };
        let trace = config.generate(5, 1, &mut ChaCha8Rng::seed_from_u64(3));
        let mut active = 5i32;
        for event in trace.iter().flatten() {
            match event {
                RuntimeEvent::SiteLeave { .. } => active -= 1,
                RuntimeEvent::SiteJoin { .. } => active += 1,
                _ => {}
            }
            assert!(active >= 3, "membership churn dipped below 3 live sites");
        }
    }

    #[test]
    #[should_panic(expected = "at least 3 sites")]
    fn tiny_sessions_are_rejected() {
        let _ = TraceConfig::default().generate(2, 1, &mut ChaCha8Rng::seed_from_u64(0));
    }
}
