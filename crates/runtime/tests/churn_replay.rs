//! Integration test: a seeded churn trace of well over 100 events is
//! replayed through the runtime, checking after every epoch that
//!
//! * the live forest satisfies every static invariant of the paper's
//!   construction problem, and
//! * applying the emitted [`PlanDelta`] to the previous plan reproduces
//!   the plan derived from the forest (delta application ≡ full rebuild).
//!
//! The collected deltas then drive the delta-aware simulator end to end.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use teeve_pubsub::{subscription_universe, DisseminationPlan, Session};
use teeve_runtime::{FallbackPolicy, RuntimeConfig, RuntimeEvent, SessionRuntime, TraceConfig};
use teeve_sim::{simulate_with_replans, SimConfig, SimTime};
use teeve_types::{CostMatrix, CostMs, Degree, DisplayId, SiteId};

const SITES: usize = 8;
const DISPLAYS: u32 = 2;

fn session() -> Session {
    let costs = CostMatrix::from_fn(SITES, |i, j| CostMs::new(4 + ((i * 7 + j * 3) % 9) as u32));
    Session::builder(costs)
        .cameras_per_site(6)
        .displays_per_site(DISPLAYS)
        .symmetric_capacity(Degree::new(9))
        .build()
}

fn trace(seed: u64) -> Vec<Vec<RuntimeEvent>> {
    // 40 epochs × 4 events = 160 scripted events (a few draws may be
    // skipped by the generator's liveness guards; well over 100 remain).
    let config = TraceConfig {
        epochs: 40,
        events_per_epoch: 4,
        ..TraceConfig::default()
    };
    let trace = config.generate(SITES, DISPLAYS, &mut ChaCha8Rng::seed_from_u64(seed));
    let total: usize = trace.iter().map(Vec::len).sum();
    assert!(total >= 100, "trace only scripted {total} events");
    trace
}

#[test]
fn replayed_trace_validates_every_epoch_and_deltas_match_rebuilds() {
    let session = session();
    let universe = subscription_universe(&session).unwrap();
    let mut runtime = SessionRuntime::new(universe, session, RuntimeConfig::default()).unwrap();

    let mut shadow: DisseminationPlan = runtime.plan().clone();
    let mut overlay_events = 0usize;
    for (i, epoch) in trace(2008).iter().enumerate() {
        overlay_events += epoch.iter().filter(|e| e.affects_overlay()).count();
        let outcome = runtime.apply_epoch(epoch);

        // Invariants hold after every epoch.
        runtime
            .validate()
            .unwrap_or_else(|violation| panic!("epoch {i}: {violation}"));

        // Applying the delta to the previous plan must be equivalent to
        // rebuilding the plan from the live forest — quality stamps
        // included: the rebuild is re-stamped from the runtime's live
        // per-subscription quality state, exactly as the runtime stamps
        // its own derived plans.
        outcome
            .delta
            .apply(&mut shadow)
            .unwrap_or_else(|e| panic!("epoch {i}: delta failed to apply: {e}"));
        let mut rebuilt = DisseminationPlan::from_forest(
            runtime.universe(),
            &runtime.forest_snapshot(),
            runtime.session().profile(),
        );
        // Freshly derived plans carry revision 0; the comparison is about
        // forwarding state, so stamp the rebuild with the epoch revision.
        rebuilt.set_revision(shadow.revision());
        for site in SiteId::all(SITES) {
            for stream in rebuilt.deliveries_to(site) {
                rebuilt.set_quality(site, stream, runtime.quality_of(site, stream));
            }
        }
        assert_eq!(shadow, rebuilt, "epoch {i}: delta application diverged");
        assert_eq!(&shadow, runtime.plan(), "epoch {i}: runtime plan diverged");

        // The metrics account for the epoch's work.
        assert_eq!(outcome.report.epoch, i as u64);
        assert_eq!(outcome.report.events, epoch.len());
    }
    assert!(overlay_events >= 100);

    let report = runtime.report();
    assert_eq!(report.epochs, 40);
    assert!(report.subscribes > 0);
    assert!(report.accepted > 0);
}

#[test]
fn incremental_and_rebuild_paths_grant_the_same_service_guarantees() {
    // Whatever path served an epoch, granted state must match the plan.
    // Tight capacity (3 streams in/out against top-4 FOV demand) forces
    // relaying and rejections, so the tight fall-back policy trips.
    let costs = CostMatrix::from_fn(SITES, |i, j| CostMs::new(4 + ((i * 7 + j * 3) % 9) as u32));
    let session = Session::builder(costs)
        .cameras_per_site(6)
        .displays_per_site(DISPLAYS)
        .symmetric_capacity(Degree::new(3))
        .build();
    let universe = subscription_universe(&session).unwrap();
    let mut runtime = SessionRuntime::new(
        universe,
        session,
        RuntimeConfig {
            fallback: FallbackPolicy {
                max_epoch_rejection_ratio: 0.1,
                max_tree_depth: 2,
            },
            ..RuntimeConfig::default()
        },
    )
    .unwrap();

    let mut rebuilds = 0;
    for epoch in trace(7) {
        let outcome = runtime.apply_epoch(&epoch);
        rebuilds += usize::from(outcome.report.rebuilt);
        runtime.validate().unwrap();
        for site in SiteId::all(SITES) {
            let planned = runtime.plan().deliveries_to(site);
            let granted = runtime.granted(site);
            assert_eq!(
                planned
                    .iter()
                    .copied()
                    .collect::<std::collections::BTreeSet<_>>(),
                granted.clone(),
                "plan and granted state diverged at {site}"
            );
        }
    }
    assert!(rebuilds > 0, "the tight policy should trip at least once");
}

#[test]
fn runtime_deltas_drive_the_simulator_end_to_end() {
    let session = session();
    let universe = subscription_universe(&session).unwrap();
    let mut runtime = SessionRuntime::new(universe, session, RuntimeConfig::default()).unwrap();

    // Initial demand, then two live FOV swings at 400 ms and 800 ms.
    let initial = runtime.apply_epoch(&[
        RuntimeEvent::Viewpoint {
            display: DisplayId::new(SiteId::new(0), 0),
            target: SiteId::new(1),
        },
        RuntimeEvent::Viewpoint {
            display: DisplayId::new(SiteId::new(2), 0),
            target: SiteId::new(1),
        },
    ]);
    assert!(initial.report.accepted > 0);
    let base_plan = runtime.plan().clone();

    let swing1 = runtime.apply_epoch(&[RuntimeEvent::Viewpoint {
        display: DisplayId::new(SiteId::new(0), 0),
        target: SiteId::new(3),
    }]);
    let swing2 = runtime.apply_epoch(&[RuntimeEvent::FovClear {
        display: DisplayId::new(SiteId::new(2), 0),
    }]);
    assert!(!swing1.delta.is_empty());
    assert!(!swing2.delta.is_empty());

    let config = SimConfig::default().with_duration(SimTime::from_millis(1200));
    let report = simulate_with_replans(
        &base_plan,
        &[
            (SimTime::from_millis(400), swing1.delta),
            (SimTime::from_millis(800), swing2.delta),
        ],
        &config,
    );
    assert!(report.total_frames_delivered() > 0);
    let ratio = report.delivery_ratio();
    assert!(
        (0.85..=1.0).contains(&ratio),
        "replanned run delivered ratio {ratio}"
    );
}
