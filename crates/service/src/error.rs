//! Errors of the multi-session membership service.

use std::fmt;

use teeve_overlay::InvariantViolation;
use teeve_pubsub::ChurnError;
use teeve_runtime::{RuntimeError, RuntimeEvent};
use teeve_store::StoreError;
use teeve_types::SessionId;

/// Error produced by the [`MembershipService`](crate::MembershipService).
#[derive(Debug)]
pub enum ServiceError {
    /// The session is not (or no longer) hosted by this service.
    UnknownSession(SessionId),
    /// The spec's session cannot form a subscription universe (e.g. fewer
    /// than three sites).
    InvalidUniverse(ChurnError),
    /// The session runtime could not be assembled.
    Runtime(RuntimeError),
    /// A submitted event references a site or display outside its
    /// session. Rejected at submission so one tenant's malformed event
    /// can never take down a bulk drive over every hosted session.
    EventOutOfRange {
        /// The session the event was submitted to.
        session: SessionId,
        /// The offending event.
        event: RuntimeEvent,
    },
    /// A hosted session's live forest violates a static invariant.
    Invariant(InvariantViolation),
    /// The attached session store failed: an append did not land (the
    /// epoch still drove, but its commit is not durable) or a recovery
    /// replay diverged from the persisted state.
    Store(StoreError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownSession(id) => write!(f, "{id} is not hosted by this service"),
            ServiceError::InvalidUniverse(e) => write!(f, "spec admits no universe: {e}"),
            ServiceError::Runtime(e) => write!(f, "runtime assembly failed: {e}"),
            ServiceError::EventOutOfRange { session, event } => {
                write!(f, "event {event:?} is outside {session}'s sites")
            }
            ServiceError::Invariant(v) => write!(f, "session invariant violated: {v}"),
            ServiceError::Store(e) => write!(f, "session store failed: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::UnknownSession(_) | ServiceError::EventOutOfRange { .. } => None,
            ServiceError::InvalidUniverse(e) => Some(e),
            ServiceError::Runtime(e) => Some(e),
            ServiceError::Invariant(v) => Some(v),
            ServiceError::Store(e) => Some(e),
        }
    }
}

impl From<ChurnError> for ServiceError {
    fn from(e: ChurnError) -> Self {
        ServiceError::InvalidUniverse(e)
    }
}

impl From<RuntimeError> for ServiceError {
    fn from(e: RuntimeError) -> Self {
        ServiceError::Runtime(e)
    }
}

impl From<InvariantViolation> for ServiceError {
    fn from(v: InvariantViolation) -> Self {
        ServiceError::Invariant(v)
    }
}

impl From<StoreError> for ServiceError {
    fn from(e: StoreError) -> Self {
        ServiceError::Store(e)
    }
}
