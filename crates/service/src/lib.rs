//! The multi-session membership service: many concurrent 3DTI sessions
//! behind one sharded registry.
//!
//! The paper justifies a *centralized* membership server by 3DTI sessions
//! being small to medium sized — one server, one session. A production
//! deployment hosts many such sessions at once, and that is this crate:
//! a [`MembershipService`] owns a registry of running
//! [`SessionRuntime`](teeve_runtime::SessionRuntime)s, sharded by
//! [`SessionId`](teeve_types::SessionId) hash with each shard behind a
//! `parking_lot::RwLock`, so session lookup, creation, and teardown on
//! different shards never contend.
//!
//! The lifecycle API:
//!
//! * [`MembershipService::create_session`] admits a [`SessionSpec`] and
//!   returns a [`SessionHandle`];
//! * [`SessionHandle::submit_requests`] queues runtime events (FOV
//!   swings, membership churn, bandwidth samples) for the session's next
//!   epoch;
//! * [`SessionHandle::drive_epoch`] reconciles one epoch immediately and
//!   returns its [`EpochOutcome`](teeve_runtime::EpochOutcome) — the
//!   session-scoped plan delta, metrics, and adaptation plans;
//! * [`MembershipService::drive_all`] advances *every* hosted session one
//!   epoch, consuming queued events, with shards processed in parallel
//!   worker threads, and folds the results into a [`ServiceReport`]
//!   ([`drive_all_with`](MembershipService::drive_all_with) additionally
//!   pushes each session's delta into a
//!   [`DeltaSink`](teeve_pubsub::DeltaSink), typically a `DeltaRouter`
//!   over per-session executors);
//! * [`SessionHandle::close`] (or
//!   [`MembershipService::close_session`]) removes the session and
//!   returns its final aggregate report.
//!
//! Every plan and delta a hosted session produces is stamped with its
//! `SessionId`, so one executor process — a
//! [`DeltaRouter`](teeve_pubsub::DeltaRouter) over live TCP clusters, or
//! the simulator — can serve all sessions concurrently without state
//! bleed.
//!
//! # Examples
//!
//! ```
//! use teeve_pubsub::Session;
//! use teeve_runtime::RuntimeEvent;
//! use teeve_service::{MembershipService, SessionSpec};
//! use teeve_types::{CostMatrix, CostMs, Degree, DisplayId, SiteId};
//!
//! let service = MembershipService::with_shards(4);
//! let costs = CostMatrix::from_fn(4, |_, _| CostMs::new(6));
//! let session = Session::builder(costs)
//!     .cameras_per_site(6)
//!     .displays_per_site(1)
//!     .symmetric_capacity(Degree::new(12))
//!     .build();
//! let handle = service.create_session(SessionSpec::new(session))?;
//!
//! handle.submit_requests(vec![RuntimeEvent::Viewpoint {
//!     display: DisplayId::new(SiteId::new(0), 0),
//!     target: SiteId::new(2),
//! }])?;
//! let report = service.drive_all();
//! assert_eq!(report.sessions, 1);
//! assert!(report.accepted > 0);
//!
//! let outcome = handle.drive_epoch(&[])?;
//! assert_eq!(outcome.delta.scope(), Some(handle.id()));
//! handle.close()?;
//! assert_eq!(service.session_count(), 0);
//! # Ok::<(), teeve_service::ServiceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod report;
mod service;
mod spec;

pub use error::ServiceError;
pub use report::ServiceReport;
pub use service::{MembershipService, SessionHandle};
pub use spec::SessionSpec;
