//! Aggregate metrics of one bulk drive across all hosted sessions.

use std::collections::BTreeMap;
use std::time::Duration;

use teeve_runtime::EpochReport;
use teeve_telemetry::LogHistogram;
use teeve_types::SessionId;

/// What one [`drive_all`](crate::MembershipService::drive_all) pass did:
/// per-service totals over every hosted session's epoch, plus the
/// per-session epoch reports for callers that need the breakdown.
#[derive(Debug, Clone, Default)]
pub struct ServiceReport {
    /// Sessions driven (one epoch each).
    pub sessions: usize,
    /// Events consumed across all sessions.
    pub events: usize,
    /// Stream joins attempted across all sessions.
    pub subscribes: usize,
    /// Joins that found a feasible parent.
    pub accepted: usize,
    /// Joins rejected for bandwidth or latency.
    pub rejected: usize,
    /// Site-level unsubscriptions applied.
    pub unsubscribes: usize,
    /// Served-and-still-wanted subscriptions that ended their epoch
    /// unserved.
    pub dropped_subscriptions: usize,
    /// Subscriptions served at full quality across all sessions.
    pub served_full: usize,
    /// Subscriptions served below full quality (degraded, not dropped)
    /// across all sessions.
    pub served_degraded: usize,
    /// Sessions whose epoch fell back to full reconstruction.
    pub rebuilds: usize,
    /// Entry changes across all emitted plan deltas.
    pub delta_entries: usize,
    /// Forwarding entries across all full plans (what delta shipping
    /// avoided re-sending).
    pub plan_entries: usize,
    /// Sum of every session's reconvergence time. Shards reconverge in
    /// parallel, so wall-clock time is lower; this is the total CPU work.
    pub total_reconverge: Duration,
    /// The cross-session reconvergence *distribution* (microseconds):
    /// summed totals hide shard skew, the p50/p99 spread does not.
    pub reconverge: LogHistogram,
    /// Epoch commits the attached session store failed to append during
    /// this pass: those epochs drove but are not durable, *named*
    /// rather than silently dropped. Always 0 without a store.
    pub store_failures: usize,
    /// Each driven session's epoch report.
    pub per_session: BTreeMap<SessionId, EpochReport>,
}

impl ServiceReport {
    /// Folds one session's epoch into the totals.
    pub(crate) fn absorb(&mut self, session: SessionId, report: EpochReport) {
        self.sessions += 1;
        self.events += report.events;
        self.subscribes += report.subscribes;
        self.accepted += report.accepted;
        self.rejected += report.rejected;
        self.unsubscribes += report.unsubscribes;
        self.dropped_subscriptions += report.dropped_subscriptions;
        self.served_full += report.served_full;
        self.served_degraded += report.served_degraded;
        self.rebuilds += usize::from(report.rebuilt);
        self.delta_entries += report.delta_entries;
        self.plan_entries += report.plan_entries;
        self.total_reconverge += report.reconverge;
        self.reconverge
            .record(teeve_telemetry::duration_micros(report.reconverge));
        self.per_session.insert(session, report);
    }

    /// Merges another report (e.g. one worker thread's share) into this
    /// one.
    pub(crate) fn merge(&mut self, other: ServiceReport) {
        self.sessions += other.sessions;
        self.events += other.events;
        self.subscribes += other.subscribes;
        self.accepted += other.accepted;
        self.rejected += other.rejected;
        self.unsubscribes += other.unsubscribes;
        self.dropped_subscriptions += other.dropped_subscriptions;
        self.served_full += other.served_full;
        self.served_degraded += other.served_degraded;
        self.rebuilds += other.rebuilds;
        self.delta_entries += other.delta_entries;
        self.plan_entries += other.plan_entries;
        self.total_reconverge += other.total_reconverge;
        self.reconverge.merge(&other.reconverge);
        self.store_failures += other.store_failures;
        self.per_session.extend(other.per_session);
    }

    /// Mean reconvergence time per driven session, `Duration::ZERO` when
    /// nothing was driven.
    pub fn mean_reconverge(&self) -> Duration {
        if self.sessions == 0 {
            Duration::ZERO
        } else {
            self.total_reconverge / self.sessions as u32
        }
    }

    /// Median per-session reconvergence time in microseconds — compare
    /// with [`reconverge_p99`](Self::reconverge_p99) to see shard skew.
    pub fn reconverge_p50(&self) -> u64 {
        self.reconverge.p50()
    }

    /// 99th-percentile per-session reconvergence time in microseconds.
    pub fn reconverge_p99(&self) -> u64 {
        self.reconverge.p99()
    }

    /// The acceptance ratio of attempted joins (1.0 when nothing was
    /// attempted).
    pub fn acceptance_ratio(&self) -> f64 {
        if self.subscribes == 0 {
            1.0
        } else {
            self.accepted as f64 / self.subscribes as f64
        }
    }

    /// Overall delta size relative to full-plan shipping.
    pub fn delta_fraction(&self) -> f64 {
        if self.plan_entries == 0 {
            0.0
        } else {
            self.delta_entries as f64 / self.plan_entries as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_and_merge_fold_into_totals() {
        let mut a = ServiceReport::default();
        a.absorb(
            SessionId::new(0),
            EpochReport {
                events: 3,
                subscribes: 4,
                accepted: 3,
                rejected: 1,
                delta_entries: 2,
                plan_entries: 8,
                served_full: 2,
                served_degraded: 1,
                rebuilt: true,
                reconverge: Duration::from_micros(40),
                ..EpochReport::default()
            },
        );
        let mut b = ServiceReport::default();
        b.absorb(
            SessionId::new(1),
            EpochReport {
                events: 1,
                subscribes: 6,
                accepted: 6,
                delta_entries: 2,
                plan_entries: 8,
                reconverge: Duration::from_micros(20),
                ..EpochReport::default()
            },
        );
        a.merge(b);
        assert_eq!(a.sessions, 2);
        assert_eq!(a.events, 4);
        assert_eq!(a.subscribes, 10);
        assert_eq!(a.accepted, 9);
        assert_eq!(a.rejected, 1);
        assert_eq!(a.rebuilds, 1);
        assert_eq!(a.served_full, 2);
        assert_eq!(a.served_degraded, 1);
        assert_eq!(a.mean_reconverge(), Duration::from_micros(30));
        assert_eq!(a.acceptance_ratio(), 0.9);
        assert_eq!(a.delta_fraction(), 0.25);
        assert_eq!(a.per_session.len(), 2);
        // Both epochs' reconvergence times landed in the distribution,
        // and its percentiles bracket the observed samples.
        assert_eq!(a.reconverge.count(), 2);
        assert_eq!(a.reconverge.min(), 20);
        assert_eq!(a.reconverge.max(), 40);
        assert!(a.reconverge_p50() <= a.reconverge_p99());
        assert!(a.reconverge_p99() >= 40);
    }

    #[test]
    fn empty_reports_have_neutral_ratios() {
        let r = ServiceReport::default();
        assert_eq!(r.mean_reconverge(), Duration::ZERO);
        assert_eq!(r.acceptance_ratio(), 1.0);
        assert_eq!(r.delta_fraction(), 0.0);
    }
}
