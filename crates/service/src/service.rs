//! The sharded session registry and its lifecycle API.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Mutex, RwLock};
use teeve_pubsub::{subscription_universe, DeltaSink, DisseminationPlan, PlanDelta, Session};
use teeve_runtime::{EpochCommit, EpochOutcome, RuntimeEvent, RuntimeReport, SessionRuntime};
use teeve_store::SessionStore;
use teeve_telemetry::{FlightRecorder, MetricsRegistry};
use teeve_types::{DisplayId, SessionId, SiteId};

use crate::error::ServiceError;
use crate::report::ServiceReport;
use crate::spec::SessionSpec;

/// Default number of registry shards.
const DEFAULT_SHARDS: usize = 8;

/// One hosted session: its runtime plus the events queued for its next
/// epoch.
#[derive(Debug)]
struct Slot {
    runtime: SessionRuntime,
    pending: Vec<RuntimeEvent>,
}

/// One registry shard. The map is read-locked for lookups (cloning out
/// the slot's `Arc`) and write-locked only for create/close, so sessions
/// on one shard drive concurrently and sessions on different shards never
/// contend at all.
///
/// Lock order: a slot mutex may be taken while holding (or after
/// re-taking) this shard's `sessions` read lock, never the reverse — no
/// code path holds a `Slot` guard while touching `sessions`. Keeping the
/// edge one-directional is what makes the close/create write lock safe,
/// and `teeve-check locks` flags any cycle introduced against it.
#[derive(Debug, Default)]
struct Shard {
    sessions: RwLock<BTreeMap<SessionId, Arc<Mutex<Slot>>>>,
}

#[derive(Debug)]
struct Inner {
    shards: Vec<Shard>,
    next_id: AtomicU64,
    /// Service-wide metrics: every hosted runtime's epoch phases plus
    /// the bulk-drive session/fold spans land in this one registry.
    telemetry: MetricsRegistry,
    /// Service-wide flight recorder shared by every hosted runtime.
    recorder: FlightRecorder,
    /// Optional durable session store: when present, every admission,
    /// epoch commit, and close is appended to it, so a restarted
    /// service can [`recover`](MembershipService::recover) the fleet.
    store: Option<SessionStore>,
}

/// A membership service hosting many concurrent 3DTI sessions.
///
/// Where the paper's membership server owns *one* session's subscription
/// workload, this service owns a registry of running
/// [`SessionRuntime`]s, sharded by session-id hash. The service is
/// cheaply cloneable (it is an `Arc` handle) and every method takes
/// `&self`, so it can be shared across worker threads freely.
///
/// See the [crate docs](crate) for the lifecycle walkthrough.
#[derive(Debug, Clone)]
pub struct MembershipService {
    inner: Arc<Inner>,
}

impl Default for MembershipService {
    fn default() -> Self {
        Self::new()
    }
}

impl MembershipService {
    /// A service with the default shard count.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// A service with an explicit shard count. More shards mean less
    /// registry contention on create/close/lookup; bulk drives steal work
    /// per **session**, so [`drive_all`](Self::drive_all) parallelism is
    /// independent of the shard count. The `multi_session` bench sweeps
    /// this.
    ///
    /// # Panics
    ///
    /// Panics if `shard_count` is zero.
    pub fn with_shards(shard_count: usize) -> Self {
        Self::assemble(shard_count, None)
    }

    /// A persistent service: every admission, epoch commit, and close is
    /// appended to `store`, and any sessions already persisted there are
    /// **re-adopted** — each one's event history is replayed through a
    /// fresh runtime (deterministic reconciliation makes the rebuilt
    /// plans bit-identical to an uninterrupted run's), cross-checked
    /// against the persisted commits, and registered under its original
    /// id. Fresh ids are allocated past everything the store has ever
    /// seen. Events queued but undriven at the crash were never durable
    /// and are not resurrected.
    ///
    /// Opening an empty store simply yields a fresh persistent service.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Store`] if a persisted session no longer
    /// admits a universe or its replay diverges from the persisted
    /// commits.
    pub fn recover(store: SessionStore) -> Result<Self, ServiceError> {
        Self::recover_with_shards(store, DEFAULT_SHARDS)
    }

    /// [`recover`](Self::recover) with an explicit shard count.
    ///
    /// # Errors
    ///
    /// See [`recover`](Self::recover).
    ///
    /// # Panics
    ///
    /// Panics if `shard_count` is zero.
    pub fn recover_with_shards(
        store: SessionStore,
        shard_count: usize,
    ) -> Result<Self, ServiceError> {
        let sessions = store.open_sessions();
        let next_id = store.max_session_id().map_or(0, |id| id.raw() + 1);
        let service = Self::assemble(shard_count, Some(store));
        for id in sessions {
            // The store is owned by the service we just assembled; the
            // borrow is re-taken per session so shard inserts interleave.
            let restored = service
                .inner
                .store
                .as_ref()
                .map(|s| s.restore(id))
                .transpose()?
                .ok_or(ServiceError::UnknownSession(id))?;
            let mut runtime = restored.fresh_runtime()?;
            runtime.attach_telemetry(&service.inner.telemetry, service.inner.recorder.clone());
            restored.replay_into(&mut runtime)?;
            let slot = Arc::new(Mutex::new(Slot {
                runtime,
                pending: Vec::new(),
            }));
            service.shard(id).sessions.write().insert(id, slot);
        }
        service.inner.next_id.store(next_id, Ordering::Relaxed);
        service
            .inner
            .telemetry
            .gauge("service.sessions.open")
            .set(service.session_count() as u64);
        Ok(service)
    }

    /// The shared constructor behind [`with_shards`](Self::with_shards)
    /// and [`recover_with_shards`](Self::recover_with_shards).
    fn assemble(shard_count: usize, store: Option<SessionStore>) -> Self {
        assert!(shard_count > 0, "a service needs at least one shard");
        MembershipService {
            inner: Arc::new(Inner {
                shards: (0..shard_count).map(|_| Shard::default()).collect(),
                next_id: AtomicU64::new(0),
                telemetry: MetricsRegistry::new(),
                recorder: FlightRecorder::new(),
                store,
            }),
        }
    }

    /// The attached session store, if this service is persistent.
    pub fn store(&self) -> Option<&SessionStore> {
        self.inner.store.as_ref()
    }

    /// Returns the number of registry shards.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// The service-wide metrics registry. Every hosted runtime records
    /// its epoch-phase spans here, and bulk drives add their per-session
    /// drive and fold spans (`service.drive.*_micros`), so one snapshot
    /// covers the whole service.
    pub fn telemetry(&self) -> &MetricsRegistry {
        &self.inner.telemetry
    }

    /// The service-wide flight recorder (rebuild-gate trips and other
    /// structural events from every hosted runtime).
    pub fn flight_recorder(&self) -> &FlightRecorder {
        &self.inner.recorder
    }

    /// Returns the shard `session` maps to. The assignment is a pure
    /// function of the id and the shard count (Fibonacci hashing of the
    /// raw counter), so it is stable across calls and across service
    /// instances with the same shard count.
    pub fn shard_index(&self, session: SessionId) -> usize {
        shard_of(session, self.shard_count())
    }

    /// Admits a new session: derives its subscription universe, assembles
    /// a scoped runtime, and registers it under a fresh [`SessionId`].
    ///
    /// # Errors
    ///
    /// Returns an error if the spec's session admits no subscription
    /// universe (fewer than three sites), the runtime cannot be
    /// assembled, or the attached store refuses the admission record
    /// (in which case nothing is registered).
    pub fn create_session(&self, spec: SessionSpec) -> Result<SessionHandle, ServiceError> {
        let universe = subscription_universe(spec.session())?;
        let (session, config) = spec.into_parts();
        let id = SessionId::new(self.inner.next_id.fetch_add(1, Ordering::Relaxed));
        let mut runtime = SessionRuntime::new(universe, session, config)?.with_scope(id);
        runtime.attach_telemetry(&self.inner.telemetry, self.inner.recorder.clone());
        if let Some(store) = &self.inner.store {
            store.record_opened(id, runtime.session(), config)?;
        }
        let slot = Arc::new(Mutex::new(Slot {
            runtime,
            pending: Vec::new(),
        }));
        self.shard(id).sessions.write().insert(id, slot);
        self.inner
            .telemetry
            .gauge("service.sessions.open")
            .set(self.session_count() as u64);
        Ok(SessionHandle {
            service: self.clone(),
            id,
        })
    }

    /// Returns a handle to an already-hosted session.
    ///
    /// # Errors
    ///
    /// Returns an error if the session is not hosted here.
    pub fn handle(&self, session: SessionId) -> Result<SessionHandle, ServiceError> {
        if !self.contains(session) {
            return Err(ServiceError::UnknownSession(session));
        }
        Ok(SessionHandle {
            service: self.clone(),
            id: session,
        })
    }

    /// Returns whether `session` is currently hosted.
    pub fn contains(&self, session: SessionId) -> bool {
        self.shard(session).sessions.read().contains_key(&session)
    }

    /// Returns the number of hosted sessions.
    pub fn session_count(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| s.sessions.read().len())
            .sum()
    }

    /// Returns every hosted session id, ascending.
    pub fn session_ids(&self) -> Vec<SessionId> {
        let mut ids: Vec<SessionId> = self
            .inner
            .shards
            .iter()
            .flat_map(|s| s.sessions.read().keys().copied().collect::<Vec<_>>())
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Queues events for `session`'s next epoch (whether driven
    /// individually or by [`drive_all`](Self::drive_all)). Returns the
    /// number of events now pending.
    ///
    /// Events are validated against the session's site and display
    /// ranges *here*, not when driven: a malformed event from one tenant
    /// must never abort a bulk pass over every hosted session. A
    /// rejected batch queues nothing.
    ///
    /// # Errors
    ///
    /// Returns an error if the session is not hosted here or an event
    /// references a site or display outside it.
    pub fn submit_requests(
        &self,
        session: SessionId,
        events: impl IntoIterator<Item = RuntimeEvent>,
    ) -> Result<usize, ServiceError> {
        let events: Vec<RuntimeEvent> = events.into_iter().collect();
        self.with_slot(session, |slot| {
            validate_events(session, slot.runtime.session(), &events)?;
            slot.pending.extend(events);
            Ok(slot.pending.len())
        })?
    }

    /// Drives one epoch of `session` immediately: consumes its queued
    /// events plus `events`, reconciles the overlay, and returns the
    /// epoch's outcome (the emitted delta carries the session's scope).
    ///
    /// Like [`submit_requests`](Self::submit_requests), `events` are
    /// validated first; a rejected call drives nothing and leaves the
    /// queue untouched.
    ///
    /// # Errors
    ///
    /// Returns an error if the session is not hosted here or an event
    /// references a site or display outside it.
    pub fn drive_epoch(
        &self,
        session: SessionId,
        events: &[RuntimeEvent],
    ) -> Result<EpochOutcome, ServiceError> {
        self.with_slot(session, |slot| {
            validate_events(session, slot.runtime.session(), events)?;
            let mut epoch = std::mem::take(&mut slot.pending);
            epoch.extend_from_slice(events);
            let outcome = slot.runtime.apply_epoch(&epoch);
            // Committed under the slot lock so the store sees epochs in
            // order; an append failure means this epoch drove but is
            // not durable.
            self.record_commit(session, &outcome.commit)?;
            Ok(outcome)
        })?
    }

    /// Advances **every** hosted session one epoch, consuming each
    /// session's queued events, and folds the results into one
    /// [`ServiceReport`]. The emitted plan deltas are **discarded** —
    /// this variant is for metrics-only callers (simulation sweeps,
    /// benches); a service feeding live executors must use
    /// [`drive_all_with`](Self::drive_all_with) instead, or the
    /// executors' revisions fall behind with no catch-up path.
    ///
    /// Sessions are handed to parallel worker threads **one at a time**
    /// from a shared work queue: a worker that drew a cheap session comes
    /// back for the next one immediately, so one expensive session (or a
    /// shard holding most of the tenants) never idles the rest of the
    /// pool the way the old shard-granular split did. Worker count is
    /// bounded by the machine's parallelism and the session count — not
    /// the shard count. An epoch with no queued events is still driven —
    /// a quiet epoch is a control-plane revision, keeping every session's
    /// executors in lock-step, exactly as
    /// [`SessionRuntime::apply_epoch`] does for a single session.
    pub fn drive_all(&self) -> ServiceReport {
        self.drive_all_outcomes().0
    }

    /// [`drive_all`](Self::drive_all), with every session's emitted
    /// [`PlanDelta`] pushed into `sink` — typically a
    /// [`DeltaRouter`](teeve_pubsub::DeltaRouter) holding one executor
    /// per session, which dispatches each delta on its session scope.
    ///
    /// The parallel reconcile phase runs first; deltas are then applied
    /// to the sink sequentially in ascending session order (deltas of
    /// different sessions are independent, so this ordering is only for
    /// determinism). A rejected delta does **not** stop the others —
    /// each session's executor fails independently.
    ///
    /// Returns the pass's report (the runtimes advanced regardless of
    /// sink outcomes) together with every rejection, `(session, error)`
    /// per delta the sink refused; an empty rejection list means every
    /// executor is in lock-step. A rejected session's executor has
    /// missed a revision and needs resynchronization.
    pub fn drive_all_with<S: DeltaSink>(
        &self,
        sink: &mut S,
    ) -> (ServiceReport, Vec<(SessionId, S::Error)>) {
        let (report, mut deltas) = self.drive_all_outcomes();
        deltas.sort_by_key(|(id, _)| *id);
        let mut rejections = Vec::new();
        for (id, delta) in &deltas {
            if let Err(e) = sink.apply_delta(delta) {
                rejections.push((*id, e));
            }
        }
        (report, rejections)
    }

    /// The shared bulk-drive core: parallel reconcile over a per-session
    /// work queue, returning the folded report and every session's
    /// emitted delta.
    fn drive_all_outcomes(&self) -> (ServiceReport, Vec<(SessionId, PlanDelta)>) {
        // Snapshot every shard's slots into one flat work list. Each
        // shard's read lock is held only for the copy, so creates and
        // closes are never blocked behind overlay repair.
        let mut work: Vec<(usize, SessionId, Arc<Mutex<Slot>>)> = Vec::new();
        for (index, shard) in self.inner.shards.iter().enumerate() {
            let sessions = shard.sessions.read();
            work.extend(
                sessions
                    .iter()
                    .map(|(id, slot)| (index, *id, Arc::clone(slot))),
            );
        }
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(work.len())
            .max(1);
        let cursor = AtomicUsize::new(0);
        if workers == 1 {
            // Nothing to parallelize: drive inline instead of paying a
            // spawn/join per pass.
            return self.steal_sessions(&work, &cursor);
        }
        let mut report = ServiceReport::default();
        let mut deltas = Vec::new();
        let shares = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| scope.spawn(|| self.steal_sessions(&work, &cursor)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker threads do not panic"))
                .collect::<Vec<_>>()
        });
        let folding = Instant::now();
        for (share, share_deltas) in shares {
            report.merge(share);
            deltas.extend(share_deltas);
        }
        self.inner
            .telemetry
            .histogram("service.drive.fold_micros")
            .record_duration(folding.elapsed());
        (report, deltas)
    }

    /// One worker's share of a bulk drive: repeatedly claims the next
    /// undriven session off the shared `work` list (via `cursor`
    /// fetch-add) until the list is exhausted, and returns the partial
    /// report and emitted deltas. Stealing is per **session**, so a
    /// skewed tenant mix — one session with a huge event backlog, or one
    /// shard hosting most of the registry — costs the pass only that
    /// session's own reconcile time, not a whole shard-sized stripe.
    fn steal_sessions(
        &self,
        work: &[(usize, SessionId, Arc<Mutex<Slot>>)],
        cursor: &AtomicUsize,
    ) -> (ServiceReport, Vec<(SessionId, PlanDelta)>) {
        let mut report = ServiceReport::default();
        let mut deltas = Vec::new();
        let session_span = self
            .inner
            .telemetry
            .histogram("service.drive.session_micros");
        loop {
            let next = cursor.fetch_add(1, Ordering::Relaxed);
            let Some((shard_index, id, slot)) = work.get(next) else {
                break;
            };
            let Some(shard) = self.inner.shards.get(*shard_index) else {
                break;
            };
            let driving = Instant::now();
            let mut slot = slot.lock();
            // The snapshot's Arc keeps a slot alive past its removal; a
            // session closed between the snapshot and this lock must not
            // be driven after its final report was read. (Slot guard →
            // shard read lock is the documented lock order.)
            if !shard.sessions.read().contains_key(id) {
                continue;
            }
            let epoch = std::mem::take(&mut slot.pending);
            let outcome = slot.runtime.apply_epoch(&epoch);
            // A failed append must not abort the pass over every other
            // tenant; the report *names* the lost commit.
            if self.record_commit(*id, &outcome.commit).is_err() {
                report.store_failures += 1;
            }
            report.absorb(*id, outcome.report);
            deltas.push((*id, outcome.delta));
            session_span.record_duration(driving.elapsed());
        }
        (report, deltas)
    }

    /// Removes `session` from the registry, returning its aggregate
    /// runtime report. An epoch already in flight on another thread
    /// completes against the detached runtime; the session is unreachable
    /// afterwards. Events still queued via
    /// [`submit_requests`](Self::submit_requests) but not yet driven are
    /// **discarded** — drive a final epoch first if they matter.
    ///
    /// # Errors
    ///
    /// Returns an error if the session is not hosted here, or the
    /// attached store could not append the close record — the session
    /// is unhosted either way, but on a store error it is still open in
    /// the log and a later [`recover`](Self::recover) will re-adopt it.
    pub fn close_session(&self, session: SessionId) -> Result<RuntimeReport, ServiceError> {
        let slot = self
            .shard(session)
            .sessions
            .write()
            .remove(&session)
            .ok_or(ServiceError::UnknownSession(session))?;
        let report = slot.lock().runtime.report();
        self.inner
            .telemetry
            .gauge("service.sessions.open")
            .set(self.session_count() as u64);
        if let Some(store) = &self.inner.store {
            store.record_closed(session)?;
        }
        Ok(report)
    }

    fn shard(&self, session: SessionId) -> &Shard {
        &self.inner.shards[self.shard_index(session)]
    }

    /// Appends one epoch commit to the attached store, if any. Callers
    /// hold the session's slot lock, so commits land in epoch order.
    fn record_commit(&self, session: SessionId, commit: &EpochCommit) -> Result<(), ServiceError> {
        if let Some(store) = &self.inner.store {
            store.record_commit(session, commit)?;
        }
        Ok(())
    }

    /// Runs `f` under `session`'s slot lock.
    fn with_slot<R>(
        &self,
        session: SessionId,
        f: impl FnOnce(&mut Slot) -> R,
    ) -> Result<R, ServiceError> {
        let shard = self.shard(session);
        let slot = shard
            .sessions
            .read()
            .get(&session)
            .cloned()
            .ok_or(ServiceError::UnknownSession(session))?;
        let mut guard = slot.lock();
        // The cloned Arc keeps the slot alive past a concurrent close;
        // honor the close by re-checking membership under the slot lock,
        // so no operation succeeds on a session whose final report was
        // already handed out.
        if !shard.sessions.read().contains_key(&session) {
            return Err(ServiceError::UnknownSession(session));
        }
        Ok(f(&mut guard))
    }
}

/// Checks every event's site and display references against the hosted
/// session's shape, so malformed tenant input is rejected at the service
/// boundary instead of panicking inside a (possibly bulk) epoch drive.
fn validate_events(
    id: SessionId,
    session: &Session,
    events: &[RuntimeEvent],
) -> Result<(), ServiceError> {
    let n = session.site_count();
    let site_ok = |s: SiteId| s.index() < n;
    let display_ok =
        |d: DisplayId| site_ok(d.site()) && d.local_index() < session.rp(d.site()).display_count();
    for event in events {
        let ok = match event {
            RuntimeEvent::FovChange { display, .. } | RuntimeEvent::FovClear { display } => {
                display_ok(*display)
            }
            RuntimeEvent::Viewpoint { display, target } => display_ok(*display) && site_ok(*target),
            RuntimeEvent::SiteJoin { site }
            | RuntimeEvent::SiteLeave { site }
            | RuntimeEvent::BandwidthSample { site, .. } => site_ok(*site),
        };
        if !ok {
            return Err(ServiceError::EventOutOfRange {
                session: id,
                event: event.clone(),
            });
        }
    }
    Ok(())
}

/// The stable shard assignment: Fibonacci hashing of the raw id, folded
/// onto the shard range. Distinct ids spread evenly even though they are
/// allocated sequentially.
fn shard_of(session: SessionId, shard_count: usize) -> usize {
    let hashed = session.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((hashed >> 32) as usize) % shard_count
}

/// A caller's handle on one hosted session.
///
/// Handles are cheap clones of the service pointer plus the session id;
/// dropping one does **not** close the session — call
/// [`close`](Self::close) (or
/// [`MembershipService::close_session`]) for that.
#[derive(Debug, Clone)]
pub struct SessionHandle {
    service: MembershipService,
    id: SessionId,
}

impl SessionHandle {
    /// Returns the session's id.
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// Queues events for the session's next epoch; see
    /// [`MembershipService::submit_requests`].
    ///
    /// # Errors
    ///
    /// Returns an error if the session was closed or an event references
    /// a site or display outside it.
    pub fn submit_requests(
        &self,
        events: impl IntoIterator<Item = RuntimeEvent>,
    ) -> Result<usize, ServiceError> {
        self.service.submit_requests(self.id, events)
    }

    /// Drives one epoch immediately; see
    /// [`MembershipService::drive_epoch`].
    ///
    /// # Errors
    ///
    /// Returns an error if the session was closed or an event references
    /// a site or display outside it.
    pub fn drive_epoch(&self, events: &[RuntimeEvent]) -> Result<EpochOutcome, ServiceError> {
        self.service.drive_epoch(self.id, events)
    }

    /// Returns the number of completed epochs.
    ///
    /// # Errors
    ///
    /// Returns an error if the session was closed.
    pub fn epoch(&self) -> Result<u64, ServiceError> {
        self.service.with_slot(self.id, |slot| slot.runtime.epoch())
    }

    /// Returns a clone of the session's current dissemination plan
    /// (stamped with the session's scope).
    ///
    /// # Errors
    ///
    /// Returns an error if the session was closed.
    pub fn plan(&self) -> Result<DisseminationPlan, ServiceError> {
        self.service
            .with_slot(self.id, |slot| slot.runtime.plan().clone())
    }

    /// Returns the session's aggregate report so far.
    ///
    /// # Errors
    ///
    /// Returns an error if the session was closed.
    pub fn report(&self) -> Result<RuntimeReport, ServiceError> {
        self.service
            .with_slot(self.id, |slot| slot.runtime.report())
    }

    /// Checks every static invariant on the session's live forest
    /// (`validate_forest` over its current snapshot).
    ///
    /// # Errors
    ///
    /// Returns an error if the session was closed or an invariant is
    /// violated.
    pub fn validate(&self) -> Result<(), ServiceError> {
        self.service
            .with_slot(self.id, |slot| slot.runtime.validate())?
            .map_err(ServiceError::from)
    }

    /// Closes the session, removing it from the service; see
    /// [`MembershipService::close_session`] (queued-but-undriven events
    /// are discarded).
    ///
    /// # Errors
    ///
    /// Returns an error if the session was already closed.
    pub fn close(self) -> Result<RuntimeReport, ServiceError> {
        self.service.close_session(self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teeve_pubsub::Session;
    use teeve_types::{CostMatrix, CostMs, Degree, DisplayId, SiteId};

    fn spec(n: usize) -> SessionSpec {
        let costs = CostMatrix::from_fn(n, |i, j| CostMs::new(4 + ((i + j) % 3) as u32));
        SessionSpec::new(
            Session::builder(costs)
                .cameras_per_site(6)
                .displays_per_site(2)
                .symmetric_capacity(Degree::new(12))
                .build(),
        )
    }

    fn viewpoint(s: u32, d: u32, target: u32) -> RuntimeEvent {
        RuntimeEvent::Viewpoint {
            display: DisplayId::new(SiteId::new(s), d),
            target: SiteId::new(target),
        }
    }

    #[test]
    fn create_drive_close_lifecycle() {
        let service = MembershipService::with_shards(4);
        let handle = service.create_session(spec(4)).unwrap();
        assert_eq!(service.session_count(), 1);
        assert!(service.contains(handle.id()));

        let outcome = handle.drive_epoch(&[viewpoint(0, 0, 2)]).unwrap();
        assert!(outcome.report.accepted > 0);
        assert_eq!(outcome.delta.scope(), Some(handle.id()));
        handle.validate().unwrap();
        assert_eq!(handle.epoch().unwrap(), 1);
        assert_eq!(handle.plan().unwrap().scope(), Some(handle.id()));

        let id = handle.id();
        let report = handle.close().unwrap();
        assert_eq!(report.epochs, 1);
        assert!(!service.contains(id));
        assert_eq!(service.session_count(), 0);
        assert!(matches!(
            service.drive_epoch(id, &[]),
            Err(ServiceError::UnknownSession(_))
        ));
    }

    #[test]
    fn session_ids_are_unique_and_ascending() {
        let service = MembershipService::with_shards(3);
        let ids: Vec<SessionId> = (0..10)
            .map(|_| service.create_session(spec(4)).unwrap().id())
            .collect();
        assert_eq!(service.session_count(), 10);
        assert_eq!(service.session_ids(), ids, "creation order is id order");
        let unique: std::collections::BTreeSet<_> = ids.iter().collect();
        assert_eq!(unique.len(), ids.len());
    }

    #[test]
    fn submitted_requests_feed_the_next_epoch() {
        let service = MembershipService::new();
        let handle = service.create_session(spec(4)).unwrap();
        assert_eq!(handle.submit_requests([viewpoint(0, 0, 2)]).unwrap(), 1);
        assert_eq!(handle.submit_requests([viewpoint(1, 0, 3)]).unwrap(), 2);

        let outcome = handle.drive_epoch(&[]).unwrap();
        assert_eq!(outcome.report.events, 2, "queued events were consumed");
        assert!(outcome.report.accepted > 0);
        // The queue drained: the next epoch is quiet.
        let quiet = handle.drive_epoch(&[]).unwrap();
        assert_eq!(quiet.report.events, 0);
        assert!(quiet.delta.is_empty());
    }

    #[test]
    fn drive_all_advances_every_session_once() {
        let service = MembershipService::with_shards(4);
        let handles: Vec<SessionHandle> = (0..6)
            .map(|_| service.create_session(spec(4)).unwrap())
            .collect();
        for handle in &handles {
            handle.submit_requests([viewpoint(0, 0, 2)]).unwrap();
        }
        let report = service.drive_all();
        assert_eq!(report.sessions, 6);
        assert_eq!(report.events, 6);
        assert!(report.accepted >= 6);
        assert_eq!(report.per_session.len(), 6);
        for handle in &handles {
            assert_eq!(handle.epoch().unwrap(), 1);
            assert!(report.per_session.contains_key(&handle.id()));
            handle.validate().unwrap();
        }
        // A second pass with nothing queued still advances epochs.
        let quiet = service.drive_all();
        assert_eq!(quiet.sessions, 6);
        assert_eq!(quiet.events, 0);
        for handle in &handles {
            assert_eq!(handle.epoch().unwrap(), 2);
        }
    }

    #[test]
    fn skewed_registry_is_stolen_per_session_not_per_shard() {
        // Worst case for the old shard-granular split: ONE shard hosts
        // all 32 sessions, and the work is skewed — one session carries
        // a deep event backlog while most sit idle. Per-session stealing
        // must (a) bound workers by the session count, not the shard
        // count of 1, (b) still drive every session exactly one epoch,
        // and (c) account one drive span per session.
        let service = MembershipService::with_shards(1);
        let handles: Vec<SessionHandle> = (0..32)
            .map(|_| service.create_session(spec(4)).unwrap())
            .collect();
        // The hot tenant: a pile of churn on session 0…
        for round in 0..6u32 {
            handles[0]
                .submit_requests([viewpoint(0, 0, 1 + round % 3)])
                .unwrap();
        }
        // …light touches on a few others, silence on the rest.
        for (index, handle) in handles.iter().enumerate().skip(1) {
            if index % 7 == 0 {
                handle.submit_requests([viewpoint(0, 1, 2)]).unwrap();
            }
        }

        let report = service.drive_all();
        assert_eq!(report.sessions, 32);
        assert_eq!(report.reconverge.count(), 32);
        assert_eq!(report.events, 10, "6 on the hot tenant + 4 light touches");
        for handle in &handles {
            assert_eq!(handle.epoch().unwrap(), 1, "every session advanced once");
            handle.validate().unwrap();
        }
        // Session-granular accounting: one drive span per tenant even
        // though they all live on the single shard. On a multi-core host
        // the pool genuinely fans out past the shard count; on one core
        // the same queue degrades to the inline path — either way the
        // outcome above is identical.
        let snapshot = service.telemetry().snapshot();
        assert_eq!(
            snapshot.histograms["service.drive.session_micros"].count(),
            32
        );

        // A session closed between passes is skipped by the next pass's
        // snapshot guard, not driven posthumously.
        service.close_session(handles[5].id()).unwrap();
        let second = service.drive_all();
        assert_eq!(second.sessions, 31);
    }

    #[test]
    fn drive_all_with_routes_every_delta_to_its_executor() {
        use teeve_pubsub::DeltaRouter;

        let service = MembershipService::with_shards(4);
        let handles: Vec<SessionHandle> = (0..5)
            .map(|_| service.create_session(spec(4)).unwrap())
            .collect();
        // One shadow-plan executor per session, dispatched by scope.
        let mut router: DeltaRouter<DisseminationPlan> = DeltaRouter::new();
        for handle in &handles {
            router.register(handle.id(), handle.plan().unwrap());
        }
        for (i, handle) in handles.iter().enumerate() {
            handle
                .submit_requests([viewpoint(0, 0, 1 + (i as u32 % 3))])
                .unwrap();
        }

        let (report, rejections) = service.drive_all_with(&mut router);
        assert_eq!(report.sessions, 5);
        assert!(rejections.is_empty());
        for handle in &handles {
            assert_eq!(
                router.get(handle.id()).unwrap(),
                &handle.plan().unwrap(),
                "each executor tracked its own session exactly"
            );
        }
        // A quiet pass still routes the revision-advancing empty deltas,
        // keeping executors in lock-step.
        let (_, rejections) = service.drive_all_with(&mut router);
        assert!(rejections.is_empty());
        for handle in &handles {
            assert_eq!(router.get(handle.id()).unwrap().revision(), 2);
            assert_eq!(handle.plan().unwrap().revision(), 2);
        }

        // An executor-less session fails alone: its delta is rejected,
        // every other session's executor still advances, and the full
        // report survives.
        let extra = service.create_session(spec(4)).unwrap();
        let (report, rejections) = service.drive_all_with(&mut router);
        assert_eq!(report.sessions, 6);
        assert_eq!(rejections.len(), 1);
        assert_eq!(rejections[0].0, extra.id());
        assert!(matches!(
            rejections[0].1,
            teeve_pubsub::RouteError::UnknownSession(_)
        ));
        for handle in &handles {
            assert_eq!(router.get(handle.id()).unwrap().revision(), 3);
        }
    }

    #[test]
    fn out_of_range_events_are_rejected_at_the_boundary() {
        let service = MembershipService::new();
        let handle = service.create_session(spec(4)).unwrap();
        // Site 99 does not exist in a 4-site session; neither does a
        // third display. Both must be refused up front — not panic a
        // later (possibly bulk) drive.
        for bad in [
            viewpoint(99, 0, 1),
            viewpoint(0, 0, 99),
            viewpoint(0, 7, 1),
            RuntimeEvent::SiteLeave {
                site: SiteId::new(4),
            },
            RuntimeEvent::BandwidthSample {
                site: SiteId::new(9),
                bits_per_sec: 1e6,
            },
        ] {
            assert!(
                matches!(
                    handle.submit_requests([bad.clone()]),
                    Err(ServiceError::EventOutOfRange { .. })
                ),
                "{bad:?} must be rejected"
            );
            assert!(matches!(
                handle.drive_epoch(std::slice::from_ref(&bad)),
                Err(ServiceError::EventOutOfRange { .. })
            ));
        }
        // Nothing was queued and nothing drove; valid traffic still works
        // and drive_all never sees the malformed events.
        let outcome = handle.drive_epoch(&[viewpoint(0, 0, 2)]).unwrap();
        assert_eq!(outcome.report.events, 1);
        assert_eq!(service.drive_all().sessions, 1);
        assert_eq!(handle.epoch().unwrap(), 2);
    }

    #[test]
    fn too_small_sessions_are_rejected() {
        let service = MembershipService::new();
        assert!(matches!(
            service.create_session(spec(2)),
            Err(ServiceError::InvalidUniverse(_))
        ));
        assert_eq!(service.session_count(), 0);
    }

    #[test]
    fn handles_can_be_reattached_by_id() {
        let service = MembershipService::new();
        let id = service.create_session(spec(4)).unwrap().id();
        let handle = service.handle(id).unwrap();
        handle.drive_epoch(&[viewpoint(0, 0, 1)]).unwrap();
        assert_eq!(handle.epoch().unwrap(), 1);
        assert!(matches!(
            service.handle(SessionId::new(999)),
            Err(ServiceError::UnknownSession(_))
        ));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_are_rejected() {
        let _ = MembershipService::with_shards(0);
    }

    #[test]
    fn bulk_drives_record_service_telemetry() {
        let service = MembershipService::with_shards(4);
        let handles: Vec<SessionHandle> = (0..6)
            .map(|_| service.create_session(spec(4)).unwrap())
            .collect();
        for handle in &handles {
            handle.submit_requests([viewpoint(0, 0, 2)]).unwrap();
        }
        let report = service.drive_all();

        // The report carries the cross-session reconvergence
        // distribution, not just the summed total.
        assert_eq!(report.reconverge.count(), 6);
        assert!(report.reconverge_p50() <= report.reconverge_p99());
        assert!(
            report.reconverge_p99() as u128 >= report.mean_reconverge().as_micros(),
            "the p99 bounds the mean from above"
        );

        // The service registry saw the pass: one drive span per driven
        // session, runtime phases for every epoch, and the open-session
        // gauge.
        let snapshot = service.telemetry().snapshot();
        assert_eq!(
            snapshot.histograms["service.drive.session_micros"].count(),
            6
        );
        assert_eq!(snapshot.histograms["runtime.reconverge_micros"].count(), 6);
        assert_eq!(snapshot.gauges["service.sessions.open"], 6);

        let id = handles[0].id();
        service.close_session(id).unwrap();
        assert_eq!(
            service.telemetry().snapshot().gauges["service.sessions.open"],
            5
        );
    }
}
