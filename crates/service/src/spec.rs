//! What a caller hands the service to host a new session.

use teeve_pubsub::Session;
use teeve_runtime::RuntimeConfig;

/// Everything needed to admit one session into a
/// [`MembershipService`](crate::MembershipService): the session itself
/// (sites, cameras, displays, capacities, latency bound, current
/// subscriptions) and the runtime policy to drive it with.
///
/// The service derives the subscription universe itself, so a spec is a
/// plain value with no lifetime ties.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    session: Session,
    config: RuntimeConfig,
}

impl SessionSpec {
    /// A spec hosting `session` under the default
    /// [`RuntimeConfig`].
    pub fn new(session: Session) -> Self {
        SessionSpec {
            session,
            config: RuntimeConfig::default(),
        }
    }

    /// Overrides the runtime configuration (fallback policy, correlation
    /// awareness, bandwidth smoothing).
    #[must_use]
    pub fn with_config(mut self, config: RuntimeConfig) -> Self {
        self.config = config;
        self
    }

    /// Returns the session to host.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Returns the runtime configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Splits the spec into its parts.
    pub(crate) fn into_parts(self) -> (Session, RuntimeConfig) {
        (self.session, self.config)
    }
}
