//! Crash/recovery acceptance for the persistent membership service: a
//! service restarted from its [`SessionStore`] re-adopts every open
//! session with plans **bit-identical** to an uninterrupted run, and a
//! live TCP fleet abandoned by the crash is re-adopted via
//! [`Coordinator::reconnect`] with the recovered plan.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use teeve_net::{ClusterConfig, Coordinator, RpNode, RpNodeHandle};
use teeve_runtime::{RuntimeEvent, TraceConfig};
use teeve_service::{MembershipService, SessionSpec};
use teeve_store::SessionStore;
use teeve_types::{CostMatrix, CostMs, Degree, DisplayId, SessionId, SiteId};

/// A unique scratch log path per call (no tempfile dependency).
fn scratch_path(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "teeve-service-recovery-{tag}-{}-{n}.log",
        std::process::id()
    ))
}

fn spec(sites: usize, salt: u32) -> SessionSpec {
    let costs = CostMatrix::from_fn(sites, move |i, j| {
        CostMs::new(3 + ((i as u32 * 5 + j as u32 + salt) % 4))
    });
    SessionSpec::new(
        teeve_pubsub::Session::builder(costs)
            .cameras_per_site(4)
            .displays_per_site(1)
            .symmetric_capacity(Degree::new(8))
            .build(),
    )
}

fn churn_trace(sites: usize, seed: u64) -> Vec<Vec<RuntimeEvent>> {
    TraceConfig {
        epochs: 5,
        events_per_epoch: 3,
        retarget_weight: 4,
        clear_weight: 1,
        leave_weight: 0,
        join_weight: 0,
        bandwidth_weight: 3,
    }
    .generate(sites, 1, &mut ChaCha8Rng::seed_from_u64(seed))
}

/// Three sessions driven identically on a persistent service and an
/// in-memory control; after a crash the recovered service hosts exactly
/// the open sessions, with plans and epochs bit-identical to the
/// control, never reuses an id, and keeps evolving in lock-step.
#[test]
fn recovered_service_matches_an_uninterrupted_control() {
    let path = scratch_path("parity");
    let persistent =
        MembershipService::recover(SessionStore::open(&path).expect("open fresh store"))
            .expect("fresh persistent service");
    let control = MembershipService::new();

    // Admit three sessions on both services: same specs, same order, so
    // the allocated ids line up.
    let mut ids = Vec::new();
    for salt in 0..3u32 {
        let a = persistent.create_session(spec(4, salt)).expect("admit");
        let b = control
            .create_session(spec(4, salt))
            .expect("admit control");
        assert_eq!(a.id(), b.id(), "id allocation must match");
        ids.push(a.id());
    }

    // Drive every session through the same seeded churn, mirrored on
    // both services: direct epochs plus one queued-requests drive_all.
    for (index, &id) in ids.iter().enumerate() {
        for events in churn_trace(4, 2008 + index as u64) {
            persistent.drive_epoch(id, &events).expect("drive");
            control.drive_epoch(id, &events).expect("drive control");
        }
    }
    let extra = vec![RuntimeEvent::Viewpoint {
        display: DisplayId::new(SiteId::new(2), 0),
        target: SiteId::new(0),
    }];
    persistent.submit_requests(ids[0], extra.clone()).unwrap();
    control.submit_requests(ids[0], extra).unwrap();
    let report = persistent.drive_all();
    assert_eq!(report.sessions, 3);
    assert_eq!(report.store_failures, 0, "every epoch commit is durable");
    assert_eq!(control.drive_all().sessions, 3);

    // One session closes before the crash: it must not be re-adopted.
    let closed = ids[1];
    persistent.close_session(closed).expect("close");
    control.close_session(closed).expect("close control");

    // Crash: the persistent service is dropped mid-life; only the log
    // survives.
    drop(persistent);

    let recovered = MembershipService::recover(SessionStore::open(&path).expect("reopen store"))
        .expect("recovery replays");
    assert!(recovered.store().is_some());
    assert_eq!(recovered.session_count(), 2);
    assert!(!recovered.contains(closed), "closed sessions stay closed");
    for &id in &[ids[0], ids[2]] {
        let ours = recovered.handle(id).expect("re-adopted").plan().unwrap();
        let theirs = control.handle(id).expect("control").plan().unwrap();
        assert_eq!(ours, theirs, "{id}'s recovered plan must be bit-identical");
        assert_eq!(
            recovered.handle(id).unwrap().epoch().unwrap(),
            control.handle(id).unwrap().epoch().unwrap(),
        );
    }

    // Ids are never reused, even closed ones: the next admission lands
    // past the persisted maximum.
    let fresh = recovered.create_session(spec(4, 9)).expect("new admission");
    assert_eq!(fresh.id(), SessionId::new(3), "allocation resumes past max");

    // The recovered service keeps evolving in lock-step with the
    // control — and its new epochs are durable too.
    for events in churn_trace(4, 77) {
        recovered.drive_epoch(ids[2], &events).expect("drive");
        control.drive_epoch(ids[2], &events).expect("drive control");
    }
    assert_eq!(
        recovered.handle(ids[2]).unwrap().plan().unwrap(),
        control.handle(ids[2]).unwrap().plan().unwrap(),
        "post-recovery epochs stay bit-identical"
    );
    std::fs::remove_file(&path).ok();
}

/// The full crash story end to end: a persistent service drives a live
/// TCP fleet, the service process "dies" (coordinator detached, service
/// dropped), and a service recovered from the store re-adopts the still
/// running fleet via [`Coordinator::reconnect`] with its recovered plan.
#[test]
fn socket_recovered_service_readopts_a_live_fleet() {
    const SITES: usize = 4;
    let path = scratch_path("fleet");
    let service = MembershipService::recover(SessionStore::open(&path).expect("open fresh store"))
        .expect("fresh persistent service");
    let handle = service.create_session(spec(SITES, 0)).expect("admit");
    let id = handle.id();

    // Seed a ring of gazes so the launch plan already disseminates.
    let ring: Vec<RuntimeEvent> = (0..SITES as u32)
        .map(|s| RuntimeEvent::Viewpoint {
            display: DisplayId::new(SiteId::new(s), 0),
            target: SiteId::new((s + 1) % SITES as u32),
        })
        .collect();
    handle.drive_epoch(&ring).expect("seed epoch");

    let config = ClusterConfig {
        frames_per_stream: 2,
        payload_bytes: 256,
        frame_interval: None,
        timeout: Duration::from_secs(20),
    };
    let mut nodes: Vec<RpNodeHandle> = Vec::new();
    let mut addrs = Vec::new();
    for site in SiteId::all(SITES) {
        let node = RpNode::bind(site, Duration::from_millis(200)).expect("bind RP");
        addrs.push(node.local_addr());
        nodes.push(node.spawn());
    }
    let plan = handle.plan().unwrap();
    let mut coordinator = Coordinator::connect(&plan, &addrs, &config).expect("connect");
    coordinator.publish(2).expect("seeded batch");

    // Drive churn epochs into both the runtime and the live fleet.
    for events in churn_trace(SITES, 2008) {
        let outcome = handle.drive_epoch(&events).expect("drive");
        coordinator.apply_delta(&outcome.delta).expect("live apply");
    }
    coordinator.publish(2).expect("churned batch");
    let last_plan = handle.plan().unwrap();
    assert_eq!(coordinator.revision(), last_plan.revision());

    // The membership server dies: control connections drop, the service
    // is gone — the RP fleet keeps running its last-dictated tables.
    coordinator.detach();
    drop(handle);
    drop(service);

    // A restarted service recovers the session from the store…
    let recovered = MembershipService::recover(SessionStore::open(&path).expect("reopen store"))
        .expect("recovery replays");
    let readopted = recovered.handle(id).expect("session re-adopted");
    let recovered_plan = readopted.plan().unwrap();
    assert_eq!(recovered_plan, last_plan, "recovered plan is bit-identical");

    // …and re-adopts the live fleet with it: resync, publish, exact
    // final accounting with no RP lost across the gap.
    let mut reconnected =
        Coordinator::reconnect(&recovered_plan, &addrs, &config).expect("reconnect");
    assert_eq!(reconnected.revision(), recovered_plan.revision());
    reconnected.publish(2).expect("post-recovery batch");
    let report = reconnected.shutdown();
    assert_eq!(report.missing_reports, 0, "whole fleet survived the crash");
    assert_eq!(report.final_revision, recovered_plan.revision());
    for node in nodes {
        node.stop();
        node.join();
    }
    std::fs::remove_file(&path).ok();
}
