//! Registry-level guarantees of the sharded multi-session service:
//! stable collision-free shard assignment, and per-session isolation
//! under concurrent churn at the acceptance scale (≥32 sessions of 16
//! sites).

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use teeve_pubsub::{subscription_universe, Session};
use teeve_runtime::{EpochReport, RuntimeConfig, RuntimeEvent, SessionRuntime, TraceConfig};
use teeve_service::{MembershipService, SessionSpec};
use teeve_types::{CostMatrix, CostMs, Degree, SessionId};

/// A session whose cost structure depends on `index`, so different
/// sessions build genuinely different overlays and any cross-session
/// bleed shows up as a plan mismatch.
fn session(index: usize, sites: usize) -> Session {
    let costs = CostMatrix::from_fn(sites, |i, j| {
        CostMs::new(3 + ((i * 31 + j * 17 + index * 7) % 9) as u32)
    });
    Session::builder(costs)
        .cameras_per_site(6)
        .displays_per_site(2)
        .symmetric_capacity(Degree::new(10))
        .build()
}

fn churn_trace(index: usize, sites: usize, epochs: usize) -> Vec<Vec<RuntimeEvent>> {
    let config = TraceConfig {
        epochs,
        events_per_epoch: 4,
        ..TraceConfig::default()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(1000 + index as u64);
    config.generate(sites, 2, &mut rng)
}

/// The fields of an epoch report that must be identical whether the
/// session ran alone or among dozens (wall-clock reconvergence is not).
fn comparable(
    report: &EpochReport,
) -> (u64, usize, usize, usize, usize, usize, usize, usize, bool) {
    (
        report.epoch,
        report.events,
        report.subscribes,
        report.accepted,
        report.rejected,
        report.unsubscribes,
        report.delta_entries,
        report.plan_entries,
        report.rebuilt,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Shard assignment is a pure function of (id, shard count): calling
    /// it twice agrees, two service instances agree, and the result is
    /// always a valid shard index — across the whole `SessionId` space,
    /// not just the dense ids a service allocates.
    #[test]
    fn shard_assignment_is_stable_and_in_range(
        raw in proptest::prelude::any::<u64>(),
        shards in 1usize..64,
    ) {
        let id = SessionId::new(raw);
        let a = MembershipService::with_shards(shards);
        let b = MembershipService::with_shards(shards);
        let index = a.shard_index(id);
        prop_assert!(index < shards);
        prop_assert_eq!(index, a.shard_index(id));
        prop_assert_eq!(index, b.shard_index(id));
    }

    /// Allocated sessions never collide: every id is distinct, maps to
    /// exactly one shard, and stays reachable through the registry while
    /// hosted.
    #[test]
    fn allocated_sessions_are_collision_free(
        count in 1usize..24,
        shards in 1usize..9,
    ) {
        let service = MembershipService::with_shards(shards);
        let mut ids = Vec::new();
        for _ in 0..count {
            ids.push(service.create_session(SessionSpec::new(session(0, 4))).unwrap().id());
        }
        let unique: std::collections::BTreeSet<_> = ids.iter().copied().collect();
        prop_assert_eq!(unique.len(), ids.len(), "ids must never repeat");
        prop_assert_eq!(service.session_count(), count);
        for &id in &ids {
            prop_assert!(service.contains(id));
        }
        // Closing one session removes exactly that session.
        let closed = ids[ids.len() / 2];
        service.close_session(closed).unwrap();
        prop_assert!(!service.contains(closed));
        for &id in ids.iter().filter(|&&id| id != closed) {
            prop_assert!(service.contains(id));
        }
    }
}

/// The acceptance-scale stress test: 32 sessions of 16 sites, driven
/// concurrently from 8 threads through seeded churn traces. Every epoch
/// must keep every session's forest valid, and afterwards each session's
/// metrics and final plan must be bit-identical to a standalone
/// `SessionRuntime` replaying the same trace — i.e. zero cross-session
/// plan or metric bleed.
#[test]
fn concurrent_sessions_stay_isolated() {
    const SESSIONS: usize = 32;
    const SITES: usize = 16;
    const EPOCHS: usize = 10;
    const THREADS: usize = 8;

    let service = MembershipService::with_shards(8);
    let handles: Vec<_> = (0..SESSIONS)
        .map(|i| {
            service
                .create_session(SessionSpec::new(session(i, SITES)))
                .expect("16-site sessions are valid")
        })
        .collect();

    std::thread::scope(|scope| {
        for chunk in handles.chunks(SESSIONS / THREADS) {
            scope.spawn(|| {
                for (offset, handle) in chunk.iter().enumerate() {
                    let index = handle.id().raw() as usize;
                    let trace = churn_trace(index, SITES, EPOCHS);
                    for (e, epoch) in trace.iter().enumerate() {
                        // Alternate the two submission paths: queue+drive
                        // and direct drive must behave identically.
                        let outcome = if (e + offset) % 2 == 0 {
                            handle.submit_requests(epoch.clone()).unwrap();
                            handle.drive_epoch(&[]).unwrap()
                        } else {
                            handle.drive_epoch(epoch).unwrap()
                        };
                        assert_eq!(
                            outcome.delta.scope(),
                            Some(handle.id()),
                            "every delta is scoped to its session"
                        );
                        handle
                            .validate()
                            .expect("forest invariants hold every epoch");
                    }
                }
            });
        }
    });

    // Golden replay: the same traces driven through standalone runtimes.
    // Identical metrics and plans prove the registry never let sessions
    // interfere.
    for handle in &handles {
        let index = handle.id().raw() as usize;
        let golden_session = session(index, SITES);
        let universe = subscription_universe(&golden_session).unwrap();
        let mut golden = SessionRuntime::new(universe, golden_session, RuntimeConfig::default())
            .unwrap()
            .with_scope(handle.id());
        for epoch in &churn_trace(index, SITES, EPOCHS) {
            golden.apply_epoch(epoch);
        }

        let report = handle.report().unwrap();
        assert_eq!(report.epochs, EPOCHS);
        let golden_report = golden.report();
        assert_eq!(report.subscribes, golden_report.subscribes);
        assert_eq!(report.accepted, golden_report.accepted);
        assert_eq!(report.rebuilds, golden_report.rebuilds);
        assert_eq!(
            report.dropped_subscriptions,
            golden_report.dropped_subscriptions
        );
        assert_eq!(report.delta_entries, golden_report.delta_entries);
        assert_eq!(report.plan_entries, golden_report.plan_entries);
        assert_eq!(
            handle.plan().unwrap(),
            *golden.plan(),
            "session {} final plan must match its solo replay exactly",
            handle.id()
        );
    }

    // drive_all keeps the isolation: one bulk pass equals each golden
    // runtime's next (quiet) epoch.
    let bulk = service.drive_all();
    assert_eq!(bulk.sessions, SESSIONS);
    for handle in &handles {
        let index = handle.id().raw() as usize;
        let golden_session = session(index, SITES);
        let universe = subscription_universe(&golden_session).unwrap();
        let mut golden = SessionRuntime::new(universe, golden_session, RuntimeConfig::default())
            .unwrap()
            .with_scope(handle.id());
        for epoch in &churn_trace(index, SITES, EPOCHS) {
            golden.apply_epoch(epoch);
        }
        let golden_quiet = golden.apply_epoch(&[]);
        let bulk_report = &bulk.per_session[&handle.id()];
        assert_eq!(comparable(bulk_report), comparable(&golden_quiet.report));
        assert_eq!(handle.plan().unwrap(), *golden.plan());
        handle.validate().unwrap();
    }
}
