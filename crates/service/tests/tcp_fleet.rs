//! The tentpole integration: many concurrent sessions behind one
//! [`MembershipService`], each executing on its **own live TCP fleet**,
//! every epoch's [`PlanDelta`] applied through a
//! [`DeltaRouter`]`<`[`Coordinator`]`>` — membership-server dictation to
//! autonomous per-site RPs, purely wire-level, end to end.

use std::collections::BTreeMap;
use std::time::Duration;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use teeve_net::{ClusterConfig, Coordinator, RpNode, RpNodeHandle};
use teeve_pubsub::{DeltaRouter, DeltaSink, DisseminationPlan, Session};
use teeve_runtime::TraceConfig;
use teeve_service::{MembershipService, SessionSpec};
use teeve_types::{CostMatrix, CostMs, Degree, DisplayId, SessionId, SiteId, StreamId};

const SESSIONS: usize = 3;
const SITES: usize = 4;
const DISPLAYS: u32 = 2;
const EPOCHS: usize = 4;
const FRAMES_PER_EPOCH: u64 = 2;

fn fleet_config() -> ClusterConfig {
    ClusterConfig {
        frames_per_stream: FRAMES_PER_EPOCH,
        payload_bytes: 256,
        frame_interval: None,
        timeout: Duration::from_secs(30),
    }
}

/// One hosted session's TCP execution fleet.
struct Fleet {
    nodes: Vec<RpNodeHandle>,
}

/// Binds and spawns one RP node per site and connects a coordinator to
/// their addresses.
fn launch_fleet(plan: &DisseminationPlan, config: &ClusterConfig) -> (Fleet, Coordinator) {
    let mut nodes = Vec::with_capacity(plan.site_count());
    let mut addrs = Vec::with_capacity(plan.site_count());
    for site in SiteId::all(plan.site_count()) {
        let node = RpNode::bind(site, config.timeout).expect("bind RP");
        addrs.push(node.local_addr());
        nodes.push(node.spawn());
    }
    let coordinator = Coordinator::connect(plan, &addrs, config).expect("connect fleet");
    (Fleet { nodes }, coordinator)
}

/// Records what the current plan's receivers are owed by a batch.
fn expect_batch(
    expected: &mut BTreeMap<(SiteId, StreamId), u64>,
    plan: &DisseminationPlan,
    frames: u64,
) {
    for sp in plan.site_plans() {
        for stream in sp.received_streams() {
            *expected.entry((sp.site, stream)).or_default() += frames;
        }
    }
}

/// ≥ 2 concurrent sessions behind one `MembershipService`, each epoch's
/// delta applied to its own live TCP fleet via `drive_all_with(&mut
/// DeltaRouter<Coordinator>)`, per-session delivered-frame counts exact.
#[test]
fn socket_tcp_multi_session_fleets_behind_one_service() {
    let service = MembershipService::with_shards(4);
    let config = fleet_config();

    // Admit the sessions, each seeded with a ring of gazes so the launch
    // plan already disseminates, and give each its own RP fleet.
    let mut handles = Vec::new();
    let mut fleets: BTreeMap<SessionId, Fleet> = BTreeMap::new();
    let mut expected: BTreeMap<SessionId, BTreeMap<(SiteId, StreamId), u64>> = BTreeMap::new();
    let mut router: DeltaRouter<Coordinator> = DeltaRouter::new();
    for index in 0..SESSIONS {
        let costs = CostMatrix::from_fn(SITES, |i, j| {
            CostMs::new(3 + ((i * 7 + j * 5 + index * 11) % 6) as u32)
        });
        let mut session = Session::builder(costs)
            .cameras_per_site(4)
            .displays_per_site(DISPLAYS)
            .symmetric_capacity(Degree::new(8))
            .build();
        for site in SiteId::all(SITES) {
            let target = SiteId::new((site.index() as u32 + 1 + index as u32) % SITES as u32);
            if target != site {
                session.subscribe_viewpoint(DisplayId::new(site, 0), target);
            }
        }
        let handle = service
            .create_session(SessionSpec::new(session))
            .expect("admit");
        let plan = handle.plan().expect("scoped plan");
        assert_eq!(plan.scope(), Some(handle.id()));
        let (fleet, coordinator) = launch_fleet(&plan, &config);
        fleets.insert(handle.id(), fleet);
        expected.insert(handle.id(), BTreeMap::new());
        router.register(handle.id(), coordinator);
        handles.push(handle);
    }
    assert_eq!(router.len(), SESSIONS);

    // Epoch 0 traffic under the launch plans.
    for handle in &handles {
        let coordinator = router.get_mut(handle.id()).expect("registered");
        coordinator.publish(FRAMES_PER_EPOCH).expect("launch batch");
        expect_batch(
            expected.get_mut(&handle.id()).unwrap(),
            coordinator.plan(),
            FRAMES_PER_EPOCH,
        );
    }

    // Scripted churn: each session gets its own seeded trace. Every
    // `drive_all_with` pass advances every session one epoch and routes
    // each emitted delta to that session's live coordinator over TCP.
    let traces: Vec<_> = handles
        .iter()
        .enumerate()
        .map(|(i, _)| {
            TraceConfig {
                epochs: EPOCHS,
                events_per_epoch: 3,
                leave_weight: 0,
                join_weight: 0,
                ..TraceConfig::default()
            }
            .generate(
                SITES,
                DISPLAYS,
                &mut ChaCha8Rng::seed_from_u64(4000 + i as u64),
            )
        })
        .collect();
    for epoch in 0..EPOCHS {
        for (handle, trace) in handles.iter().zip(&traces) {
            handle
                .submit_requests(trace[epoch].iter().cloned())
                .expect("queue churn");
        }
        let (report, rejections) = service.drive_all_with(&mut router);
        assert_eq!(report.sessions, SESSIONS);
        assert!(
            rejections.is_empty(),
            "epoch {epoch}: live fleets rejected deltas: {rejections:?}"
        );

        for handle in &handles {
            let coordinator = router.get_mut(handle.id()).expect("registered");
            // Fleet and runtime march in revision lock-step, and the
            // coordinator's wire-installed plan is the session's exactly.
            let runtime_plan = handle.plan().expect("session plan");
            assert_eq!(coordinator.revision(), runtime_plan.revision());
            assert_eq!(coordinator.plan(), &runtime_plan, "epoch {epoch}: diverged");
            coordinator
                .publish(FRAMES_PER_EPOCH)
                .unwrap_or_else(|e| panic!("epoch {epoch}: batch failed: {e}"));
            expect_batch(
                expected.get_mut(&handle.id()).unwrap(),
                coordinator.plan(),
                FRAMES_PER_EPOCH,
            );
        }
    }

    // Shut every fleet down: per-session delivered-frame counts must be
    // exact — no bleed between sessions sharing the one service.
    for handle in &handles {
        let id = handle.id();
        let coordinator = router.unregister(id).expect("still registered");
        assert_eq!(coordinator.revision(), EPOCHS as u64);
        let report = coordinator.shutdown();
        assert_eq!(
            report.delivered, expected[&id],
            "{id}: per-session deliveries must match every epoch's plan exactly"
        );
        let fleet = fleets.remove(&id).expect("fleet");
        for node in fleet.nodes {
            node.join();
        }
        let runtime_report = service.close_session(id).expect("close");
        assert_eq!(runtime_report.epochs, EPOCHS);
    }
    assert_eq!(service.session_count(), 0);
    assert!(router.is_empty());
}

/// A foreign-session delta can never leak into another session's fleet:
/// the router dispatches on scope, and the coordinator's scoped plan
/// would reject a mismatched delta anyway.
#[test]
fn socket_router_isolates_fleet_deltas_by_session() {
    let service = MembershipService::with_shards(2);
    let config = fleet_config();
    let mut router: DeltaRouter<Coordinator> = DeltaRouter::new();

    let mut handles = Vec::new();
    let mut fleets = Vec::new();
    for index in 0..2 {
        let costs =
            CostMatrix::from_fn(SITES, |i, j| CostMs::new(4 + ((i + j + index) % 3) as u32));
        let mut session = Session::builder(costs)
            .cameras_per_site(4)
            .displays_per_site(1)
            .symmetric_capacity(Degree::new(8))
            .build();
        session.subscribe_viewpoint(DisplayId::new(SiteId::new(0), 0), SiteId::new(1));
        let handle = service
            .create_session(SessionSpec::new(session))
            .expect("admit");
        let plan = handle.plan().expect("plan");
        let (fleet, coordinator) = launch_fleet(&plan, &config);
        router.register(handle.id(), coordinator);
        fleets.push(fleet);
        handles.push(handle);
    }

    // Drive only session 0 directly; its delta routes to its own fleet,
    // and session 1's coordinator must stay untouched at revision 0.
    let outcome = handles[0]
        .drive_epoch(&[teeve_runtime::RuntimeEvent::Viewpoint {
            display: DisplayId::new(SiteId::new(2), 0),
            target: SiteId::new(0),
        }])
        .expect("drive");
    assert_eq!(outcome.delta.scope(), Some(handles[0].id()));
    router
        .apply_delta(&outcome.delta)
        .expect("routes to fleet 0");
    assert_eq!(router.get(handles[0].id()).unwrap().revision(), 1);
    assert_eq!(router.get(handles[1].id()).unwrap().revision(), 0);

    for handle in &handles {
        let coordinator = router.unregister(handle.id()).unwrap();
        coordinator.shutdown();
    }
    for fleet in fleets {
        for node in fleet.nodes {
            node.join();
        }
    }
}
