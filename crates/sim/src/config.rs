//! Simulation configuration.

use serde::{Deserialize, Serialize};

use crate::SimTime;

/// Configuration of one dissemination simulation run.
///
/// # Examples
///
/// ```
/// use teeve_sim::{SimConfig, SimTime};
///
/// let cfg = SimConfig::default();
/// assert_eq!(cfg.duration, SimTime::from_secs(2));
/// assert_eq!(cfg.render_ms_per_stream, 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimConfig {
    /// How long cameras capture frames.
    pub duration: SimTime,
    /// Per-hop forwarding overhead added by each relaying RP, in
    /// microseconds (packet processing, copy to the next uplink).
    pub forward_overhead_us: u64,
    /// Rendering cost per stream per frame at a display, in milliseconds —
    /// the paper measures ≈10 ms/stream (Section 1).
    pub render_ms_per_stream: u32,
}

impl SimConfig {
    /// A short run for tests: 200 ms of capture.
    pub fn short() -> Self {
        SimConfig {
            duration: SimTime::from_millis(200),
            ..SimConfig::default()
        }
    }

    /// Overrides the capture duration.
    #[must_use]
    pub fn with_duration(mut self, duration: SimTime) -> Self {
        self.duration = duration;
        self
    }
}

impl Default for SimConfig {
    /// 2 s of capture, 500 µs per-hop forwarding overhead, 10 ms/stream
    /// rendering.
    fn default() -> Self {
        SimConfig {
            duration: SimTime::from_secs(2),
            forward_overhead_us: 500,
            render_ms_per_stream: 10,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_config_shrinks_duration_only() {
        let short = SimConfig::short();
        let default = SimConfig::default();
        assert!(short.duration < default.duration);
        assert_eq!(short.forward_overhead_us, default.forward_overhead_us);
        assert_eq!(short.render_ms_per_stream, default.render_ms_per_stream);
    }

    #[test]
    fn serde_roundtrip() {
        let cfg = SimConfig::default();
        let json = serde_json::to_string(&cfg).unwrap();
        assert_eq!(serde_json::from_str::<SimConfig>(&json).unwrap(), cfg);
    }
}
