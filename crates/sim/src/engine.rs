//! The discrete-event dissemination engine.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use teeve_pubsub::DisseminationPlan;
use teeve_types::{SiteId, StreamId};

use crate::{FaultPlan, SimConfig, SimReport, SimTime};

/// A scheduled event, ordered by time (then by an insertion sequence so
/// simultaneous events pop deterministically in schedule order).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    /// A camera at the stream's origin produced frame `seq`.
    Capture { stream: StreamId, seq: u64 },
    /// Frame `seq` of `stream` arrived at `site`.
    Arrival {
        site: SiteId,
        stream: StreamId,
        seq: u64,
        captured_at: SimTime,
    },
}

/// Per-edge transmission channel: one reserved stream slot, as in the
/// paper's bandwidth model (capacities counted in streams). Frames queue
/// FIFO behind the slot's serialization.
#[derive(Debug, Default)]
struct EdgeChannel {
    busy_until: SimTime,
}

/// Runs the dissemination simulation of `plan` under `config`.
///
/// Model:
///
/// * every stream with at least one overlay child is captured at the
///   origin at the profile's frame rate for `config.duration`;
/// * each planned overlay edge is a dedicated channel of one stream slot:
///   a frame's serialization takes `frame_bytes / bitrate`, and frames
///   queue FIFO per edge;
/// * propagation along an edge takes the plan's link cost;
/// * a relaying RP adds `config.forward_overhead_us` before re-sending
///   (cut-through at frame granularity).
///
/// The returned report records per-(site, stream) delivery counts and
/// latency statistics.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use teeve_overlay::{ConstructionAlgorithm, ProblemInstance, RandomJoin};
/// use teeve_pubsub::{DisseminationPlan, StreamProfile};
/// use teeve_sim::{simulate, SimConfig};
/// use teeve_types::{CostMatrix, CostMs, Degree, SiteId, StreamId};
///
/// let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(5));
/// let problem = ProblemInstance::builder(costs, CostMs::new(50))
///     .symmetric_capacities(Degree::new(4))
///     .streams_per_site(&[1, 0, 0])
///     .subscribe(SiteId::new(1), StreamId::new(SiteId::new(0), 0))
///     .build()?;
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let outcome = RandomJoin::default().construct(&problem, &mut rng);
/// let plan = DisseminationPlan::from_forest(&problem, outcome.forest(), StreamProfile::default());
///
/// let report = simulate(&plan, &SimConfig::short());
/// assert!(report.total_frames_delivered() > 0);
/// assert_eq!(report.delivery_ratio(), 1.0);
/// # Ok::<(), teeve_overlay::ProblemError>(())
/// ```
pub fn simulate(plan: &DisseminationPlan, config: &SimConfig) -> SimReport {
    simulate_with_faults(plan, config, &FaultPlan::none())
}

/// Runs the dissemination simulation with injected faults: per-link frame
/// loss and RP crashes (see [`FaultPlan`]).
///
/// Semantics:
///
/// * a lost frame still consumes its edge's serialization slot (the bytes
///   were sent; they just never arrive);
/// * a crashed site stops capturing/forwarding at its halt time, and
///   frames arriving after the halt are discarded — silencing every
///   subtree below it.
pub fn simulate_with_faults(
    plan: &DisseminationPlan,
    config: &SimConfig,
    faults: &FaultPlan,
) -> SimReport {
    let profile = plan.profile();
    let serialize = SimTime::from_micros(profile.bitrate.transmit_micros(profile.frame_bytes()));
    let overhead = SimTime::from_micros(config.forward_overhead_us);
    let interval = SimTime::from_micros(profile.frame_interval_micros());

    let mut queue: BinaryHeap<Reverse<(SimTime, u64, EventKind)>> = BinaryHeap::new();
    let mut schedule_seq = 0u64;
    let push = |queue: &mut BinaryHeap<_>, at: SimTime, ev: EventKind, seq: &mut u64| {
        queue.push(Reverse((at, *seq, ev)));
        *seq += 1;
    };

    // Schedule captures for every stream that transits the overlay.
    let mut frames_per_stream: BTreeMap<StreamId, u64> = BTreeMap::new();
    for sp in plan.site_plans() {
        for entry in &sp.entries {
            if !entry.is_origin() || entry.children.is_empty() {
                continue;
            }
            let mut t = SimTime::ZERO;
            let mut frames = 0;
            while t < config.duration {
                push(
                    &mut queue,
                    t,
                    EventKind::Capture {
                        stream: entry.stream,
                        seq: frames,
                    },
                    &mut schedule_seq,
                );
                frames += 1;
                t += interval;
            }
            frames_per_stream.insert(entry.stream, frames);
        }
    }

    let mut channels: BTreeMap<(SiteId, SiteId, StreamId), EdgeChannel> = BTreeMap::new();
    let mut report = SimReport::new(plan, config, serialize, frames_per_stream.clone());

    // Sends one frame copy along an edge, returning the arrival event
    // (`None` when the frame is lost in transit).
    let send = |channels: &mut BTreeMap<(SiteId, SiteId, StreamId), EdgeChannel>,
                from: SiteId,
                to: SiteId,
                stream: StreamId,
                seq: u64,
                ready: SimTime|
     -> Option<SimTime> {
        let channel = channels.entry((from, to, stream)).or_default();
        let depart = channel.busy_until.max(ready) + serialize;
        channel.busy_until = depart;
        if faults.frame_lost(from, to, stream, seq) {
            return None;
        }
        Some(depart + SimTime::from(plan.link_cost(from, to)))
    };

    while let Some(Reverse((now, _, event))) = queue.pop() {
        match event {
            EventKind::Capture { stream, seq } => {
                let origin = stream.origin();
                if faults.crashed(origin, now) {
                    continue;
                }
                let children = plan
                    .site_plan(origin)
                    .entry(stream)
                    .map(|e| e.child_sites())
                    .unwrap_or_default();
                for child in children {
                    let Some(arrival) = send(&mut channels, origin, child, stream, seq, now) else {
                        continue;
                    };
                    push(
                        &mut queue,
                        arrival,
                        EventKind::Arrival {
                            site: child,
                            stream,
                            seq,
                            captured_at: now,
                        },
                        &mut schedule_seq,
                    );
                }
            }
            EventKind::Arrival {
                site,
                stream,
                seq,
                captured_at,
            } => {
                if faults.crashed(site, now) {
                    continue;
                }
                report.record_delivery_at(site, stream, now - captured_at, Some(now));
                let children = plan
                    .site_plan(site)
                    .entry(stream)
                    .map(|e| e.child_sites())
                    .unwrap_or_default();
                if children.is_empty() {
                    continue;
                }
                let ready = now + overhead;
                for child in children {
                    let Some(arrival) = send(&mut channels, site, child, stream, seq, ready) else {
                        continue;
                    };
                    push(
                        &mut queue,
                        arrival,
                        EventKind::Arrival {
                            site: child,
                            stream,
                            seq,
                            captured_at,
                        },
                        &mut schedule_seq,
                    );
                }
            }
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use teeve_overlay::{ConstructionAlgorithm, ProblemInstance, RandomJoin};
    use teeve_pubsub::StreamProfile;
    use teeve_types::{CostMatrix, CostMs, Degree};

    fn site(i: u32) -> SiteId {
        SiteId::new(i)
    }

    fn stream(origin: u32, q: u32) -> StreamId {
        StreamId::new(site(origin), q)
    }

    fn chain_plan() -> DisseminationPlan {
        // 0 -> 1 -> 2 relay chain for one stream (capacity forces
        // relaying): the source's single out slot goes to the first
        // subscriber, so the second must relay through it. Built with the
        // deterministic incremental manager so the chain's shape never
        // depends on an RNG stream.
        let costs = CostMatrix::from_fn(3, |i, j| {
            CostMs::new(if i.min(j) == 0 && i.max(j) == 2 {
                30
            } else {
                5
            })
        });
        let problem = ProblemInstance::builder(costs, CostMs::new(50))
            .capacities(vec![
                teeve_overlay::NodeCapacity::symmetric(Degree::new(1)),
                teeve_overlay::NodeCapacity::symmetric(Degree::new(4)),
                teeve_overlay::NodeCapacity::symmetric(Degree::new(4)),
            ])
            .streams_per_site(&[1, 0, 0])
            .subscribe(site(1), stream(0, 0))
            .subscribe(site(2), stream(0, 0))
            .build()
            .unwrap();
        let mut manager = teeve_overlay::OverlayManager::new(problem.clone());
        manager.subscribe(site(1), stream(0, 0)).unwrap();
        manager.subscribe(site(2), stream(0, 0)).unwrap();
        let forest = manager.into_forest();
        assert_eq!(forest.trees()[0].parent_of(site(1)), Some(site(0)));
        assert_eq!(forest.trees()[0].parent_of(site(2)), Some(site(1)));
        DisseminationPlan::from_forest(&problem, &forest, StreamProfile::default())
    }

    #[test]
    fn all_planned_frames_are_delivered() {
        let plan = chain_plan();
        let report = simulate(&plan, &SimConfig::short());
        assert_eq!(report.delivery_ratio(), 1.0);
        // 200 ms at 15 fps = 4 frames (0, 66.6, 133.3, 199.9 ms), 2
        // receivers each.
        assert_eq!(report.total_frames_delivered(), 8);
    }

    #[test]
    fn relay_hops_add_latency() {
        let plan = chain_plan();
        let report = simulate(&plan, &SimConfig::short());
        let direct = report
            .stream_stats(site(1), stream(0, 0))
            .expect("site 1 receives");
        let relayed = report
            .stream_stats(site(2), stream(0, 0))
            .expect("site 2 receives");
        assert!(
            relayed.mean_latency() > direct.mean_latency(),
            "two hops must cost more than one"
        );
    }

    #[test]
    fn latency_decomposes_into_serialization_and_path() {
        let plan = chain_plan();
        let config = SimConfig::short();
        let report = simulate(&plan, &config);
        let serialize = report.serialization_time();
        // Site 1 is one hop at 5 ms: latency = serialize + 5 ms exactly
        // (steady state keeps every channel just-free: no queueing).
        let direct = report.stream_stats(site(1), stream(0, 0)).unwrap();
        assert_eq!(direct.max_latency(), serialize + SimTime::from_millis(5));
        // Site 2: two hops (5 + 5 ms), one forwarding overhead, and a
        // second serialization (store-and-forward at the relay).
        let relayed = report.stream_stats(site(2), stream(0, 0)).unwrap();
        assert_eq!(
            relayed.max_latency(),
            serialize
                + serialize
                + SimTime::from_millis(10)
                + SimTime::from_micros(config.forward_overhead_us)
        );
    }

    #[test]
    fn simulation_is_deterministic() {
        let plan = chain_plan();
        let a = simulate(&plan, &SimConfig::short());
        let b = simulate(&plan, &SimConfig::short());
        assert_eq!(a.total_frames_delivered(), b.total_frames_delivered());
        assert_eq!(a.worst_latency(), b.worst_latency());
    }

    #[test]
    fn empty_plan_produces_empty_report() {
        let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(5));
        let problem = ProblemInstance::builder(costs, CostMs::new(50))
            .symmetric_capacities(Degree::new(4))
            .streams_per_site(&[1, 1, 1])
            .build()
            .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let outcome = RandomJoin.construct(&problem, &mut rng);
        let plan =
            DisseminationPlan::from_forest(&problem, outcome.forest(), StreamProfile::default());
        let report = simulate(&plan, &SimConfig::short());
        assert_eq!(report.total_frames_delivered(), 0);
        assert_eq!(report.delivery_ratio(), 1.0, "vacuously complete");
    }

    #[test]
    fn certain_link_loss_silences_the_subtree() {
        use crate::{simulate_with_faults, FaultImpact, FaultPlan};
        let plan = chain_plan();
        let config = SimConfig::short();
        let baseline = simulate(&plan, &config);
        // Kill the 0 -> 1 link: both receivers sit below it.
        let faults = FaultPlan::none().with_link_loss(site(0), site(1), 1.0);
        let faulty = simulate_with_faults(&plan, &config, &faults);
        assert_eq!(faulty.total_frames_delivered(), 0);
        let pairs = vec![(site(1), stream(0, 0)), (site(2), stream(0, 0))];
        let impact = FaultImpact::compare(&baseline, &faulty, pairs);
        assert_eq!(impact.baseline_delivery, 1.0);
        assert_eq!(impact.faulty_delivery, 0.0);
        assert_eq!(impact.silenced.len(), 2);
    }

    #[test]
    fn relay_crash_cuts_downstream_but_not_upstream() {
        use crate::{simulate_with_faults, FaultPlan};
        let plan = chain_plan();
        let config = SimConfig::short();
        // Site 1 (the relay) crashes immediately: site 2 gets nothing,
        // and site 1 itself stops accepting frames.
        let faults = FaultPlan::none().with_crash(site(1), SimTime::ZERO);
        let report = simulate_with_faults(&plan, &config, &faults);
        assert!(report.stream_stats(site(2), stream(0, 0)).is_none());
        assert!(report.stream_stats(site(1), stream(0, 0)).is_none());

        // A late crash lets earlier frames through.
        let faults = FaultPlan::none().with_crash(site(1), SimTime::from_millis(150));
        let report = simulate_with_faults(&plan, &config, &faults);
        let got = report
            .stream_stats(site(1), stream(0, 0))
            .map_or(0, |s| s.frames());
        assert!(got >= 1, "pre-crash frames must arrive");
        assert!(got < 4, "post-crash frames must not");
    }

    #[test]
    fn partial_loss_degrades_delivery_partially() {
        use crate::{simulate_with_faults, FaultPlan};
        let plan = chain_plan();
        let config = SimConfig::default(); // 30 frames
        let faults = FaultPlan::none().with_link_loss(site(0), site(1), 0.4);
        let report = simulate_with_faults(&plan, &config, &faults);
        let ratio = report.delivery_ratio();
        assert!(ratio > 0.0 && ratio < 1.0, "ratio was {ratio}");
    }

    #[test]
    fn steady_state_delivery_is_jitter_free() {
        // Dedicated per-edge stream slots never queue at steady state, so
        // inter-arrival gaps equal the capture interval exactly.
        let plan = chain_plan();
        let report = simulate(
            &plan,
            &SimConfig::default().with_duration(SimTime::from_millis(1000)),
        );
        assert_eq!(report.worst_jitter(), SimTime::ZERO);
    }

    #[test]
    fn frame_loss_creates_jitter() {
        use crate::{simulate_with_faults, FaultPlan};
        let plan = chain_plan();
        let config = SimConfig::default().with_duration(SimTime::from_millis(2000));
        let faults = FaultPlan::none().with_link_loss(site(0), site(1), 0.3);
        let report = simulate_with_faults(&plan, &config, &faults);
        // Lost frames leave multi-interval holes in the arrival sequence.
        assert!(report.worst_jitter() > SimTime::ZERO);
    }

    #[test]
    fn longer_duration_delivers_proportionally_more() {
        let plan = chain_plan();
        let short = simulate(
            &plan,
            &SimConfig::default().with_duration(SimTime::from_millis(500)),
        );
        let long = simulate(
            &plan,
            &SimConfig::default().with_duration(SimTime::from_millis(1000)),
        );
        assert!(long.total_frames_delivered() > short.total_frames_delivered());
        assert_eq!(long.delivery_ratio(), 1.0);
    }
}
