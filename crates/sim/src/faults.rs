//! Failure injection: loss and crash models layered on the dissemination
//! simulation.
//!
//! The paper's latency bound covers the happy path; a deployed 3DTI system
//! also faces lossy WAN links and relay failures. [`FaultPlan`] describes
//! what goes wrong during a run; [`simulate_with_faults`] executes it:
//!
//! * **link loss** — each frame crossing a link is dropped independently
//!   with the link's loss probability (deterministic hash-based draws, so
//!   runs are reproducible without an RNG dependency in the hot loop);
//! * **RP crash** — a site halts at a given time: it stops forwarding and
//!   receiving (its own cameras keep capturing, but frames die at its
//!   uplink), which silences every subtree hanging below it.
//!
//! Comparing the resulting [`SimReport`] against the fault-free run shows
//! how much delivery a single relay failure costs — the motivation for
//! keeping trees shallow and fan-out balanced.

use serde::{Deserialize, Serialize};
use teeve_types::{SiteId, StreamId};

use crate::{SimTime, StreamStats};

/// Deterministic per-frame loss draw: a splitmix-style hash of the frame's
/// coordinates mapped to `[0, 1)`.
fn loss_draw(from: SiteId, to: SiteId, stream: StreamId, seq: u64) -> f64 {
    let mut x = (from.index() as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(to.index() as u64)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9)
        .wrapping_add(stream.origin().index() as u64 + 1)
        .wrapping_mul(0x94D0_49BB_1331_11EB)
        .wrapping_add(u64::from(stream.local_index()) + 1)
        .wrapping_add(seq.wrapping_mul(0xD6E8_FEB8_6659_FD93));
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// One lossy directed link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct LinkLoss {
    from: u32,
    to: u32,
    probability: f64,
}

/// One crashing site.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Crash {
    site: u32,
    at: SimTime,
}

/// What goes wrong during a simulated run.
///
/// Fault plans are tiny (a handful of entries), so lookups scan linearly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct FaultPlan {
    link_loss: Vec<LinkLoss>,
    crashes: Vec<Crash>,
}

impl FaultPlan {
    /// A plan with no faults (equivalent to the plain simulation).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Sets the loss probability of the directed link `from → to`.
    ///
    /// # Panics
    ///
    /// Panics if `probability` is outside `[0, 1]`.
    #[must_use]
    pub fn with_link_loss(mut self, from: SiteId, to: SiteId, probability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&probability),
            "loss probability must be in [0, 1]"
        );
        self.link_loss
            .retain(|l| (l.from, l.to) != (from.index() as u32, to.index() as u32));
        self.link_loss.push(LinkLoss {
            from: from.index() as u32,
            to: to.index() as u32,
            probability,
        });
        self
    }

    /// Crashes `site` at `at`: from then on it neither receives nor
    /// forwards.
    #[must_use]
    pub fn with_crash(mut self, site: SiteId, at: SimTime) -> Self {
        self.crashes.retain(|c| c.site != site.index() as u32);
        self.crashes.push(Crash {
            site: site.index() as u32,
            at,
        });
        self
    }

    /// Returns true if the plan contains no faults.
    pub fn is_empty(&self) -> bool {
        self.link_loss.is_empty() && self.crashes.is_empty()
    }

    /// Returns whether `site` has crashed by time `at`.
    pub fn crashed(&self, site: SiteId, at: SimTime) -> bool {
        self.crashes
            .iter()
            .any(|c| c.site == site.index() as u32 && at >= c.at)
    }

    /// Returns whether the frame `(stream, seq)` is lost on `from → to`.
    pub fn frame_lost(&self, from: SiteId, to: SiteId, stream: StreamId, seq: u64) -> bool {
        match self
            .link_loss
            .iter()
            .find(|l| (l.from, l.to) == (from.index() as u32, to.index() as u32))
        {
            None => false,
            Some(l) => loss_draw(from, to, stream, seq) < l.probability,
        }
    }
}

/// Side-by-side comparison of a faulty run against its fault-free
/// baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultImpact {
    /// Delivery ratio of the fault-free baseline run.
    pub baseline_delivery: f64,
    /// Delivery ratio under the fault plan.
    pub faulty_delivery: f64,
    /// (site, stream) pairs that lost *all* frames under faults while the
    /// baseline delivered them — subtrees silenced by a crash or a dead
    /// link.
    pub silenced: Vec<(SiteId, StreamId)>,
}

impl FaultImpact {
    /// Computes the impact by diffing two reports' per-pair statistics.
    pub fn compare(
        baseline: &crate::SimReport,
        faulty: &crate::SimReport,
        pairs: impl IntoIterator<Item = (SiteId, StreamId)>,
    ) -> Self {
        let mut silenced = Vec::new();
        for (site, stream) in pairs {
            let base = baseline.stream_stats(site, stream).map(StreamStats::frames);
            let fault = faulty.stream_stats(site, stream).map(StreamStats::frames);
            if base.unwrap_or(0) > 0 && fault.unwrap_or(0) == 0 {
                silenced.push((site, stream));
            }
        }
        FaultImpact {
            baseline_delivery: baseline.delivery_ratio(),
            faulty_delivery: faulty.delivery_ratio(),
            silenced,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(i: u32) -> SiteId {
        SiteId::new(i)
    }

    fn stream(origin: u32, q: u32) -> StreamId {
        StreamId::new(site(origin), q)
    }

    #[test]
    fn empty_plan_loses_nothing() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert!(!plan.frame_lost(site(0), site(1), stream(0, 0), 5));
        assert!(!plan.crashed(site(0), SimTime::from_secs(100)));
    }

    #[test]
    fn certain_loss_drops_every_frame() {
        let plan = FaultPlan::none().with_link_loss(site(0), site(1), 1.0);
        for seq in 0..50 {
            assert!(plan.frame_lost(site(0), site(1), stream(0, 0), seq));
        }
        // The reverse direction is unaffected.
        assert!(!plan.frame_lost(site(1), site(0), stream(0, 0), 0));
    }

    #[test]
    fn partial_loss_is_roughly_proportional() {
        let plan = FaultPlan::none().with_link_loss(site(0), site(1), 0.3);
        let lost = (0..10_000)
            .filter(|&seq| plan.frame_lost(site(0), site(1), stream(0, 0), seq))
            .count();
        let rate = lost as f64 / 10_000.0;
        assert!(
            (0.27..0.33).contains(&rate),
            "empirical loss rate {rate} should approximate 0.3"
        );
    }

    #[test]
    fn loss_draws_are_deterministic() {
        let plan = FaultPlan::none().with_link_loss(site(2), site(3), 0.5);
        let a: Vec<bool> = (0..100)
            .map(|s| plan.frame_lost(site(2), site(3), stream(2, 1), s))
            .collect();
        let b: Vec<bool> = (0..100)
            .map(|s| plan.frame_lost(site(2), site(3), stream(2, 1), s))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn crash_takes_effect_at_its_time() {
        let plan = FaultPlan::none().with_crash(site(1), SimTime::from_millis(100));
        assert!(!plan.crashed(site(1), SimTime::from_millis(99)));
        assert!(plan.crashed(site(1), SimTime::from_millis(100)));
        assert!(plan.crashed(site(1), SimTime::from_millis(500)));
        assert!(!plan.crashed(site(2), SimTime::from_millis(500)));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_invalid_probability() {
        let _ = FaultPlan::none().with_link_loss(site(0), site(1), 1.5);
    }

    #[test]
    fn serde_roundtrip() {
        let plan = FaultPlan::none()
            .with_link_loss(site(0), site(1), 0.25)
            .with_crash(site(2), SimTime::from_millis(300));
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }
}
