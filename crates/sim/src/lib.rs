//! Discrete-event dissemination simulator for TEEVE overlays.
//!
//! The overlay construction layer (`teeve-overlay`) promises that every
//! accepted subscription has a tree path within the latency bound. This
//! crate *executes* a [`DisseminationPlan`](teeve_pubsub::DisseminationPlan) to check what that promise
//! means for actual media: cameras capture frames at the profile's rate,
//! every planned overlay edge behaves as one reserved stream slot
//! (serialization + FIFO queueing), links add their propagation latency,
//! and relaying RPs add a forwarding overhead. The resulting
//! [`SimReport`] gives per-(site, stream) delivery counts, end-to-end
//! latency statistics, and the display-side rendering budget implied by
//! the paper's ≈10 ms/stream measurement.
//!
//! # Examples
//!
//! ```
//! use rand::SeedableRng;
//! use teeve_overlay::{ConstructionAlgorithm, ProblemInstance, RandomJoin};
//! use teeve_pubsub::{DisseminationPlan, StreamProfile};
//! use teeve_sim::{simulate, SimConfig};
//! use teeve_types::{CostMatrix, CostMs, Degree, SiteId, StreamId};
//!
//! let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(6));
//! let problem = ProblemInstance::builder(costs, CostMs::new(60))
//!     .symmetric_capacities(Degree::new(6))
//!     .streams_per_site(&[2, 2, 2])
//!     .subscribe(SiteId::new(1), StreamId::new(SiteId::new(0), 0))
//!     .subscribe(SiteId::new(2), StreamId::new(SiteId::new(0), 0))
//!     .build()?;
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
//! let outcome = RandomJoin::default().construct(&problem, &mut rng);
//! let plan = DisseminationPlan::from_forest(&problem, outcome.forest(), StreamProfile::default());
//!
//! let report = simulate(&plan, &SimConfig::short());
//! assert_eq!(report.delivery_ratio(), 1.0);
//! # Ok::<(), teeve_overlay::ProblemError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod engine;
mod faults;
mod replan;
mod report;
mod time;

pub use config::SimConfig;
pub use engine::{simulate, simulate_with_faults};
pub use faults::{FaultImpact, FaultPlan};
pub use replan::simulate_with_replans;
pub use report::{SimReport, StreamStats};
pub use time::SimTime;
