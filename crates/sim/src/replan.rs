//! Delta-aware mid-simulation replanning: the dissemination plan changes
//! while frames are in flight, and only the forwarding state named by each
//! [`PlanDelta`] is touched — unaffected edges keep their channel state
//! (their in-progress serializations), exactly as a live RP cluster keeps
//! unaffected TCP links open.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};

use teeve_pubsub::{DisseminationPlan, PlanDelta};
use teeve_types::{SiteId, StreamId};

use crate::{SimConfig, SimReport, SimTime};

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    Capture {
        stream: StreamId,
        seq: u64,
    },
    Arrival {
        site: SiteId,
        stream: StreamId,
        seq: u64,
        captured_at: SimTime,
    },
}

#[derive(Debug, Default)]
struct EdgeChannel {
    busy_until: SimTime,
}

/// Runs the dissemination simulation of `initial` under `config`, applying
/// each `(at, delta)` replan once simulated time reaches `at`.
///
/// Semantics:
///
/// * every stream that ever has overlay children (in any plan revision) is
///   captured at the profile's frame rate for the full duration; captures
///   whose stream currently has no children produce nothing;
/// * a replan mutates the forwarding tables in place: channels of removed
///   edges are torn down (their queued serializations abandoned), channels
///   of surviving edges keep their `busy_until` state, new edges start
///   fresh;
/// * a frame is *expected* at every site holding a receiving entry for its
///   stream when it is captured; it is *delivered* if it arrives while the
///   site still holds that entry (frames in flight towards a site that
///   unsubscribed are dropped at teardown, like a closed socket);
/// * a site subscribing mid-run is expected (and counted) only for frames
///   captured from its subscription onwards.
///
/// # Panics
///
/// Panics if `replans` are not sorted by time or a delta does not apply to
/// its revision (deltas must be produced against the preceding plan, e.g.
/// by the session runtime's epochs).
pub fn simulate_with_replans(
    initial: &DisseminationPlan,
    replans: &[(SimTime, PlanDelta)],
    config: &SimConfig,
) -> SimReport {
    assert!(
        replans.windows(2).all(|w| w[0].0 <= w[1].0),
        "replans must be sorted by time"
    );
    let profile = initial.profile();
    let serialize = SimTime::from_micros(profile.bitrate.transmit_micros(profile.frame_bytes()));
    let overhead = SimTime::from_micros(config.forward_overhead_us);
    let interval = SimTime::from_micros(profile.frame_interval_micros());

    // Streams that ever transit the overlay, across all revisions.
    let mut transiting: BTreeSet<StreamId> = BTreeSet::new();
    let mut revision = initial.clone();
    let mut collect = |plan: &DisseminationPlan| {
        for sp in plan.site_plans() {
            for entry in &sp.entries {
                if entry.is_origin() && !entry.children.is_empty() {
                    transiting.insert(entry.stream);
                }
            }
        }
    };
    collect(&revision);
    for (_, delta) in replans {
        delta
            .apply(&mut revision)
            .expect("each replan applies to the previous revision");
        collect(&revision);
    }

    let mut queue: BinaryHeap<Reverse<(SimTime, u64, EventKind)>> = BinaryHeap::new();
    let mut schedule_seq = 0u64;
    let push = |queue: &mut BinaryHeap<Reverse<(SimTime, u64, EventKind)>>,
                at: SimTime,
                ev: EventKind,
                seq: &mut u64| {
        queue.push(Reverse((at, *seq, ev)));
        *seq += 1;
    };
    for &stream in &transiting {
        let mut t = SimTime::ZERO;
        let mut seq = 0u64;
        while t < config.duration {
            push(
                &mut queue,
                t,
                EventKind::Capture { stream, seq },
                &mut schedule_seq,
            );
            seq += 1;
            t += interval;
        }
    }

    let mut plan = initial.clone();
    let mut report = SimReport::new_dynamic(&plan, config, serialize);
    let mut channels: BTreeMap<(SiteId, SiteId, StreamId), EdgeChannel> = BTreeMap::new();
    let mut pending = replans.iter();
    let mut next_replan = pending.next();
    // Capture counts so far per stream, marking subscription epochs.
    let mut captured: BTreeMap<StreamId, u64> = BTreeMap::new();
    // First frame seq each receiving (site, stream) entry is entitled to.
    let mut entry_since: BTreeMap<(SiteId, StreamId), u64> = BTreeMap::new();
    for sp in plan.site_plans() {
        for stream in sp.received_streams() {
            entry_since.insert((sp.site, stream), 0);
        }
    }
    // Frame copies already seen per site: a replan can re-parent a
    // receiver while a frame is in flight on both its old and new paths,
    // and only the first copy may be recorded and forwarded.
    let mut seen: BTreeSet<(SiteId, StreamId, u64)> = BTreeSet::new();

    while let Some(Reverse((now, _, event))) = queue.pop() {
        // Apply replans that are due before this event.
        while let Some((at, delta)) = next_replan {
            if *at > now {
                break;
            }
            for (parent, child, stream) in delta.edges_removed() {
                channels.remove(&(parent, child, stream));
            }
            delta
                .apply(&mut plan)
                .expect("each replan applies to the previous revision");
            for change in delta.changes() {
                let key = (change.site, change.stream);
                let receiving = |e: &Option<teeve_pubsub::ForwardingEntry>| {
                    e.as_ref().is_some_and(|e| !e.is_origin())
                };
                match (receiving(&change.old), receiving(&change.new)) {
                    (false, true) => {
                        let since = captured.get(&change.stream).copied().unwrap_or(0);
                        entry_since.insert(key, since);
                    }
                    (true, false) => {
                        entry_since.remove(&key);
                    }
                    _ => {}
                }
            }
            next_replan = pending.next();
        }

        match event {
            EventKind::Capture { stream, seq } => {
                report.record_capture(stream);
                *captured.entry(stream).or_default() = seq + 1;
                let origin = stream.origin();
                let children = plan
                    .site_plan(origin)
                    .entry(stream)
                    .map(|e| e.child_sites())
                    .unwrap_or_default();
                if children.is_empty() {
                    continue;
                }
                // Every current receiver of this stream expects the frame.
                for sp in plan.site_plans() {
                    if sp.entry(stream).is_some_and(|e| !e.is_origin()) {
                        report.record_expected_frame(sp.site, stream);
                    }
                }
                for child in children {
                    let channel = channels.entry((origin, child, stream)).or_default();
                    let depart = channel.busy_until.max(now) + serialize;
                    channel.busy_until = depart;
                    let arrival = depart + SimTime::from(plan.link_cost(origin, child));
                    push(
                        &mut queue,
                        arrival,
                        EventKind::Arrival {
                            site: child,
                            stream,
                            seq,
                            captured_at: now,
                        },
                        &mut schedule_seq,
                    );
                }
            }
            EventKind::Arrival {
                site,
                stream,
                seq,
                captured_at,
            } => {
                // A duplicate copy (old and new path both in flight
                // across a re-parenting replan) is discarded wholesale:
                // real RPs dedup on sequence number.
                if !seen.insert((site, stream, seq)) {
                    continue;
                }
                // Drop the frame if the site's receiving entry is gone (it
                // unsubscribed while the frame was in flight) or postdates
                // the frame (it subscribed after capture).
                let since = entry_since.get(&(site, stream));
                let subscribed = since.is_some_and(|&s| seq >= s);
                if subscribed {
                    report.record_delivery_at(site, stream, now - captured_at, Some(now));
                }
                let children = plan
                    .site_plan(site)
                    .entry(stream)
                    .map(|e| e.child_sites())
                    .unwrap_or_default();
                if children.is_empty() {
                    continue;
                }
                let ready = now + overhead;
                for child in children {
                    let channel = channels.entry((site, child, stream)).or_default();
                    let depart = channel.busy_until.max(ready) + serialize;
                    channel.busy_until = depart;
                    let arrival = depart + SimTime::from(plan.link_cost(site, child));
                    push(
                        &mut queue,
                        arrival,
                        EventKind::Arrival {
                            site: child,
                            stream,
                            seq,
                            captured_at,
                        },
                        &mut schedule_seq,
                    );
                }
            }
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use teeve_overlay::{OverlayManager, ProblemInstance};
    use teeve_pubsub::StreamProfile;
    use teeve_types::{CostMatrix, CostMs, Degree};

    fn site(i: u32) -> SiteId {
        SiteId::new(i)
    }

    fn stream(origin: u32, q: u32) -> StreamId {
        StreamId::new(site(origin), q)
    }

    fn universe() -> ProblemInstance {
        let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(5));
        ProblemInstance::builder(costs, CostMs::new(50))
            .symmetric_capacities(Degree::new(4))
            .streams_per_site(&[1, 0, 0])
            .subscribe(site(1), stream(0, 0))
            .subscribe(site(2), stream(0, 0))
            .build()
            .unwrap()
    }

    fn plan_of(problem: &ProblemInstance, manager: &OverlayManager) -> DisseminationPlan {
        DisseminationPlan::from_forest(
            problem,
            &manager.forest_snapshot(),
            StreamProfile::default(),
        )
    }

    #[test]
    fn no_replans_matches_static_simulation() {
        let p = universe();
        let mut m = OverlayManager::new(p.clone());
        m.subscribe(site(1), stream(0, 0)).unwrap();
        m.subscribe(site(2), stream(0, 0)).unwrap();
        let plan = plan_of(&p, &m);
        let config = SimConfig::short();
        let baseline = crate::simulate(&plan, &config);
        let dynamic = simulate_with_replans(&plan, &[], &config);
        assert_eq!(
            dynamic.total_frames_delivered(),
            baseline.total_frames_delivered()
        );
        assert_eq!(dynamic.delivery_ratio(), 1.0);
        assert_eq!(dynamic.worst_latency(), baseline.worst_latency());
    }

    #[test]
    fn mid_run_join_starts_delivering() {
        let p = universe();
        let mut m = OverlayManager::new(p.clone());
        m.subscribe(site(1), stream(0, 0)).unwrap();
        let before = plan_of(&p, &m);
        m.subscribe(site(2), stream(0, 0)).unwrap();
        let after = plan_of(&p, &m);
        let delta = teeve_pubsub::PlanDelta::diff(&before, &after);

        // 1 s run at 15 fps; site 2 joins at 500 ms.
        let config = SimConfig::default().with_duration(SimTime::from_millis(1000));
        let report = simulate_with_replans(&before, &[(SimTime::from_millis(500), delta)], &config);
        let early = report.stream_stats(site(1), stream(0, 0)).unwrap();
        let late = report.stream_stats(site(2), stream(0, 0)).unwrap();
        assert!(early.frames() > late.frames(), "site 2 joined halfway");
        assert!(late.frames() > 0, "site 2 must receive after the replan");
        assert_eq!(report.delivery_ratio(), 1.0, "every expected frame lands");
    }

    #[test]
    fn mid_run_leave_stops_expecting() {
        let p = universe();
        let mut m = OverlayManager::new(p.clone());
        m.subscribe(site(1), stream(0, 0)).unwrap();
        m.subscribe(site(2), stream(0, 0)).unwrap();
        let before = plan_of(&p, &m);
        m.unsubscribe(site(2), stream(0, 0)).unwrap();
        let after = plan_of(&p, &m);
        let delta = teeve_pubsub::PlanDelta::diff(&before, &after);

        let config = SimConfig::default().with_duration(SimTime::from_millis(1000));
        let report = simulate_with_replans(&before, &[(SimTime::from_millis(500), delta)], &config);
        let stayed = report.stream_stats(site(1), stream(0, 0)).unwrap();
        let left = report.stream_stats(site(2), stream(0, 0)).unwrap();
        assert!(stayed.frames() > left.frames());
        // Frames in flight towards site 2 at teardown are lost (expected
        // at capture, dropped at arrival) — everything else lands.
        let ratio = report.delivery_ratio();
        assert!((0.85..1.0).contains(&ratio), "ratio was {ratio}");
    }

    #[test]
    fn unaffected_links_keep_flowing_across_replans() {
        // Site 1's delivery cadence must not hiccup when site 2's
        // subscription flaps: its channel state is never touched.
        let p = universe();
        let mut m = OverlayManager::new(p.clone());
        m.subscribe(site(1), stream(0, 0)).unwrap();
        let base = plan_of(&p, &m);
        m.subscribe(site(2), stream(0, 0)).unwrap();
        let joined = plan_of(&p, &m);
        let join = teeve_pubsub::PlanDelta::diff(&base, &joined);
        let leave = teeve_pubsub::PlanDelta::diff(&joined, &base);

        let config = SimConfig::default().with_duration(SimTime::from_millis(2000));
        let report = simulate_with_replans(
            &base,
            &[
                (SimTime::from_millis(400), join),
                (SimTime::from_millis(1200), leave),
            ],
            &config,
        );
        let steady = report.stream_stats(site(1), stream(0, 0)).unwrap();
        assert_eq!(steady.frames(), 31, "site 1 receives every frame");
        assert_eq!(steady.mean_jitter(), SimTime::ZERO, "no replan hiccups");
        // Only site 2's in-flight frame at its teardown can be lost.
        let ratio = report.delivery_ratio();
        assert!((0.9..=1.0).contains(&ratio), "ratio was {ratio}");
    }

    #[test]
    fn reparenting_never_double_delivers_in_flight_frames() {
        // Before: source 0 feeds 1 and 2 directly. After: 2 is re-parented
        // under 1. A frame in flight on the old direct path 0->2 while its
        // copy is also relayed 0->1->2 must be delivered exactly once.
        //
        // Site 2 subscribes first so it consumes the source's reservation
        // slot and attaches directly; site 1 then joins the source (rfc 7)
        // over site 2 (rfc 2).
        let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(5));
        let p = ProblemInstance::builder(costs, CostMs::new(50))
            .capacities(vec![
                teeve_overlay::NodeCapacity::symmetric(Degree::new(8)),
                teeve_overlay::NodeCapacity::symmetric(Degree::new(20)),
                teeve_overlay::NodeCapacity::symmetric(Degree::new(2)),
            ])
            .streams_per_site(&[1, 0, 0])
            .subscribe(site(1), stream(0, 0))
            .subscribe(site(2), stream(0, 0))
            .build()
            .unwrap();
        let mut m = OverlayManager::new(p.clone());
        m.subscribe(site(2), stream(0, 0)).unwrap();
        m.subscribe(site(1), stream(0, 0)).unwrap();
        let before = plan_of(&p, &m);
        assert_eq!(
            before
                .site_plan(site(2))
                .entry(stream(0, 0))
                .unwrap()
                .parent,
            Some(site(0))
        );
        // Re-parent: leave and rejoin; the rich relay (site 1, rfc 20) now
        // beats the source (rfc 7), so site 2 attaches under site 1.
        m.unsubscribe(site(2), stream(0, 0)).unwrap();
        m.subscribe(site(2), stream(0, 0)).unwrap();
        let after = plan_of(&p, &m);
        assert_eq!(
            after.site_plan(site(2)).entry(stream(0, 0)).unwrap().parent,
            Some(site(1))
        );
        let delta = teeve_pubsub::PlanDelta::diff(&before, &after);

        let duration_micros = 1_000_000u64;
        let config = SimConfig::default().with_duration(SimTime::from_millis(1000));
        let report = simulate_with_replans(&before, &[(SimTime::from_millis(470), delta)], &config);
        // Each receiver gets each captured frame at most once, even with a
        // copy in flight on both the old and the new path at replan time.
        let interval = StreamProfile::default().frame_interval_micros();
        let captures = (duration_micros - 1) / interval + 1;
        let reparented = report.stream_stats(site(2), stream(0, 0)).unwrap();
        assert!(
            reparented.frames() <= captures,
            "duplicate deliveries: {} frames of {captures} captures",
            reparented.frames()
        );
        let ratio = report.delivery_ratio();
        assert!(ratio <= 1.0, "delivery ratio {ratio} exceeds 1.0");
        assert!(ratio > 0.9, "delivery ratio {ratio} unexpectedly low");
    }

    #[test]
    #[should_panic(expected = "sorted by time")]
    fn unsorted_replans_are_rejected() {
        let p = universe();
        let m = OverlayManager::new(p.clone());
        let plan = plan_of(&p, &m);
        let _ = simulate_with_replans(
            &plan,
            &[
                (
                    SimTime::from_millis(100),
                    teeve_pubsub::PlanDelta::default(),
                ),
                (SimTime::from_millis(50), teeve_pubsub::PlanDelta::default()),
            ],
            &SimConfig::short(),
        );
    }
}
