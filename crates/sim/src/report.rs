//! Simulation reports: delivery and latency statistics.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use teeve_pubsub::DisseminationPlan;
use teeve_types::{SiteId, StreamId};

use crate::{SimConfig, SimTime};

/// Latency statistics of one (site, stream) delivery relationship.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct StreamStats {
    frames: u64,
    latency_sum_us: u64,
    latency_max: SimTime,
    /// Arrival time of the most recent frame (for jitter accounting).
    last_arrival: Option<SimTime>,
    /// Sum over consecutive arrivals of `|inter-arrival − frame interval|`.
    jitter_sum_us: u64,
    /// Number of measured inter-arrival gaps (`frames − 1` when all
    /// frames arrived).
    gaps: u64,
}

impl StreamStats {
    /// Returns the number of frames delivered.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Returns the mean end-to-end latency, or zero when nothing arrived.
    pub fn mean_latency(&self) -> SimTime {
        SimTime::from_micros(self.latency_sum_us.checked_div(self.frames).unwrap_or(0))
    }

    /// Returns the worst end-to-end latency.
    pub fn max_latency(&self) -> SimTime {
        self.latency_max
    }

    /// Returns the mean inter-arrival jitter: the average absolute
    /// deviation of consecutive arrival gaps from the nominal frame
    /// interval. Zero for fewer than two frames. A steady overlay path
    /// shows (near-)zero jitter even when its latency is high; queueing
    /// and loss show up here first.
    pub fn mean_jitter(&self) -> SimTime {
        SimTime::from_micros(self.jitter_sum_us.checked_div(self.gaps).unwrap_or(0))
    }
}

/// The result of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    serialization: SimTime,
    render_ms_per_stream: u32,
    frame_interval_us: u64,
    /// Frames captured per overlay-transiting stream.
    frames_per_stream: BTreeMap<StreamId, u64>,
    /// Planned (site, stream) delivery pairs.
    expected: Vec<(SiteId, StreamId)>,
    /// Per-frame expectation counts, used by the replanning simulation
    /// (where the set of planned receivers changes mid-run). Empty for
    /// static runs, which expect `expected × frames_per_stream`.
    expected_frames: BTreeMap<(SiteId, StreamId), u64>,
    stats: BTreeMap<(SiteId, StreamId), StreamStats>,
}

impl SimReport {
    pub(crate) fn new(
        plan: &DisseminationPlan,
        config: &SimConfig,
        serialization: SimTime,
        frames_per_stream: BTreeMap<StreamId, u64>,
    ) -> Self {
        let expected = plan
            .site_plans()
            .iter()
            .flat_map(|sp| {
                sp.received_streams()
                    .map(move |s| (sp.site, s))
                    .collect::<Vec<_>>()
            })
            .collect();
        SimReport {
            serialization,
            render_ms_per_stream: config.render_ms_per_stream,
            frame_interval_us: plan.profile().frame_interval_micros(),
            frames_per_stream,
            expected,
            expected_frames: BTreeMap::new(),
            stats: BTreeMap::new(),
        }
    }

    /// A report for a replanning run: deliveries are expected per frame
    /// (via [`record_expected_frame`](Self::record_expected_frame)) rather
    /// than per planned pair, since the plan changes mid-run.
    pub(crate) fn new_dynamic(
        plan: &DisseminationPlan,
        config: &SimConfig,
        serialization: SimTime,
    ) -> Self {
        SimReport {
            serialization,
            render_ms_per_stream: config.render_ms_per_stream,
            frame_interval_us: plan.profile().frame_interval_micros(),
            frames_per_stream: BTreeMap::new(),
            expected: Vec::new(),
            expected_frames: BTreeMap::new(),
            stats: BTreeMap::new(),
        }
    }

    /// Records that one captured frame was planned to reach `site` under
    /// the plan revision current at capture time.
    pub(crate) fn record_expected_frame(&mut self, site: SiteId, stream: StreamId) {
        *self.expected_frames.entry((site, stream)).or_default() += 1;
    }

    /// Records one captured frame of `stream` (replanning runs).
    pub(crate) fn record_capture(&mut self, stream: StreamId) {
        *self.frames_per_stream.entry(stream).or_default() += 1;
    }

    #[cfg(test)]
    pub(crate) fn record_delivery(&mut self, site: SiteId, stream: StreamId, latency: SimTime) {
        self.record_delivery_at(site, stream, latency, None);
    }

    pub(crate) fn record_delivery_at(
        &mut self,
        site: SiteId,
        stream: StreamId,
        latency: SimTime,
        arrival: Option<SimTime>,
    ) {
        let interval = self.frame_interval_us;
        let entry = self.stats.entry((site, stream)).or_default();
        entry.frames += 1;
        entry.latency_sum_us += latency.as_micros();
        entry.latency_max = entry.latency_max.max(latency);
        if let Some(now) = arrival {
            if let Some(prev) = entry.last_arrival {
                let gap = (now - prev).as_micros();
                entry.jitter_sum_us += gap.abs_diff(interval);
                entry.gaps += 1;
            }
            entry.last_arrival = Some(now);
        }
    }

    /// Returns the per-frame serialization time of this run's profile.
    pub fn serialization_time(&self) -> SimTime {
        self.serialization
    }

    /// Returns the statistics of one (site, stream) pair, if anything was
    /// delivered.
    pub fn stream_stats(&self, site: SiteId, stream: StreamId) -> Option<&StreamStats> {
        self.stats.get(&(site, stream))
    }

    /// Returns the total number of frame deliveries across all sites.
    pub fn total_frames_delivered(&self) -> u64 {
        self.stats.values().map(StreamStats::frames).sum()
    }

    /// Returns delivered frames over expected frames; 1.0 when nothing was
    /// expected. Static runs expect every planned pair to receive every
    /// captured frame of its stream; replanning runs count expectations
    /// per frame under the plan revision current at capture time.
    pub fn delivery_ratio(&self) -> f64 {
        let expected: u64 = if self.expected_frames.is_empty() {
            self.expected
                .iter()
                .map(|(_, s)| self.frames_per_stream.get(s).copied().unwrap_or(0))
                .sum()
        } else {
            self.expected_frames.values().sum()
        };
        if expected == 0 {
            1.0
        } else {
            self.total_frames_delivered() as f64 / expected as f64
        }
    }

    /// Returns the worst mean inter-arrival jitter across all delivery
    /// pairs.
    pub fn worst_jitter(&self) -> SimTime {
        self.stats
            .values()
            .map(StreamStats::mean_jitter)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Returns the worst end-to-end latency of any delivered frame.
    pub fn worst_latency(&self) -> SimTime {
        self.stats
            .values()
            .map(StreamStats::max_latency)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Returns the worst *overlay* latency: end-to-end minus the initial
    /// serialization — the part the construction bound `B_cost` governs
    /// (propagation, relay serializations, forwarding overheads).
    pub fn worst_overlay_latency(&self) -> SimTime {
        let worst = self.worst_latency();
        if worst <= self.serialization {
            SimTime::ZERO
        } else {
            worst - self.serialization
        }
    }

    /// Returns, per site, the number of remote streams it renders.
    pub fn streams_rendered(&self) -> BTreeMap<SiteId, usize> {
        let mut per_site: BTreeMap<SiteId, usize> = BTreeMap::new();
        for (site, _) in self.stats.keys() {
            *per_site.entry(*site).or_default() += 1;
        }
        per_site
    }

    /// Returns the rendering budget utilization of `site`: time to render
    /// one frame of every received stream (at the paper's ≈10 ms/stream)
    /// divided by the frame interval. Above 1.0 the display cannot keep up
    /// with full frame rate — the paper's motivation for limiting the
    /// number of delivered streams.
    pub fn render_utilization(&self, site: SiteId) -> f64 {
        let streams = self.stats.keys().filter(|(s, _)| *s == site).count() as f64;
        let render_us = streams * f64::from(self.render_ms_per_stream) * 1_000.0;
        render_us / self.frame_interval_us as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(i: u32) -> SiteId {
        SiteId::new(i)
    }

    fn stream(origin: u32, q: u32) -> StreamId {
        StreamId::new(site(origin), q)
    }

    fn empty_report() -> SimReport {
        SimReport {
            serialization: SimTime::from_millis(66),
            render_ms_per_stream: 10,
            frame_interval_us: 66_666,
            frames_per_stream: BTreeMap::new(),
            expected: Vec::new(),
            expected_frames: BTreeMap::new(),
            stats: BTreeMap::new(),
        }
    }

    #[test]
    fn stats_accumulate_mean_and_max() {
        let mut r = empty_report();
        r.record_delivery(site(1), stream(0, 0), SimTime::from_millis(10));
        r.record_delivery(site(1), stream(0, 0), SimTime::from_millis(20));
        let s = r.stream_stats(site(1), stream(0, 0)).unwrap();
        assert_eq!(s.frames(), 2);
        assert_eq!(s.mean_latency(), SimTime::from_millis(15));
        assert_eq!(s.max_latency(), SimTime::from_millis(20));
    }

    #[test]
    fn delivery_ratio_counts_expected_pairs() {
        let mut r = empty_report();
        r.frames_per_stream.insert(stream(0, 0), 10);
        r.expected = vec![(site(1), stream(0, 0)), (site(2), stream(0, 0))];
        for _ in 0..10 {
            r.record_delivery(site(1), stream(0, 0), SimTime::from_millis(1));
        }
        // Site 2 got nothing: half the expected frames arrived.
        assert_eq!(r.delivery_ratio(), 0.5);
    }

    #[test]
    fn render_utilization_follows_paper_model() {
        let mut r = empty_report();
        // 7 streams at 10 ms each = 70 ms per 66.666 ms interval: overload.
        for q in 0..7 {
            r.record_delivery(site(0), stream(1, q), SimTime::from_millis(5));
        }
        let util = r.render_utilization(site(0));
        assert!(util > 1.0, "7 streams should exceed the render budget");
        // 3 streams = 30 ms: fits.
        for q in 0..3 {
            r.record_delivery(site(2), stream(1, q), SimTime::from_millis(5));
        }
        assert!(r.render_utilization(site(2)) < 1.0);
    }

    #[test]
    fn worst_overlay_latency_subtracts_serialization() {
        let mut r = empty_report();
        r.record_delivery(site(1), stream(0, 0), SimTime::from_millis(80));
        assert_eq!(r.worst_latency(), SimTime::from_millis(80));
        assert_eq!(r.worst_overlay_latency(), SimTime::from_millis(14));
    }

    #[test]
    fn steady_arrivals_have_zero_jitter() {
        let mut r = empty_report();
        for i in 0..5u64 {
            r.record_delivery_at(
                site(1),
                stream(0, 0),
                SimTime::from_millis(10),
                Some(SimTime::from_micros(i * 66_666)),
            );
        }
        let s = r.stream_stats(site(1), stream(0, 0)).unwrap();
        assert_eq!(s.mean_jitter(), SimTime::ZERO);
        assert_eq!(r.worst_jitter(), SimTime::ZERO);
    }

    #[test]
    fn irregular_arrivals_show_jitter() {
        let mut r = empty_report();
        // Gaps of 66.666 ms then 133.332 ms (a dropped frame's hole).
        for at in [0u64, 66_666, 199_998] {
            r.record_delivery_at(
                site(1),
                stream(0, 0),
                SimTime::from_millis(10),
                Some(SimTime::from_micros(at)),
            );
        }
        let s = r.stream_stats(site(1), stream(0, 0)).unwrap();
        // One perfect gap, one off by a full interval: mean = interval/2.
        assert_eq!(s.mean_jitter(), SimTime::from_micros(66_666 / 2));
    }

    #[test]
    fn jitter_needs_two_frames() {
        let mut r = empty_report();
        r.record_delivery_at(site(1), stream(0, 0), SimTime::ZERO, Some(SimTime::ZERO));
        assert_eq!(
            r.stream_stats(site(1), stream(0, 0)).unwrap().mean_jitter(),
            SimTime::ZERO
        );
    }

    #[test]
    fn empty_report_is_vacuously_complete() {
        let r = empty_report();
        assert_eq!(r.delivery_ratio(), 1.0);
        assert_eq!(r.worst_latency(), SimTime::ZERO);
        assert_eq!(r.worst_overlay_latency(), SimTime::ZERO);
        assert!(r.streams_rendered().is_empty());
    }
}
