//! Simulated time in microseconds.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};
use teeve_types::CostMs;

/// A point in simulated time, in microseconds since session start.
///
/// # Examples
///
/// ```
/// use teeve_sim::SimTime;
///
/// let t = SimTime::from_millis(3) + SimTime::from_micros(500);
/// assert_eq!(t.as_micros(), 3_500);
/// assert_eq!(t.as_millis_f64(), 3.5);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero: session start.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates a time from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Returns the time in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the time in (possibly fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the later of two times.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl From<CostMs> for SimTime {
    fn from(cost: CostMs) -> Self {
        SimTime::from_millis(u64::from(cost.as_millis()))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimTime::from_secs(1).as_micros(), 1_000_000);
        assert_eq!(SimTime::from_micros(1_500).as_millis_f64(), 1.5);
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = SimTime::from_millis(5);
        let b = SimTime::from_millis(3);
        assert_eq!(a - b, SimTime::from_millis(2));
        assert!(b < a);
        assert_eq!(a.max(b), a);
        let mut c = b;
        c += SimTime::from_millis(2);
        assert_eq!(c, a);
    }

    #[test]
    fn cost_conversion() {
        let t: SimTime = CostMs::new(12).into();
        assert_eq!(t, SimTime::from_millis(12));
    }

    #[test]
    fn display_renders_millis() {
        assert_eq!(SimTime::from_micros(1_234).to_string(), "1.234ms");
    }
}
