//! Store error type.

use std::io;

use teeve_types::SessionId;

/// Error produced by the session store.
#[derive(Debug)]
pub enum StoreError {
    /// Reading or appending the log file failed.
    Io(io::Error),
    /// A record could not be serialized (e.g. a non-finite float in a
    /// runtime config; persist finite fallback policies).
    Encode(serde_json::Error),
    /// The session is not in the store.
    UnknownSession(SessionId),
    /// The session id was already opened in this store; ids are never
    /// reused, even after close.
    DuplicateSession(SessionId),
    /// The session was already closed; a closed session accepts no
    /// further commits.
    SessionClosed(SessionId),
    /// Replaying the persisted event history produced a different state
    /// than the commit recorded at write time: the log and the runtime
    /// disagree, so the recovered session cannot be trusted.
    Replay {
        /// The session whose replay diverged.
        session: SessionId,
        /// What diverged.
        detail: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::Encode(e) => write!(f, "store record not serializable: {e}"),
            StoreError::UnknownSession(s) => write!(f, "session {s} is not in the store"),
            StoreError::DuplicateSession(s) => {
                write!(f, "session {s} was already opened in this store")
            }
            StoreError::SessionClosed(s) => write!(f, "session {s} is closed in this store"),
            StoreError::Replay { session, detail } => {
                write!(f, "session {session} replay diverged: {detail}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Encode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<serde_json::Error> for StoreError {
    fn from(e: serde_json::Error) -> Self {
        StoreError::Encode(e)
    }
}
