//! Versioned session-state store: what lets a restarted membership
//! service re-adopt live fleets.
//!
//! The paper's membership server is a single point of failure it never
//! hardens: when it dies, every session's subscription state dies with
//! it, even though the RP overlay keeps forwarding frames. This crate is
//! the durable half of closing that gap (`teeve-net`'s
//! coordinator reconnect is the wire half): a [`SessionStore`] persists,
//! for every hosted session, the admission record (definition + runtime
//! config) and then **every epoch commit** — the events driven plus the
//! per-site demand, granted qualities, quality ladder, and plan revision
//! they produced (an [`EpochCommit`](teeve_runtime::EpochCommit)).
//!
//! The on-disk form is one append-only log of checksummed JSON records
//! (`[u32 le length][u32 le FNV-1a][payload]`); an in-memory index over
//! the log serves reads. [`SessionStore::open`] rebuilds the index from
//! the log and truncates a crash-torn tail — a record either frames and
//! hashes correctly or everything from it on is discarded, so recovery
//! is unambiguous. [`SessionStore::snapshot`] answers "what was this
//! session's state at revision *r*"; [`SessionStore::restore`] hands
//! back a [`RestoredSession`] whose
//! [`replay`](RestoredSession::replay) rebuilds a live
//! [`SessionRuntime`](teeve_runtime::SessionRuntime) by re-driving the
//! persisted event history — epoch reconciliation is deterministic, so
//! the rebuilt plan is bit-identical to an uninterrupted run's, and the
//! persisted state of every commit cross-checks the replay as it goes.
//!
//! # Examples
//!
//! ```
//! use teeve_pubsub::Session;
//! use teeve_runtime::{RuntimeConfig, RuntimeEvent, SessionRuntime};
//! use teeve_store::SessionStore;
//! use teeve_types::{CostMatrix, CostMs, Degree, DisplayId, SessionId, SiteId};
//!
//! let path = std::env::temp_dir().join(format!("teeve-store-doc-{}.log", std::process::id()));
//! let _ = std::fs::remove_file(&path);
//!
//! let costs = CostMatrix::from_fn(4, |i, j| CostMs::new(4 + ((i + j) % 3) as u32));
//! let session = Session::builder(costs)
//!     .cameras_per_site(6)
//!     .displays_per_site(2)
//!     .symmetric_capacity(Degree::new(12))
//!     .build();
//! let id = SessionId::new(0);
//! let config = RuntimeConfig::default();
//!
//! // A service admits the session and drives epochs, committing each.
//! let store = SessionStore::open(&path)?;
//! store.record_opened(id, &session, config)?;
//! let universe = teeve_runtime::subscription_universe(&session)?;
//! let mut runtime = SessionRuntime::new(universe, session, config)?.with_scope(id);
//! for epoch in 0u32..3 {
//!     let events = [RuntimeEvent::Viewpoint {
//!         display: DisplayId::new(SiteId::new(0), 0),
//!         target: SiteId::new(1 + epoch % 3),
//!     }];
//!     let outcome = runtime.apply_epoch(&events);
//!     store.record_commit(id, &outcome.commit)?;
//! }
//! drop(store); // the service dies
//!
//! // A restarted service re-adopts the session from the log alone.
//! let recovered = SessionStore::open(&path)?;
//! assert_eq!(recovered.open_sessions(), vec![id]);
//! let replayed = recovered.restore(id)?.replay()?;
//! assert_eq!(replayed.plan(), runtime.plan(), "bit-identical plans");
//! # std::fs::remove_file(&path).ok();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod log;
mod store;

pub use error::StoreError;
pub use store::{RestoredSession, SessionStore};
