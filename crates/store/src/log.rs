//! On-disk record framing: `[u32 le payload length][u32 le FNV-1a
//! checksum][JSON payload]`, and the scan that recovers a log whose tail
//! was cut or corrupted by a crash.
//!
//! The checksum makes the recovery decision unambiguous: a record either
//! frames *and* hashes correctly — it was fully flushed — or the scan
//! stops and everything from that offset on is truncated away. There is
//! no third state, so a torn write can never resurrect as a half-parsed
//! record.

/// Bytes of framing in front of every payload: length + checksum.
pub(crate) const HEADER_BYTES: usize = 8;

/// Sanity cap on one record's payload. A length prefix beyond this is
/// treated as tail corruption, never allocated.
pub(crate) const MAX_RECORD_BYTES: usize = 64 * 1024 * 1024;

/// 32-bit FNV-1a over the payload.
pub(crate) fn checksum(payload: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &byte in payload {
        hash ^= u32::from(byte);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// Frames one payload for appending: header plus payload.
pub(crate) fn frame(payload: &[u8]) -> Vec<u8> {
    let mut framed = Vec::with_capacity(HEADER_BYTES + payload.len());
    framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    framed.extend_from_slice(&checksum(payload).to_le_bytes());
    framed.extend_from_slice(payload);
    framed
}

/// Returns the payload starting at `offset` and the offset just past it,
/// or `None` when `offset` begins the (possibly empty) truncated tail:
/// an incomplete header, an oversized or understated length, or a
/// checksum mismatch.
pub(crate) fn scan_record(buf: &[u8], offset: usize) -> Option<(&[u8], usize)> {
    let rest = buf.get(offset..)?;
    if rest.len() < HEADER_BYTES {
        return None;
    }
    let length = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
    let expected = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
    if length > MAX_RECORD_BYTES || rest.len() < HEADER_BYTES + length {
        return None;
    }
    let payload = &rest[HEADER_BYTES..HEADER_BYTES + length];
    if checksum(payload) != expected {
        return None;
    }
    Some((payload, offset + HEADER_BYTES + length))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn framed_records_scan_back_in_order() {
        let mut buf = Vec::new();
        for payload in [b"one".as_slice(), b"".as_slice(), b"three".as_slice()] {
            buf.extend_from_slice(&frame(payload));
        }
        let (first, next) = scan_record(&buf, 0).unwrap();
        assert_eq!(first, b"one");
        let (second, next) = scan_record(&buf, next).unwrap();
        assert_eq!(second, b"");
        let (third, next) = scan_record(&buf, next).unwrap();
        assert_eq!(third, b"three");
        assert_eq!(next, buf.len());
        assert_eq!(scan_record(&buf, next), None, "clean end is a tail too");
    }

    #[test]
    fn every_strict_prefix_is_a_tail() {
        let buf = frame(b"payload");
        for cut in 1..buf.len() {
            assert_eq!(scan_record(&buf[..cut], 0), None, "prefix of {cut} bytes");
        }
    }

    #[test]
    fn flipped_payload_bytes_fail_the_checksum() {
        let buf = frame(b"payload");
        for bit in 0..8 {
            let mut corrupt = buf.clone();
            corrupt[HEADER_BYTES] ^= 1 << bit;
            assert_eq!(scan_record(&corrupt, 0), None);
        }
        // The untouched original still scans.
        assert!(scan_record(&buf, 0).is_some());
    }

    #[test]
    fn oversized_lengths_are_tails_not_allocations() {
        let mut buf = ((MAX_RECORD_BYTES + 1) as u32).to_le_bytes().to_vec();
        buf.extend_from_slice(&[0u8; 12]);
        assert_eq!(scan_record(&buf, 0), None);
    }
}
