//! The versioned session store: an in-memory index over an append-only
//! commit log.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use teeve_pubsub::{subscription_universe, Session};
use teeve_runtime::{EpochCommit, RuntimeConfig, SessionRuntime};
use teeve_types::SessionId;

use crate::error::StoreError;
use crate::log::{frame, scan_record};

/// One persisted log record. The log is the store: replaying these in
/// order reproduces the full index, so the on-disk format has no other
/// structure to corrupt.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum LogRecord {
    /// A session was admitted with this definition and runtime config.
    Opened {
        session: SessionId,
        def: Session,
        config: RuntimeConfig,
    },
    /// One epoch committed: the events driven plus the state they
    /// produced (demand, granted qualities, ladder, plan revision).
    Commit {
        session: SessionId,
        commit: EpochCommit,
    },
    /// The session was closed; its history stays readable but accepts
    /// no further commits.
    Closed { session: SessionId },
}

/// Everything the store knows about one session.
#[derive(Debug)]
struct History {
    def: Session,
    config: RuntimeConfig,
    commits: Vec<EpochCommit>,
    closed: bool,
}

#[derive(Debug)]
struct Inner {
    file: File,
    sessions: BTreeMap<SessionId, History>,
    recovered_records: u64,
    truncated_bytes: u64,
}

/// A versioned, snapshot-capable session-state store.
///
/// Every epoch commit of every hosted session is appended to one
/// checksummed log (see [`crate`] docs for the format); an in-memory
/// index over the log answers [`snapshot`](Self::snapshot) and
/// [`restore`](Self::restore) without touching disk. [`open`](Self::open)
/// rebuilds the index from the log, truncating a crash-torn tail, so a
/// restarted service re-adopts exactly the sessions whose state was
/// durably recorded.
///
/// All methods take `&self`; the store serializes appends internally and
/// can be shared behind an `Arc`.
#[derive(Debug)]
pub struct SessionStore {
    path: PathBuf,
    inner: Mutex<Inner>,
}

impl SessionStore {
    /// Opens (or creates) the store at `path`, rebuilding the index from
    /// the log. A tail cut or corrupted by a crash — an incomplete
    /// header, a short payload, a checksum mismatch, or an undecodable
    /// record — is truncated away; everything before it is recovered.
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be opened, read, or (when a
    /// torn tail must go) truncated.
    pub fn open(path: impl AsRef<Path>) -> Result<SessionStore, StoreError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;

        let mut sessions: BTreeMap<SessionId, History> = BTreeMap::new();
        let mut offset = 0usize;
        let mut recovered_records = 0u64;
        while let Some((payload, next)) = scan_record(&buf, offset) {
            // A checksummed record that fails to parse is still a torn
            // tail from the index's point of view: nothing after it can
            // be trusted to apply in order.
            let Some(record) = std::str::from_utf8(payload)
                .ok()
                .and_then(|text| serde_json::from_str::<LogRecord>(text).ok())
            else {
                break;
            };
            apply_record(&mut sessions, record);
            recovered_records += 1;
            offset = next;
        }
        let truncated_bytes = (buf.len() - offset) as u64;
        if truncated_bytes > 0 {
            file.set_len(offset as u64)?;
        }
        file.seek(SeekFrom::Start(offset as u64))?;

        Ok(SessionStore {
            path,
            inner: Mutex::new(Inner {
                file,
                sessions,
                recovered_records,
                truncated_bytes,
            }),
        })
    }

    /// The path of the backing log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records of the existing log that [`open`](Self::open) recovered.
    pub fn recovered_records(&self) -> u64 {
        self.inner.lock().recovered_records
    }

    /// Bytes of torn tail that [`open`](Self::open) truncated away.
    pub fn truncated_bytes(&self) -> u64 {
        self.inner.lock().truncated_bytes
    }

    /// Records the admission of `session` with its definition and
    /// runtime config. Must precede every commit of the session.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::DuplicateSession`] if the id was ever
    /// opened in this store (ids are not reused), or an append error.
    pub fn record_opened(
        &self,
        session: SessionId,
        def: &Session,
        config: RuntimeConfig,
    ) -> Result<(), StoreError> {
        let mut inner = self.inner.lock();
        if inner.sessions.contains_key(&session) {
            return Err(StoreError::DuplicateSession(session));
        }
        append(
            &mut inner.file,
            &LogRecord::Opened {
                session,
                def: def.clone(),
                config,
            },
        )?;
        inner.sessions.insert(
            session,
            History {
                def: def.clone(),
                config,
                commits: Vec::new(),
                closed: false,
            },
        );
        Ok(())
    }

    /// Appends one epoch commit of `session`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::UnknownSession`] before
    /// [`record_opened`](Self::record_opened),
    /// [`StoreError::SessionClosed`] after
    /// [`record_closed`](Self::record_closed), or an append error.
    pub fn record_commit(
        &self,
        session: SessionId,
        commit: &EpochCommit,
    ) -> Result<(), StoreError> {
        let mut inner = self.inner.lock();
        match inner.sessions.get(&session) {
            None => return Err(StoreError::UnknownSession(session)),
            Some(history) if history.closed => return Err(StoreError::SessionClosed(session)),
            Some(_) => {}
        }
        append(
            &mut inner.file,
            &LogRecord::Commit {
                session,
                commit: commit.clone(),
            },
        )?;
        if let Some(history) = inner.sessions.get_mut(&session) {
            history.commits.push(commit.clone());
        }
        Ok(())
    }

    /// Records the close of `session`; its history stays readable but
    /// accepts no further commits, and it is no longer listed by
    /// [`open_sessions`](Self::open_sessions).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::UnknownSession`] if never opened,
    /// [`StoreError::SessionClosed`] if already closed, or an append
    /// error.
    pub fn record_closed(&self, session: SessionId) -> Result<(), StoreError> {
        let mut inner = self.inner.lock();
        match inner.sessions.get(&session) {
            None => return Err(StoreError::UnknownSession(session)),
            Some(history) if history.closed => return Err(StoreError::SessionClosed(session)),
            Some(_) => {}
        }
        append(&mut inner.file, &LogRecord::Closed { session })?;
        if let Some(history) = inner.sessions.get_mut(&session) {
            history.closed = true;
        }
        Ok(())
    }

    /// Every session opened and not yet closed, ascending — the set a
    /// restarted service re-adopts.
    pub fn open_sessions(&self) -> Vec<SessionId> {
        self.inner
            .lock()
            .sessions
            .iter()
            .filter(|(_, h)| !h.closed)
            .map(|(&id, _)| id)
            .collect()
    }

    /// Returns whether `session` was ever opened in this store.
    pub fn contains(&self, session: SessionId) -> bool {
        self.inner.lock().sessions.contains_key(&session)
    }

    /// The highest session id ever opened in this store, closed ones
    /// included — what a recovering service must allocate past, since
    /// ids are never reused.
    pub fn max_session_id(&self) -> Option<SessionId> {
        self.inner.lock().sessions.keys().next_back().copied()
    }

    /// Number of commits recorded for `session`, or `None` if unknown.
    pub fn commit_count(&self, session: SessionId) -> Option<usize> {
        self.inner
            .lock()
            .sessions
            .get(&session)
            .map(|h| h.commits.len())
    }

    /// The plan revision of `session`'s latest commit (0 before any
    /// commit), or `None` if unknown.
    pub fn latest_revision(&self, session: SessionId) -> Option<u64> {
        self.inner
            .lock()
            .sessions
            .get(&session)
            .map(|h| h.commits.last().map(|c| c.revision).unwrap_or(0))
    }

    /// The latest commit of `session` whose plan revision is at most
    /// `revision`, or `None` if the session is unknown or had not
    /// reached any revision `<= revision` yet.
    pub fn snapshot(&self, session: SessionId, revision: u64) -> Option<EpochCommit> {
        let inner = self.inner.lock();
        let history = inner.sessions.get(&session)?;
        history
            .commits
            .iter()
            .rev()
            .find(|c| c.revision <= revision)
            .cloned()
    }

    /// The full persisted history of `session`, ready to
    /// [`replay`](RestoredSession::replay) into a live runtime.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::UnknownSession`] if never opened.
    pub fn restore(&self, session: SessionId) -> Result<RestoredSession, StoreError> {
        self.restore_at(session, u64::MAX)
    }

    /// Like [`restore`](Self::restore), but truncated to the commits
    /// whose plan revision is at most `revision` — the state the
    /// session had at that revision.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::UnknownSession`] if never opened.
    pub fn restore_at(
        &self,
        session: SessionId,
        revision: u64,
    ) -> Result<RestoredSession, StoreError> {
        let inner = self.inner.lock();
        let history = inner
            .sessions
            .get(&session)
            .ok_or(StoreError::UnknownSession(session))?;
        Ok(RestoredSession {
            session,
            def: history.def.clone(),
            config: history.config,
            commits: history
                .commits
                .iter()
                .filter(|c| c.revision <= revision)
                .cloned()
                .collect(),
        })
    }
}

/// Appends one record to the log: frame, write, flush. The index is only
/// updated by callers *after* this succeeds, so a failed append leaves
/// index and log agreeing.
fn append(file: &mut File, record: &LogRecord) -> Result<(), StoreError> {
    let payload = serde_json::to_string(record)?;
    file.write_all(&frame(payload.as_bytes()))?;
    file.flush()?;
    Ok(())
}

/// Folds one recovered record into the index being rebuilt. The log is
/// written through an API that enforces open-before-commit, so records
/// violating it cannot occur in a log this store wrote; recovery skips
/// them rather than guessing.
fn apply_record(sessions: &mut BTreeMap<SessionId, History>, record: LogRecord) {
    match record {
        LogRecord::Opened {
            session,
            def,
            config,
        } => {
            sessions.entry(session).or_insert(History {
                def,
                config,
                commits: Vec::new(),
                closed: false,
            });
        }
        LogRecord::Commit { session, commit } => {
            if let Some(history) = sessions.get_mut(&session) {
                if !history.closed {
                    history.commits.push(commit);
                }
            }
        }
        LogRecord::Closed { session } => {
            if let Some(history) = sessions.get_mut(&session) {
                history.closed = true;
            }
        }
    }
}

/// One session's persisted history, pulled out of a [`SessionStore`] for
/// recovery.
#[derive(Debug, Clone)]
pub struct RestoredSession {
    session: SessionId,
    def: Session,
    config: RuntimeConfig,
    commits: Vec<EpochCommit>,
}

impl RestoredSession {
    /// The session's id (also its delta scope when replayed).
    pub fn session(&self) -> SessionId {
        self.session
    }

    /// The session definition as admitted.
    pub fn definition(&self) -> &Session {
        &self.def
    }

    /// The runtime config as admitted.
    pub fn config(&self) -> RuntimeConfig {
        self.config
    }

    /// The persisted commits, oldest first.
    pub fn commits(&self) -> &[EpochCommit] {
        &self.commits
    }

    /// The plan revision of the last persisted commit (0 if none).
    pub fn revision(&self) -> u64 {
        self.commits.last().map(|c| c.revision).unwrap_or(0)
    }

    /// Rebuilds a live runtime by replaying the persisted event history
    /// through a fresh runtime scoped to the session's id. Epoch
    /// reconciliation is deterministic, so the rebuilt plan is
    /// bit-identical to the one an uninterrupted runtime would hold;
    /// the persisted demand/granted/ladder state of every commit is
    /// cross-checked against the replay as it goes.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Replay`] if the definition no longer
    /// admits a universe or any replayed epoch diverges from its
    /// persisted commit.
    pub fn replay(&self) -> Result<SessionRuntime, StoreError> {
        let mut runtime = self.fresh_runtime()?;
        self.replay_into(&mut runtime)?;
        Ok(runtime)
    }

    /// A fresh epoch-zero runtime for this session (scoped to its id),
    /// ready for [`replay_into`](Self::replay_into) — split out so a
    /// recovering service can attach telemetry before driving history.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Replay`] if the definition no longer
    /// admits a universe or the runtime cannot be assembled.
    pub fn fresh_runtime(&self) -> Result<SessionRuntime, StoreError> {
        let universe = subscription_universe(&self.def).map_err(|e| StoreError::Replay {
            session: self.session,
            detail: format!("definition admits no universe: {e}"),
        })?;
        Ok(SessionRuntime::new(universe, self.def.clone(), self.config)
            .map_err(|e| StoreError::Replay {
                session: self.session,
                detail: format!("runtime assembly failed: {e}"),
            })?
            .with_scope(self.session))
    }

    /// Replays the persisted commits into `runtime` (assumed fresh at
    /// epoch 0), cross-checking every replayed epoch against its
    /// persisted commit — events in, demand/granted/ladder/revision
    /// out.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Replay`] on the first epoch whose replayed
    /// state differs from what was recorded at write time.
    pub fn replay_into(&self, runtime: &mut SessionRuntime) -> Result<(), StoreError> {
        for commit in &self.commits {
            let outcome = runtime.apply_epoch(&commit.events);
            if outcome.commit != *commit {
                return Err(StoreError::Replay {
                    session: self.session,
                    detail: format!(
                        "epoch {} replayed to revision {} but revision {} was persisted, \
                         or its demand/granted/ladder state diverged",
                        commit.epoch, outcome.commit.revision, commit.revision
                    ),
                });
            }
        }
        Ok(())
    }
}
