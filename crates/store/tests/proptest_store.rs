//! Property tests for the session-state store: arbitrary commit
//! histories round-trip through the log bit-for-bit, replay rebuilds the
//! exact plan, and a crash that tears the log's tail — at *any* byte —
//! recovers the longest durable prefix, never garbage.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use teeve_pubsub::Session;
use teeve_runtime::{RuntimeConfig, RuntimeEvent, SessionRuntime};
use teeve_store::SessionStore;
use teeve_types::{CostMatrix, CostMs, Degree, DisplayId, SessionId, SiteId};

/// A collision-free scratch path per test case (no tempfile dependency;
/// the process id + a counter disambiguate).
fn scratch_path() -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let path = std::env::temp_dir().join(format!(
        "teeve-store-proptest-{}-{n}.log",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    path
}

fn session(n: usize) -> Session {
    let costs = CostMatrix::from_fn(n, |i, j| CostMs::new(4 + ((i + j) % 3) as u32));
    Session::builder(costs)
        .cameras_per_site(6)
        .displays_per_site(2)
        .symmetric_capacity(Degree::new(12))
        .build()
}

/// One epoch's event batch over a 4-site session: viewpoint moves and
/// bandwidth samples, the churn a live service actually sees.
fn arb_epoch() -> impl Strategy<Value = Vec<RuntimeEvent>> {
    proptest::collection::vec(
        (0u32..2, (0u32..4, 0u32..2), 0u32..4, 1u32..80).prop_map(
            |(kind, (site, display), target, mbit)| match kind {
                0 => RuntimeEvent::Viewpoint {
                    display: DisplayId::new(SiteId::new(site), display),
                    target: SiteId::new(target),
                },
                _ => RuntimeEvent::BandwidthSample {
                    site: SiteId::new(site),
                    bits_per_sec: f64::from(mbit) * 1e6,
                },
            },
        ),
        0..4usize,
    )
}

/// Drives `epochs` through a fresh runtime, committing every epoch to a
/// new store at `path`. Returns the driven runtime.
fn commit_history(
    path: &std::path::Path,
    id: SessionId,
    epochs: &[Vec<RuntimeEvent>],
) -> SessionRuntime {
    let def = session(4);
    let config = RuntimeConfig::default();
    let store = SessionStore::open(path).expect("open fresh store");
    store.record_opened(id, &def, config).expect("record open");
    let universe = teeve_runtime::subscription_universe(&def).expect("universe");
    let mut runtime = SessionRuntime::new(universe, def, config)
        .expect("runtime")
        .with_scope(id);
    for events in epochs {
        let outcome = runtime.apply_epoch(events);
        store.record_commit(id, &outcome.commit).expect("commit");
    }
    runtime
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any commit history round-trips: a reopened store recovers every
    /// record, truncates nothing, and replays to the exact plan the
    /// original runtime holds — revision, scope, and entries included.
    #[test]
    fn histories_roundtrip_and_replay_bit_identically(epochs in proptest::collection::vec(arb_epoch(), 1..6usize)) {
        let path = scratch_path();
        let id = SessionId::new(7);
        let runtime = commit_history(&path, id, &epochs);

        let recovered = SessionStore::open(&path).expect("reopen");
        prop_assert_eq!(recovered.truncated_bytes(), 0);
        prop_assert_eq!(recovered.recovered_records(), 1 + epochs.len() as u64);
        prop_assert_eq!(recovered.open_sessions(), vec![id]);
        prop_assert_eq!(recovered.commit_count(id), Some(epochs.len()));
        prop_assert_eq!(recovered.latest_revision(id), Some(runtime.plan().revision()));

        let restored = recovered.restore(id).expect("restore");
        let replayed = restored.replay().expect("replay");
        prop_assert_eq!(replayed.plan(), runtime.plan());
        prop_assert_eq!(replayed.epoch(), runtime.epoch());

        std::fs::remove_file(&path).ok();
    }

    /// Cutting the log at any byte — mid-header, mid-payload, or on a
    /// record boundary — recovers exactly the commits whose records
    /// survive whole, and a store written *after* the cut continues the
    /// log cleanly.
    #[test]
    fn any_tail_cut_recovers_the_longest_durable_prefix(
        epochs in proptest::collection::vec(arb_epoch(), 1..5usize),
        cut_fraction in 0.0f64..1.0,
    ) {
        let path = scratch_path();
        let id = SessionId::new(3);
        commit_history(&path, id, &epochs);

        let full = std::fs::read(&path).expect("read log");
        // Cut somewhere strictly inside the file (never empty-cut at 0
        // bytes of loss: that case is the round-trip test above).
        let keep = ((full.len() as f64) * cut_fraction) as usize;
        let keep = keep.min(full.len().saturating_sub(1));
        std::fs::write(&path, &full[..keep]).expect("tear the tail");

        let recovered = SessionStore::open(&path).expect("reopen torn log");
        let commits = recovered.commit_count(id).unwrap_or(0);
        prop_assert!(commits <= epochs.len());
        // Whatever survived is a *prefix*: replay succeeds and lands on
        // the revision of the last surviving commit.
        if recovered.contains(id) {
            let restored = recovered.restore(id).expect("restore");
            prop_assert_eq!(restored.commits().len(), commits);
            let replayed = restored.replay().expect("replay survives the cut");
            prop_assert_eq!(replayed.plan().revision(), restored.revision());
        }
        // The torn bytes are gone from disk: the next append continues
        // a clean log (no interleaved garbage to trip a later open).
        let on_disk = std::fs::metadata(&path).expect("metadata").len();
        prop_assert!(on_disk + recovered.truncated_bytes() == keep as u64);

        std::fs::remove_file(&path).ok();
    }

    /// `snapshot(rev)` answers with the latest commit at or below the
    /// asked revision, for every revision the history passed through.
    #[test]
    fn snapshots_answer_every_intermediate_revision(epochs in proptest::collection::vec(arb_epoch(), 1..6usize)) {
        let path = scratch_path();
        let id = SessionId::new(11);
        commit_history(&path, id, &epochs);

        let store = SessionStore::open(&path).expect("reopen");
        let restored = store.restore(id).expect("restore");
        for commit in restored.commits() {
            let snap = store.snapshot(id, commit.revision).expect("snapshot exists");
            prop_assert_eq!(snap.revision, commit.revision);
            prop_assert_eq!(&snap, commit);
            // And restore_at truncates to the same point.
            let at = store.restore_at(id, commit.revision).expect("restore_at");
            prop_assert_eq!(at.revision(), commit.revision);
        }
        prop_assert!(store.snapshot(id, 0).is_none(), "no commit at revision 0");

        std::fs::remove_file(&path).ok();
    }
}
