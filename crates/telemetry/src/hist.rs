//! The log₂ latency histogram: 65 fixed power-of-two buckets over `u64`,
//! lossless bucket-wise merge, and quantile readout.

use serde::{Deserialize, Serialize};

/// Number of buckets in a [`LogHistogram`].
///
/// Bucket 0 holds the value `0`; bucket `i` (1 ≤ i ≤ 64) holds values in
/// `[2^(i-1), 2^i)`, so bucket 64 covers `[2^63, u64::MAX]`. Every `u64`
/// lands in exactly one bucket, the index being the value's bit width.
pub const BUCKETS: usize = 65;

/// A fixed-bucket log₂ histogram of `u64` samples.
///
/// Buckets are value-independent (power-of-two ranges), so two histograms
/// — from different RP processes, different epochs, different shards —
/// merge losslessly by adding bucket counts: the merge of the parts is
/// bit-for-bit the histogram of the concatenated samples. Quantiles are
/// read as the upper bound of the bucket holding the requested rank,
/// clamped to the observed `[min, max]`, giving at worst a 2× (one
/// bucket) overestimate — tight enough for p50/p90/p99 tail reporting.
///
/// # Examples
///
/// ```
/// use teeve_telemetry::LogHistogram;
///
/// let mut a = LogHistogram::new();
/// let mut b = LogHistogram::new();
/// a.record(100);
/// a.record(3_000);
/// b.record(90_000);
///
/// let mut merged = a.clone();
/// merged.merge(&b);
/// assert_eq!(merged.count(), 3);
/// assert_eq!(merged.sum(), 93_100);
/// assert_eq!(merged.max(), 90_000);
/// assert!(merged.p50() >= 100 && merged.p50() <= 90_000);
/// assert_eq!(merged.p99(), 90_000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogHistogram {
    /// Per-bucket sample counts; always exactly [`BUCKETS`] long.
    buckets: Vec<u64>,
    /// Total number of recorded samples.
    count: u64,
    /// Sum of all recorded samples (saturating).
    sum: u64,
    /// Smallest recorded sample; 0 when empty.
    min: u64,
    /// Largest recorded sample; 0 when empty.
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }

    /// The bucket index a value lands in: its bit width (0 for the
    /// value 0).
    pub fn bucket_index(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// The largest value bucket `index` can hold.
    pub fn bucket_upper(index: usize) -> u64 {
        match index {
            0 => 0,
            i if i >= 64 => u64::MAX,
            i => (1u64 << i) - 1,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Records a duration as whole microseconds.
    pub fn record_duration(&mut self, d: std::time::Duration) {
        self.record(crate::duration_micros(d));
    }

    /// Merges another histogram into this one, bucket-wise. Lossless:
    /// the result equals the histogram of both sample sets combined.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all recorded samples (saturating at `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample; 0 when empty.
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest recorded sample; 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, rounded down; 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The per-bucket counts (always [`BUCKETS`] entries).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// The non-empty buckets as `(index, count)` pairs — the sparse form
    /// carried on the wire.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u8, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i as u8, c))
    }

    /// Rebuilds a histogram from its wire parts: sparse `(index, count)`
    /// pairs plus the exact `sum`/`min`/`max` sidecar. Returns `None`
    /// when any bucket index is out of range — the decoder treats that
    /// as a truncated/corrupt message.
    pub fn from_parts(pairs: &[(u8, u64)], sum: u64, min: u64, max: u64) -> Option<Self> {
        let mut hist = LogHistogram::new();
        for &(index, bucket_count) in pairs {
            let slot = hist.buckets.get_mut(usize::from(index))?;
            *slot += bucket_count;
            hist.count = hist.count.checked_add(bucket_count)?;
        }
        hist.sum = sum;
        if hist.count > 0 {
            hist.min = min;
            hist.max = max;
        }
        Some(hist)
    }

    /// The `q`-quantile (0.0 ≤ q ≤ 1.0) as the upper bound of the bucket
    /// holding that rank, clamped to the observed `[min, max]`; 0 when
    /// empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the requested sample, 1-based: ceil(q * count), at
        // least 1 so q=0 reads the first sample.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &bucket_count) in self.buckets.iter().enumerate() {
            seen += bucket_count;
            if seen >= rank {
                return Self::bucket_upper(index).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median (50th percentile); 0 when empty.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile; 0 when empty.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile; 0 when empty.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_is_the_bit_width() {
        assert_eq!(LogHistogram::bucket_index(0), 0);
        assert_eq!(LogHistogram::bucket_index(1), 1);
        assert_eq!(LogHistogram::bucket_index(2), 2);
        assert_eq!(LogHistogram::bucket_index(3), 2);
        assert_eq!(LogHistogram::bucket_index(4), 3);
        assert_eq!(LogHistogram::bucket_index(u64::MAX), 64);
        for value in [0u64, 1, 2, 3, 7, 8, 1023, 1024, u64::MAX] {
            let index = LogHistogram::bucket_index(value);
            assert!(value <= LogHistogram::bucket_upper(index));
            if index > 0 {
                assert!(value > LogHistogram::bucket_upper(index - 1));
            }
        }
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let hist = LogHistogram::new();
        assert!(hist.is_empty());
        assert_eq!(hist.count(), 0);
        assert_eq!(hist.p50(), 0);
        assert_eq!(hist.p99(), 0);
        assert_eq!(hist.mean(), 0);
    }

    #[test]
    fn quantiles_are_bounded_by_observed_extremes() {
        let mut hist = LogHistogram::new();
        for sample in [5u64, 9, 1_000, 1_000_000] {
            hist.record(sample);
        }
        assert_eq!(hist.min(), 5);
        assert_eq!(hist.max(), 1_000_000);
        // q=0 reads the first sample's bucket upper bound (5 -> 7).
        assert_eq!(hist.quantile(0.0), 7);
        assert_eq!(hist.quantile(1.0), 1_000_000);
        for q in [0.1, 0.5, 0.9, 0.99] {
            let value = hist.quantile(q);
            assert!((5..=1_000_000).contains(&value), "q={q} -> {value}");
        }
        // p50 of {5, 9, 1000, 1000000} is rank 2 -> bucket of 9 -> upper
        // bound 15.
        assert_eq!(hist.p50(), 15);
    }

    #[test]
    fn merge_is_lossless() {
        let samples = [0u64, 1, 17, 300, 300, 65_536, u64::MAX];
        let mut whole = LogHistogram::new();
        for &s in &samples {
            whole.record(s);
        }
        let (left, right) = samples.split_at(3);
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for &s in left {
            a.record(s);
        }
        for &s in right {
            b.record(s);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, whole);
    }

    #[test]
    fn wire_parts_roundtrip() {
        let mut hist = LogHistogram::new();
        for sample in [0u64, 3, 3, 900, 1 << 40] {
            hist.record(sample);
        }
        let pairs: Vec<(u8, u64)> = hist.nonzero_buckets().collect();
        let rebuilt = LogHistogram::from_parts(&pairs, hist.sum(), hist.min(), hist.max()).unwrap();
        assert_eq!(rebuilt, hist);
        assert!(LogHistogram::from_parts(&[(65, 1)], 0, 0, 0).is_none());
    }
}
