//! Observability substrate for the TEEVE reproduction (Wu et al.,
//! ICDCS 2008).
//!
//! The paper's evaluation is distributional — end-to-end latency CDFs,
//! reconvergence times, rejection ratios — so scalar sums and maxima are
//! not enough to reproduce its figures. This crate supplies the three
//! pieces every layer of the workspace reports through:
//!
//! * [`LogHistogram`] — a fixed 65-bucket log₂ histogram of `u64` samples
//!   (microseconds, counts, bytes — anything non-negative). Buckets are
//!   power-of-two ranges, so two histograms merge losslessly by adding
//!   bucket counts, which is what lets a coordinator fold per-RP wire
//!   reports into fleet-wide p50/p90/p99 readouts.
//! * [`MetricsRegistry`] — named atomic [`Counter`]s, [`Gauge`]s, and
//!   shared [`Histogram`]s, snapshotted as a serializable
//!   [`TelemetrySnapshot`].
//! * [`FlightRecorder`] — a bounded ring buffer of recent structured
//!   [`FlightEvent`]s (reconfigures, acks, link changes, poisonings,
//!   rebuild-gate trips), dumped as JSON for postmortems on poisoned
//!   fleets.
//!
//! The crate sits below every other workspace crate: it depends only on
//! the vendored `serde`/`serde_json`/`parking_lot` shims and speaks raw
//! integers (`u32` site indexes, `u64` revisions) rather than
//! `teeve-types` identifiers.
//!
//! # Examples
//!
//! ```
//! use teeve_telemetry::{LogHistogram, MetricsRegistry};
//!
//! let registry = MetricsRegistry::new();
//! registry.counter("frames.delivered").add(3);
//! let latency = registry.histogram("delivery.latency_micros");
//! for sample in [120, 480, 15_000] {
//!     latency.record(sample);
//! }
//!
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.counters["frames.delivered"], 3);
//! let merged: LogHistogram = snapshot.histograms["delivery.latency_micros"].clone();
//! assert_eq!(merged.count(), 3);
//! assert!(merged.p99() >= merged.p50());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;
mod recorder;
mod registry;
mod snapshot;

pub use hist::{LogHistogram, BUCKETS};
pub use recorder::{FlightEvent, FlightEventKind, FlightRecorder};
pub use registry::{Counter, Gauge, Histogram, MetricsRegistry};
pub use snapshot::TelemetrySnapshot;

/// Microseconds since the Unix epoch, for timestamping flight events
/// across process boundaries. Saturates at zero if the clock is before
/// the epoch.
pub fn unix_micros() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_micros().min(u128::from(u64::MAX)) as u64)
        .unwrap_or(0)
}

/// Clamps a [`std::time::Duration`] to whole microseconds in `u64`.
pub fn duration_micros(d: std::time::Duration) -> u64 {
    d.as_micros().min(u128::from(u64::MAX)) as u64
}
