//! Observability substrate for the TEEVE reproduction (Wu et al.,
//! ICDCS 2008).
//!
//! The paper's evaluation is distributional — end-to-end latency CDFs,
//! reconvergence times, rejection ratios — so scalar sums and maxima are
//! not enough to reproduce its figures. This crate supplies the three
//! pieces every layer of the workspace reports through:
//!
//! * [`LogHistogram`] — a fixed 65-bucket log₂ histogram of `u64` samples
//!   (microseconds, counts, bytes — anything non-negative). Buckets are
//!   power-of-two ranges, so two histograms merge losslessly by adding
//!   bucket counts, which is what lets a coordinator fold per-RP wire
//!   reports into fleet-wide p50/p90/p99 readouts.
//! * [`MetricsRegistry`] — named atomic [`Counter`]s, [`Gauge`]s, and
//!   shared [`Histogram`]s, snapshotted as a serializable
//!   [`TelemetrySnapshot`].
//! * [`FlightRecorder`] — a bounded ring buffer of recent structured
//!   [`FlightEvent`]s (reconfigures, acks, link changes, poisonings,
//!   rebuild-gate trips), dumped as JSON for postmortems on poisoned
//!   fleets.
//!
//! The crate sits near the bottom of the workspace: besides the vendored
//! `serde`/`serde_json`/`parking_lot` shims it depends only on
//! `teeve-types` (for the sanctioned [`teeve_types::clock`] wall-clock
//! module), and speaks raw integers (`u32` site indexes, `u64` revisions)
//! rather than `teeve-types` identifiers.
//!
//! # Examples
//!
//! ```
//! use teeve_telemetry::{LogHistogram, MetricsRegistry};
//!
//! let registry = MetricsRegistry::new();
//! registry.counter("frames.delivered").add(3);
//! let latency = registry.histogram("delivery.latency_micros");
//! for sample in [120, 480, 15_000] {
//!     latency.record(sample);
//! }
//!
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.counters["frames.delivered"], 3);
//! let merged: LogHistogram = snapshot.histograms["delivery.latency_micros"].clone();
//! assert_eq!(merged.count(), 3);
//! assert!(merged.p99() >= merged.p50());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;
mod recorder;
mod registry;
mod snapshot;

pub use hist::{LogHistogram, BUCKETS};
pub use recorder::{FlightEvent, FlightEventKind, FlightRecorder};
pub use registry::{Counter, Gauge, Histogram, MetricsRegistry};
pub use snapshot::TelemetrySnapshot;

pub use teeve_types::clock::{duration_micros, unix_micros};
