//! The flight recorder: a bounded ring buffer of recent structured
//! events, for postmortems on poisoned fleets.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// What happened — the structured payload of one [`FlightEvent`].
///
/// Sites and revisions are raw integers so the recorder stays below
/// `teeve-types` in the crate graph; callers pass `SiteId::raw()` /
/// `SessionId::raw()` values.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlightEventKind {
    /// A reconfigure was ordered (coordinator: fan-out size) or applied
    /// (node: `sites == 1`).
    Reconfigure {
        /// The plan revision being installed.
        revision: u64,
        /// How many sites the order fanned out to.
        sites: u64,
    },
    /// A site acknowledged a reconfigure revision.
    Ack {
        /// The acknowledging site.
        site: u32,
        /// The revision acknowledged.
        revision: u64,
    },
    /// A dissemination link came up.
    LinkUp {
        /// The forwarding (parent) side of the link.
        parent: u32,
        /// The receiving (child) side of the link.
        child: u32,
    },
    /// A dissemination link went down.
    LinkDown {
        /// The forwarding (parent) side of the link.
        parent: u32,
        /// The receiving (child) side of the link.
        child: u32,
    },
    /// A reconfigure failed after validation and poisoned the control
    /// plane.
    Poisoned {
        /// The revision whose installation failed.
        revision: u64,
        /// The failure, rendered for humans.
        detail: String,
    },
    /// The runtime's fallback gate forced a full overlay rebuild.
    RebuildGate {
        /// The epoch that tripped the gate.
        epoch: u64,
    },
    /// A stats report was lost — the RP was unreachable at harvest.
    StatsLost {
        /// The site whose report is missing.
        site: u32,
    },
    /// The coordinator control channel was lost. Recorded by an RP when
    /// its control reader dies, and by a coordinator detaching without
    /// shutting the fleet down.
    CoordinatorLost,
    /// A resync round opened: the coordinator queried the fleet, or an
    /// RP answered a `ResyncQuery` while serving its last-applied table.
    ResyncStart,
    /// A resync round closed: every RP replied and the coordinator
    /// re-dictated `revision` as a fresh ack barrier.
    ResyncComplete {
        /// How many sites replied before the barrier was re-dictated.
        sites: u64,
        /// The revision re-dictated as the post-resync barrier.
        revision: u64,
    },
    /// A reactor's event-loop pool started.
    ReactorStart {
        /// Event-loop threads in the pool.
        threads: u64,
    },
    /// A reactor's event-loop pool stopped (all loops joined).
    ReactorStop {
        /// Event-loop threads that were joined.
        threads: u64,
    },
    /// Free-form annotation.
    Note {
        /// The annotation text.
        text: String,
    },
}

/// One recorded event: a sequence number, a wall-clock timestamp, and
/// the structured [`FlightEventKind`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlightEvent {
    /// Position in the recorder's lifetime event stream (0-based,
    /// monotonically increasing even after older events are evicted).
    pub seq: u64,
    /// Microseconds since the Unix epoch when the event was recorded.
    pub at_micros: u64,
    /// What happened.
    pub kind: FlightEventKind,
}

#[derive(Debug)]
struct RecorderInner {
    capacity: usize,
    next_seq: AtomicU64,
    events: Mutex<VecDeque<FlightEvent>>,
}

/// A bounded ring buffer of recent [`FlightEvent`]s.
///
/// Cloning shares the buffer, so one recorder can be handed to a
/// coordinator, its links, and the runtime driving them. When full, the
/// oldest event is evicted; `seq` keeps counting, so a gap between the
/// first retained `seq` and 0 tells a postmortem how much history was
/// dropped.
///
/// # Examples
///
/// ```
/// use teeve_telemetry::{FlightEventKind, FlightRecorder};
///
/// let recorder = FlightRecorder::with_capacity(2);
/// recorder.record(FlightEventKind::Note { text: "a".into() });
/// recorder.record(FlightEventKind::Note { text: "b".into() });
/// recorder.record(FlightEventKind::Poisoned { revision: 9, detail: "ack lost".into() });
/// let events = recorder.events();
/// assert_eq!(events.len(), 2); // "a" was evicted
/// assert_eq!(events[1].seq, 2);
/// assert!(recorder.dump_json().unwrap().contains("ack lost"));
/// ```
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    inner: Arc<RecorderInner>,
}

/// Default ring capacity: enough for the full lifecycle of a small
/// fleet without unbounded growth.
const DEFAULT_CAPACITY: usize = 256;

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder retaining the default number of recent events.
    pub fn new() -> Self {
        Self::default()
    }

    /// A recorder retaining at most `capacity` recent events (at least
    /// one).
    pub fn with_capacity(capacity: usize) -> Self {
        FlightRecorder {
            inner: Arc::new(RecorderInner {
                capacity: capacity.max(1),
                next_seq: AtomicU64::new(0),
                events: Mutex::new(VecDeque::new()),
            }),
        }
    }

    /// Records one event, evicting the oldest if the ring is full.
    pub fn record(&self, kind: FlightEventKind) {
        let seq = self.inner.next_seq.fetch_add(1, Ordering::Relaxed);
        let event = FlightEvent {
            seq,
            at_micros: crate::unix_micros(),
            kind,
        };
        let mut events = self.inner.events.lock();
        if events.len() == self.inner.capacity {
            events.pop_front();
        }
        events.push_back(event);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<FlightEvent> {
        self.inner.events.lock().iter().cloned().collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.inner.events.lock().len()
    }

    /// True when nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.inner.events.lock().is_empty()
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Total events ever recorded, including evicted ones.
    pub fn recorded(&self) -> u64 {
        self.inner.next_seq.load(Ordering::Relaxed)
    }

    /// Dumps the retained events as a JSON array, oldest first.
    ///
    /// # Errors
    ///
    /// Propagates serializer errors (infallible for this data model).
    pub fn dump_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(&self.events())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_keeps_seq() {
        let recorder = FlightRecorder::with_capacity(3);
        for i in 0..5u64 {
            recorder.record(FlightEventKind::Ack {
                site: i as u32,
                revision: i,
            });
        }
        let events = recorder.events();
        assert_eq!(events.len(), 3);
        assert_eq!(recorder.recorded(), 5);
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
    }

    #[test]
    fn dump_roundtrips_through_json() {
        let recorder = FlightRecorder::new();
        recorder.record(FlightEventKind::Reconfigure {
            revision: 3,
            sites: 2,
        });
        recorder.record(FlightEventKind::LinkUp {
            parent: 0,
            child: 1,
        });
        recorder.record(FlightEventKind::Poisoned {
            revision: 4,
            detail: "site 1 went dark".into(),
        });
        let json = recorder.dump_json().unwrap();
        let back: Vec<FlightEvent> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, recorder.events());
        assert!(json.contains("Poisoned"));
        assert!(json.contains("site 1 went dark"));
    }

    #[test]
    fn clones_share_the_ring() {
        let recorder = FlightRecorder::new();
        let clone = recorder.clone();
        clone.record(FlightEventKind::Note { text: "x".into() });
        assert_eq!(recorder.len(), 1);
    }
}
