//! The metrics registry: named counters, gauges, and histograms shared
//! across threads by cheap handle clones.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::hist::LogHistogram;
use crate::snapshot::TelemetrySnapshot;

/// A monotonically increasing named counter.
///
/// Handles are `Arc`-backed: clone freely, update from any thread.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `delta` to the counter.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Adds one to the counter.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A named gauge holding the most recently set value.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrites the gauge.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Raises the gauge to `value` if larger (high-water mark).
    pub fn raise(&self, value: u64) {
        self.0.fetch_max(value, Ordering::Relaxed);
    }

    /// Adds `delta` to the gauge — for level gauges (live connections,
    /// registered nodes) maintained by increments from several threads.
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Subtracts `delta` from the gauge, saturating at zero so a racing
    /// decrement can never wrap a level gauge to 2^64.
    pub fn sub(&self, delta: u64) {
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_sub(delta);
            match self
                .0
                .compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A named shared [`LogHistogram`].
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<Mutex<LogHistogram>>);

impl Histogram {
    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.0.lock().record(value);
    }

    /// Records a duration as whole microseconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.0.lock().record_duration(d);
    }

    /// Merges a whole histogram in (lossless).
    pub fn merge(&self, other: &LogHistogram) {
        self.0.lock().merge(other);
    }

    /// A point-in-time copy of the histogram.
    pub fn snapshot(&self) -> LogHistogram {
        self.0.lock().clone()
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

/// A process-local registry of named metrics.
///
/// Cloning the registry (or any handle it returns) shares the underlying
/// storage, so one registry can be threaded through a runtime, its
/// service, and a socket coordinator, and snapshotted once at the end.
///
/// # Examples
///
/// ```
/// use teeve_telemetry::MetricsRegistry;
///
/// let registry = MetricsRegistry::new();
/// registry.counter("epochs").incr();
/// registry.gauge("sessions.open").set(4);
/// registry.histogram("reconverge_micros").record(1_250);
/// let snapshot = registry.snapshot();
/// assert_eq!(snapshot.counters["epochs"], 1);
/// assert_eq!(snapshot.gauges["sessions.open"], 4);
/// assert_eq!(snapshot.histograms["reconverge_micros"].count(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created empty on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut counters = self.inner.counters.lock();
        if let Some(found) = counters.get(name) {
            return found.clone();
        }
        let created = Counter::default();
        counters.insert(name.to_string(), created.clone());
        created
    }

    /// The gauge named `name`, created at zero on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut gauges = self.inner.gauges.lock();
        if let Some(found) = gauges.get(name) {
            return found.clone();
        }
        let created = Gauge::default();
        gauges.insert(name.to_string(), created.clone());
        created
    }

    /// The histogram named `name`, created empty on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut histograms = self.inner.histograms.lock();
        if let Some(found) = histograms.get(name) {
            return found.clone();
        }
        let created = Histogram::default();
        histograms.insert(name.to_string(), created.clone());
        created
    }

    /// A point-in-time serializable copy of every metric.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            counters: self
                .inner
                .counters
                .lock()
                .iter()
                .map(|(name, c)| (name.clone(), c.get()))
                .collect(),
            gauges: self
                .inner
                .gauges
                .lock()
                .iter()
                .map(|(name, g)| (name.clone(), g.get()))
                .collect(),
            histograms: self
                .inner
                .histograms
                .lock()
                .iter()
                .map(|(name, h)| (name.clone(), h.snapshot()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_storage_across_clones() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("hits");
        let b = registry.clone().counter("hits");
        a.incr();
        b.add(2);
        assert_eq!(registry.counter("hits").get(), 3);
    }

    #[test]
    fn gauges_hold_last_and_high_water() {
        let registry = MetricsRegistry::new();
        let g = registry.gauge("depth");
        g.set(7);
        g.raise(3);
        assert_eq!(g.get(), 7);
        g.raise(11);
        assert_eq!(g.get(), 11);
    }

    #[test]
    fn level_gauges_add_and_saturate_on_sub() {
        let registry = MetricsRegistry::new();
        let g = registry.gauge("conns.live");
        g.add(3);
        g.sub(1);
        assert_eq!(g.get(), 2);
        g.sub(10);
        assert_eq!(g.get(), 0, "level gauge saturates instead of wrapping");
    }

    #[test]
    fn snapshot_captures_all_kinds() {
        let registry = MetricsRegistry::new();
        registry.counter("c").add(5);
        registry.gauge("g").set(2);
        registry.histogram("h").record(1024);
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counters["c"], 5);
        assert_eq!(snapshot.gauges["g"], 2);
        assert_eq!(snapshot.histograms["h"].max(), 1024);
        let json = snapshot.to_json().unwrap();
        assert!(json.contains("\"c\""));
    }
}
