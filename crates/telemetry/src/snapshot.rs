//! Serializable point-in-time copies of a [`MetricsRegistry`].
//!
//! [`MetricsRegistry`]: crate::MetricsRegistry

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::hist::LogHistogram;

/// Everything a [`MetricsRegistry`](crate::MetricsRegistry) held at one
/// instant, in serializable form.
///
/// Snapshots from different processes merge the same way the live
/// metrics do: counters add, gauges take the max, histograms merge
/// bucket-wise.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram contents by name.
    pub histograms: BTreeMap<String, LogHistogram>,
}

impl TelemetrySnapshot {
    /// Folds another snapshot in: counters add, gauges keep the max,
    /// histograms merge losslessly.
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_default() += value;
        }
        for (name, value) in &other.gauges {
            let slot = self.gauges.entry(name.clone()).or_default();
            *slot = (*slot).max(*value);
        }
        for (name, hist) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(hist);
        }
    }

    /// Renders the snapshot as a JSON string.
    ///
    /// # Errors
    ///
    /// Propagates serializer errors (infallible for this data model).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshots_roundtrip_through_json() {
        let mut hist = LogHistogram::new();
        hist.record(7);
        hist.record(4_096);
        let mut snapshot = TelemetrySnapshot::default();
        snapshot.counters.insert("acks".into(), 12);
        snapshot.gauges.insert("links".into(), 3);
        snapshot.histograms.insert("rtt".into(), hist);
        let json = snapshot.to_json().unwrap();
        let back: TelemetrySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snapshot);
    }

    #[test]
    fn merge_folds_each_kind_properly() {
        let mut left = TelemetrySnapshot::default();
        left.counters.insert("n".into(), 2);
        left.gauges.insert("g".into(), 9);
        let mut left_h = LogHistogram::new();
        left_h.record(10);
        left.histograms.insert("h".into(), left_h);

        let mut right = TelemetrySnapshot::default();
        right.counters.insert("n".into(), 3);
        right.gauges.insert("g".into(), 4);
        let mut right_h = LogHistogram::new();
        right_h.record(1_000);
        right.histograms.insert("h".into(), right_h);

        left.merge(&right);
        assert_eq!(left.counters["n"], 5);
        assert_eq!(left.gauges["g"], 9);
        assert_eq!(left.histograms["h"].count(), 2);
        assert_eq!(left.histograms["h"].max(), 1_000);
    }
}
