//! Property tests for [`LogHistogram`]: the algebraic invariants the
//! fleet-wide merge path depends on — merge associativity and
//! commutativity, count conservation, bucket monotonicity of quantiles,
//! and quantile bounds.

use proptest::prelude::*;
use teeve_telemetry::{LogHistogram, BUCKETS};

fn hist_of(samples: &[u64]) -> LogHistogram {
    let mut hist = LogHistogram::new();
    for &s in samples {
        hist.record(s);
    }
    hist
}

/// One sample drawn from a mixed distribution: small values, full-range
/// values, and the exact extremes, so every bucket region is exercised —
/// including bucket 0 and bucket 64.
fn mix(mode: u64, raw: u64) -> u64 {
    match mode {
        0 => raw % 1024,
        1 => raw,
        2 => 0,
        _ => u64::MAX,
    }
}

fn arb_samples() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec((0u64..4, any::<u64>()), 0..64usize).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(mode, raw)| mix(mode, raw))
            .collect()
    })
}

fn arb_nonempty_samples() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec((0u64..4, any::<u64>()), 1..64usize).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(mode, raw)| mix(mode, raw))
            .collect()
    })
}

proptest! {
    /// Merging the parts equals recording the whole: the histogram of a
    /// concatenated sample set is bit-for-bit the merge of its pieces,
    /// wherever the split falls.
    #[test]
    fn merge_is_lossless_over_any_split(samples in arb_samples(), split in 0usize..64) {
        let split = split.min(samples.len());
        let (left, right) = samples.split_at(split);
        let mut merged = hist_of(left);
        merged.merge(&hist_of(right));
        prop_assert_eq!(merged, hist_of(&samples));
    }

    /// Merge is commutative: a⊕b = b⊕a.
    #[test]
    fn merge_commutes(a in arb_samples(), b in arb_samples()) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    /// Merge is associative: (a⊕b)⊕c = a⊕(b⊕c).
    #[test]
    fn merge_associates(a in arb_samples(), b in arb_samples(), c in arb_samples()) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// Count conservation: the total sample count always equals the sum
    /// of the bucket counts, and every sample lands in exactly one
    /// bucket.
    #[test]
    fn counts_are_conserved(samples in arb_samples()) {
        let hist = hist_of(&samples);
        prop_assert_eq!(hist.count(), samples.len() as u64);
        prop_assert_eq!(hist.buckets().iter().sum::<u64>(), hist.count());
        prop_assert_eq!(hist.buckets().len(), BUCKETS);
        let sparse: u64 = hist.nonzero_buckets().map(|(_, c)| c).sum();
        prop_assert_eq!(sparse, hist.count());
    }

    /// Quantiles are monotone in q and respect bucket boundaries: each
    /// reported quantile is a bucket upper bound clamped to [min, max].
    #[test]
    fn quantiles_are_monotone_and_bucket_aligned(samples in arb_nonempty_samples()) {
        let hist = hist_of(&samples);
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        let reads: Vec<u64> = qs.iter().map(|&q| hist.quantile(q)).collect();
        for pair in reads.windows(2) {
            prop_assert!(pair[0] <= pair[1], "quantiles must be monotone: {reads:?}");
        }
        for &value in &reads {
            let aligned = value == hist.min()
                || value == hist.max()
                || (0..BUCKETS).any(|i| LogHistogram::bucket_upper(i) == value);
            prop_assert!(aligned, "quantile {value} is not bucket-aligned");
        }
    }

    /// Quantile bounds: every quantile lies within the observed
    /// [min, max], and within one bucket (2x) of a true order-statistic.
    #[test]
    fn quantiles_are_bounded(samples in arb_nonempty_samples(), q in 0.0f64..1.0) {
        let hist = hist_of(&samples);
        let value = hist.quantile(q);
        prop_assert!(value >= hist.min(), "{value} < min {}", hist.min());
        prop_assert!(value <= hist.max(), "{value} > max {}", hist.max());

        // The true order statistic for this rank sits in the same
        // bucket, so the histogram read is within a factor of two.
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let exact = sorted[rank - 1];
        prop_assert!(value >= exact, "read {value} below exact {exact}");
        prop_assert!(
            LogHistogram::bucket_index(value.max(1)) >= LogHistogram::bucket_index(exact),
            "read {value} in an earlier bucket than exact {exact}"
        );
    }

    /// The sparse wire form reconstructs the histogram exactly.
    #[test]
    fn wire_parts_roundtrip(samples in arb_samples()) {
        let hist = hist_of(&samples);
        let pairs: Vec<(u8, u64)> = hist.nonzero_buckets().collect();
        let rebuilt = LogHistogram::from_parts(&pairs, hist.sum(), hist.min(), hist.max());
        prop_assert_eq!(rebuilt, Some(hist));
    }
}
