//! The embedded 48-PoP backbone dataset (Mapnet substitute).
//!
//! The CAIDA Mapnet dataset used by the paper (real ISP backbone PoPs and
//! links with geographic coordinates) is no longer distributable, so we
//! embed an equivalent: 48 real PoP cities — the Abilene/Internet2 core plus
//! major commercial backbone and international exchange points — connected
//! with a realistic mesh of regional links and long-haul/submarine chords.
//! Coordinates are public geographic facts; link costs are derived from
//! great-circle distance exactly as the paper derives Mapnet edge costs.

use crate::{GeoPoint, LatencyModel, Topology};

/// Number of PoP cities in the embedded backbone.
pub const BACKBONE_CITY_COUNT: usize = 48;

/// `(name, latitude, longitude)` for each backbone PoP.
const CITIES: [(&str, f64, f64); BACKBONE_CITY_COUNT] = [
    ("Seattle", 47.61, -122.33),        // 0
    ("Portland", 45.52, -122.68),       // 1
    ("Sunnyvale", 37.37, -122.04),      // 2
    ("Sacramento", 38.58, -121.49),     // 3
    ("Los Angeles", 34.05, -118.24),    // 4
    ("San Diego", 32.72, -117.16),      // 5
    ("Las Vegas", 36.17, -115.14),      // 6
    ("Phoenix", 33.45, -112.07),        // 7
    ("Salt Lake City", 40.76, -111.89), // 8
    ("Albuquerque", 35.08, -106.65),    // 9
    ("El Paso", 31.76, -106.49),        // 10
    ("Denver", 39.74, -104.99),         // 11
    ("Dallas", 32.78, -96.80),          // 12
    ("Tulsa", 36.15, -95.99),           // 13
    ("Houston", 29.76, -95.37),         // 14
    ("Kansas City", 39.10, -94.58),     // 15
    ("Minneapolis", 44.98, -93.27),     // 16
    ("Baton Rouge", 30.45, -91.19),     // 17
    ("St. Louis", 38.63, -90.20),       // 18
    ("New Orleans", 29.95, -90.07),     // 19
    ("Memphis", 35.15, -90.05),         // 20
    ("Chicago", 41.88, -87.63),         // 21
    ("Nashville", 36.16, -86.78),       // 22
    ("Indianapolis", 39.77, -86.16),    // 23
    ("Atlanta", 33.75, -84.39),         // 24
    ("Detroit", 42.33, -83.05),         // 25
    ("Jacksonville", 30.33, -81.66),    // 26
    ("Cleveland", 41.50, -81.69),       // 27
    ("Miami", 25.76, -80.19),           // 28
    ("Pittsburgh", 40.44, -79.99),      // 29
    ("Toronto", 43.65, -79.38),         // 30
    ("Buffalo", 42.89, -78.88),         // 31
    ("Raleigh", 35.78, -78.64),         // 32
    ("Washington DC", 38.91, -77.04),   // 33
    ("Philadelphia", 39.95, -75.17),    // 34
    ("New York", 40.71, -74.01),        // 35
    ("Montreal", 45.50, -73.57),        // 36
    ("Boston", 42.36, -71.06),          // 37
    ("Vancouver", 49.28, -123.12),      // 38
    ("London", 51.51, -0.13),           // 39
    ("Amsterdam", 52.37, 4.90),         // 40
    ("Frankfurt", 50.11, 8.68),         // 41
    ("Paris", 48.86, 2.35),             // 42
    ("Geneva", 46.20, 6.14),            // 43
    ("Tokyo", 35.68, 139.69),           // 44
    ("Seoul", 37.57, 126.98),           // 45
    ("Hong Kong", 22.32, 114.17),       // 46
    ("Sydney", -33.87, 151.21),         // 47
];

/// Undirected backbone links as index pairs into [`CITIES`].
///
/// The pattern mirrors real topologies: an Abilene-like national core,
/// regional access rings, trans-Atlantic and trans-Pacific submarine cables,
/// and a small European/Asian mesh.
const LINKS: [(usize, usize); 65] = [
    // Pacific Northwest.
    (0, 1),  // Seattle - Portland
    (0, 38), // Seattle - Vancouver
    (0, 2),  // Seattle - Sunnyvale
    (0, 11), // Seattle - Denver (Abilene long-haul)
    (1, 2),  // Portland - Sunnyvale
    // California and the Southwest.
    (2, 3),   // Sunnyvale - Sacramento
    (2, 4),   // Sunnyvale - Los Angeles
    (2, 11),  // Sunnyvale - Denver
    (3, 8),   // Sacramento - Salt Lake City
    (4, 5),   // Los Angeles - San Diego
    (4, 7),   // Los Angeles - Phoenix
    (4, 6),   // Los Angeles - Las Vegas
    (4, 14),  // Los Angeles - Houston (southern long-haul)
    (5, 7),   // San Diego - Phoenix
    (6, 8),   // Las Vegas - Salt Lake City
    (7, 9),   // Phoenix - Albuquerque
    (7, 10),  // Phoenix - El Paso
    (8, 11),  // Salt Lake City - Denver
    (9, 10),  // Albuquerque - El Paso
    (9, 11),  // Albuquerque - Denver
    (10, 12), // El Paso - Dallas
    // Texas and the South.
    (12, 14), // Dallas - Houston
    (12, 13), // Dallas - Tulsa
    (12, 20), // Dallas - Memphis
    (14, 19), // Houston - New Orleans
    (14, 17), // Houston - Baton Rouge
    (17, 19), // Baton Rouge - New Orleans
    (19, 24), // New Orleans - Atlanta
    // Plains and Midwest.
    (11, 15), // Denver - Kansas City (Abilene)
    (13, 15), // Tulsa - Kansas City
    (13, 18), // Tulsa - St. Louis
    (15, 16), // Kansas City - Minneapolis
    (15, 18), // Kansas City - St. Louis
    (15, 21), // Kansas City - Chicago
    (16, 21), // Minneapolis - Chicago
    (18, 23), // St. Louis - Indianapolis
    (18, 20), // St. Louis - Memphis
    (20, 22), // Memphis - Nashville
    (21, 23), // Chicago - Indianapolis
    (21, 25), // Chicago - Detroit
    (21, 27), // Chicago - Cleveland
    (21, 35), // Chicago - New York (Abilene long-haul)
    (22, 23), // Nashville - Indianapolis
    (22, 24), // Nashville - Atlanta
    // Southeast.
    (24, 26), // Atlanta - Jacksonville
    (24, 32), // Atlanta - Raleigh
    (24, 33), // Atlanta - Washington DC
    (26, 28), // Jacksonville - Miami
    // Northeast and eastern Canada.
    (25, 30), // Detroit - Toronto
    (27, 25), // Cleveland - Detroit
    (27, 29), // Cleveland - Pittsburgh
    (27, 31), // Cleveland - Buffalo
    (29, 34), // Pittsburgh - Philadelphia
    (29, 33), // Pittsburgh - Washington DC
    (30, 31), // Toronto - Buffalo
    (30, 36), // Toronto - Montreal
    (32, 33), // Raleigh - Washington DC
    (33, 35), // Washington DC - New York
    (34, 35), // Philadelphia - New York
    (35, 37), // New York - Boston
    (36, 37), // Montreal - Boston
    // Trans-Atlantic, Europe.
    (35, 39), // New York - London (submarine)
    (39, 40), // London - Amsterdam
    (39, 42), // London - Paris
    (40, 41), // Amsterdam - Frankfurt
];

/// Additional links appended to [`LINKS`] (kept separate only to document
/// their role): the European ring closure and the trans-Pacific mesh.
const EXTRA_LINKS: [(usize, usize); 7] = [
    (41, 43), // Frankfurt - Geneva
    (42, 43), // Paris - Geneva
    (2, 44),  // Sunnyvale - Tokyo (trans-Pacific submarine)
    (44, 45), // Tokyo - Seoul
    (44, 46), // Tokyo - Hong Kong
    (46, 47), // Hong Kong - Sydney
    (47, 4),  // Sydney - Los Angeles (southern trans-Pacific)
];

/// Returns the embedded 48-city backbone with the default latency model.
///
/// The graph is connected; pairwise RP costs are obtained with
/// [`Topology::all_pairs_shortest_paths`] or, for a random 3DTI session,
/// [`Topology::sample_session`].
///
/// # Examples
///
/// ```
/// use teeve_topology::{backbone, BACKBONE_CITY_COUNT};
///
/// let topo = backbone();
/// assert_eq!(topo.node_count(), BACKBONE_CITY_COUNT);
/// assert!(topo.is_connected());
/// ```
pub fn backbone() -> Topology {
    backbone_with_model(LatencyModel::default())
}

/// Returns the embedded backbone with a custom latency model.
pub fn backbone_with_model(model: LatencyModel) -> Topology {
    let nodes = CITIES
        .iter()
        .map(|&(name, lat, lon)| (name.to_string(), GeoPoint::new(lat, lon)))
        .collect();
    let edges: Vec<(usize, usize)> = LINKS.iter().chain(EXTRA_LINKS.iter()).copied().collect();
    Topology::from_geo(nodes, &edges, model).expect("embedded backbone dataset is well-formed")
}

/// Number of North-American PoPs in the embedded backbone (the US cities
/// plus Toronto, Montreal, and Vancouver — indices `0..39`).
pub const NORTH_AMERICA_CITY_COUNT: usize = 39;

/// Returns the North-American subset of the backbone: the Internet2-like
/// continental network the paper's own deployment ran on.
///
/// The evaluation figures sample their 3–20 site sessions from this subset
/// so that the 100 ms interactivity bound is geographically satisfiable —
/// a session mixing, say, Sydney and London could never meet it regardless
/// of the overlay, which would drown the algorithm comparison in
/// infeasible pairs.
///
/// # Examples
///
/// ```
/// use teeve_topology::{backbone_north_america, NORTH_AMERICA_CITY_COUNT};
///
/// let topo = backbone_north_america();
/// assert_eq!(topo.node_count(), NORTH_AMERICA_CITY_COUNT);
/// assert!(topo.is_connected());
/// ```
pub fn backbone_north_america() -> Topology {
    backbone_north_america_with_model(LatencyModel::default())
}

/// Returns the North-American backbone subset with a custom latency model.
pub fn backbone_north_america_with_model(model: LatencyModel) -> Topology {
    let nodes = CITIES[..NORTH_AMERICA_CITY_COUNT]
        .iter()
        .map(|&(name, lat, lon)| (name.to_string(), GeoPoint::new(lat, lon)))
        .collect();
    let edges: Vec<(usize, usize)> = LINKS
        .iter()
        .chain(EXTRA_LINKS.iter())
        .copied()
        .filter(|&(a, b)| a < NORTH_AMERICA_CITY_COUNT && b < NORTH_AMERICA_CITY_COUNT)
        .collect();
    Topology::from_geo(nodes, &edges, model).expect("embedded backbone dataset is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use teeve_types::CostMs;

    #[test]
    fn backbone_is_connected() {
        assert!(backbone().is_connected());
    }

    #[test]
    fn backbone_has_expected_shape() {
        let topo = backbone();
        assert_eq!(topo.node_count(), BACKBONE_CITY_COUNT);
        assert_eq!(topo.edge_count(), LINKS.len() + EXTRA_LINKS.len());
    }

    #[test]
    fn every_city_has_at_least_one_link() {
        let topo = backbone();
        let mut degree = vec![0usize; topo.node_count()];
        for (a, b, _) in topo.edges() {
            degree[a] += 1;
            degree[b] += 1;
        }
        for (i, &d) in degree.iter().enumerate() {
            assert!(d >= 1, "city {} ({}) has no links", i, topo.name(i));
        }
    }

    #[test]
    fn no_duplicate_links() {
        let topo = backbone();
        let mut seen = std::collections::HashSet::new();
        for (a, b, _) in topo.edges() {
            assert!(seen.insert((a, b)), "duplicate link ({a}, {b})");
        }
    }

    #[test]
    fn costs_are_geographically_plausible() {
        let topo = backbone();
        let apsp = topo.all_pairs_shortest_paths();
        let find = |name: &str| {
            (0..topo.node_count())
                .find(|&i| topo.name(i) == name)
                .expect("city present")
        };
        // Chicago-New York: ~1150 km direct link -> below 15 ms.
        let chi_ny = apsp.cost_idx(find("Chicago"), find("New York"));
        assert!(chi_ny <= CostMs::new(15), "Chicago-NY was {chi_ny}");
        // Seattle-Miami spans the continent: at least 25 ms.
        let sea_mia = apsp.cost_idx(find("Seattle"), find("Miami"));
        assert!(sea_mia >= CostMs::new(25), "Seattle-Miami was {sea_mia}");
        // Tokyo-London is intercontinental: strictly more than coast-to-coast.
        let tok_lon = apsp.cost_idx(find("Tokyo"), find("London"));
        assert!(tok_lon > sea_mia, "Tokyo-London was {tok_lon}");
    }

    #[test]
    fn paper_scale_sessions_sample_cleanly() {
        let topo = backbone();
        let mut rng = ChaCha8Rng::seed_from_u64(2008);
        for n in 3..=10 {
            let session = topo.sample_session(n, &mut rng).expect("sampling works");
            assert_eq!(session.costs.len(), n);
            assert!(session.costs.max_cost() < CostMs::MAX);
        }
    }

    #[test]
    fn apsp_is_metric() {
        assert!(backbone().all_pairs_shortest_paths().is_metric());
    }
}
