//! Seeded Waxman random topology generation for sensitivity experiments.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{GeoPoint, LatencyModel, Topology};

/// Configuration for the Waxman random-graph generator.
///
/// Nodes are placed uniformly in a `side_km × side_km` region (mapped onto a
/// small geographic patch so costs go through the same latency model as the
/// embedded backbone); each pair is connected with probability
/// `alpha * exp(-d / (beta * L))` where `d` is the pair distance and `L` the
/// maximum possible distance. A nearest-previous-neighbor spanning edge per
/// node guarantees connectivity regardless of the draw.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use teeve_topology::WaxmanConfig;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
/// let topo = WaxmanConfig::default().generate(30, &mut rng);
/// assert_eq!(topo.node_count(), 30);
/// assert!(topo.is_connected());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WaxmanConfig {
    /// Probability scale factor (`alpha` in Waxman's model), in `(0, 1]`.
    pub alpha: f64,
    /// Distance decay factor (`beta`), in `(0, 1]`; larger values produce
    /// more long links.
    pub beta: f64,
    /// Side of the square placement region, in kilometers.
    pub side_km: f64,
    /// Latency model used to convert link distance into edge cost.
    pub latency: LatencyModel,
}

impl WaxmanConfig {
    /// Creates a Waxman configuration.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` or `beta` is outside `(0, 1]` or `side_km` is not
    /// positive.
    pub fn new(alpha: f64, beta: f64, side_km: f64, latency: LatencyModel) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        assert!(beta > 0.0 && beta <= 1.0, "beta must be in (0, 1]");
        assert!(side_km > 0.0, "side_km must be positive");
        WaxmanConfig {
            alpha,
            beta,
            side_km,
            latency,
        }
    }

    /// Generates a connected random topology with `n` nodes.
    ///
    /// Determinism: the same `(config, n, rng seed)` triple always produces
    /// the same topology.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Topology {
        assert!(n > 0, "cannot generate an empty topology");
        // Place nodes in a patch centered on (40 N, -100 W); one degree of
        // latitude is ~111 km, and longitude is scaled by cos(40°) so that
        // euclidean-degree distance approximates the intended km distance.
        let deg_span_lat = self.side_km / 111.0;
        let deg_span_lon = self.side_km / (111.0 * 40f64.to_radians().cos());
        let mut positions_km: Vec<(f64, f64)> = Vec::with_capacity(n);
        let mut nodes = Vec::with_capacity(n);
        for i in 0..n {
            let fx: f64 = rng.gen();
            let fy: f64 = rng.gen();
            positions_km.push((fx * self.side_km, fy * self.side_km));
            let lat = 40.0 - deg_span_lat / 2.0 + fy * deg_span_lat;
            let lon = -100.0 - deg_span_lon / 2.0 + fx * deg_span_lon;
            nodes.push((format!("W{i}"), GeoPoint::new(lat, lon)));
        }

        let dist = |a: usize, b: usize| -> f64 {
            let (ax, ay) = positions_km[a];
            let (bx, by) = positions_km[b];
            ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
        };
        let max_dist = self.side_km * std::f64::consts::SQRT_2;

        let mut edges = Vec::new();
        // Connectivity backbone: each node links to its nearest predecessor.
        for i in 1..n {
            let nearest = (0..i)
                .min_by(|&a, &b| dist(i, a).partial_cmp(&dist(i, b)).expect("finite"))
                .expect("at least one predecessor");
            edges.push((nearest, i));
        }
        // Waxman extras.
        for i in 0..n {
            for j in (i + 1)..n {
                if edges.contains(&(i, j)) {
                    continue;
                }
                let p = self.alpha * (-dist(i, j) / (self.beta * max_dist)).exp();
                if rng.gen_bool(p.clamp(0.0, 1.0)) {
                    edges.push((i, j));
                }
            }
        }

        Topology::from_geo(nodes, &edges, self.latency)
            .expect("generated edges reference valid nodes")
    }
}

impl Default for WaxmanConfig {
    /// `alpha = 0.4`, `beta = 0.25`, a 4000 km region (continental scale),
    /// default latency model.
    fn default() -> Self {
        WaxmanConfig {
            alpha: 0.4,
            beta: 0.25,
            side_km: 4000.0,
            latency: LatencyModel::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn generated_topologies_are_connected() {
        for seed in 0..5 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let topo = WaxmanConfig::default().generate(25, &mut rng);
            assert!(topo.is_connected(), "seed {seed} produced disconnection");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = WaxmanConfig::default();
        let a = cfg.generate(20, &mut ChaCha8Rng::seed_from_u64(3));
        let b = cfg.generate(20, &mut ChaCha8Rng::seed_from_u64(3));
        assert_eq!(a, b);
    }

    #[test]
    fn node_count_is_respected() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        for n in [1usize, 2, 10, 40] {
            let topo = WaxmanConfig::default().generate(n, &mut rng);
            assert_eq!(topo.node_count(), n);
        }
    }

    #[test]
    fn higher_beta_produces_denser_graphs() {
        let sparse_cfg = WaxmanConfig::new(0.4, 0.05, 4000.0, LatencyModel::default());
        let dense_cfg = WaxmanConfig::new(0.9, 0.9, 4000.0, LatencyModel::default());
        let mut total_sparse = 0;
        let mut total_dense = 0;
        for seed in 0..5 {
            total_sparse += sparse_cfg
                .generate(30, &mut ChaCha8Rng::seed_from_u64(seed))
                .edge_count();
            total_dense += dense_cfg
                .generate(30, &mut ChaCha8Rng::seed_from_u64(seed))
                .edge_count();
        }
        assert!(
            total_dense > total_sparse,
            "dense {total_dense} vs sparse {total_sparse}"
        );
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_invalid_alpha() {
        let _ = WaxmanConfig::new(0.0, 0.5, 1000.0, LatencyModel::default());
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn rejects_zero_nodes() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let _ = WaxmanConfig::default().generate(0, &mut rng);
    }
}
