//! Geographic coordinates and great-circle distance.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Mean Earth radius in kilometers (IUGG value).
const EARTH_RADIUS_KM: f64 = 6371.0;

/// A point on the Earth's surface in decimal degrees.
///
/// # Examples
///
/// ```
/// use teeve_topology::GeoPoint;
///
/// let urbana = GeoPoint::new(40.11, -88.21);
/// let berkeley = GeoPoint::new(37.87, -122.27);
/// let km = urbana.distance_km(berkeley);
/// // Urbana–Berkeley is roughly 2960 km as the crow flies.
/// assert!((2900.0..3050.0).contains(&km), "distance was {km}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct GeoPoint {
    lat_deg: f64,
    lon_deg: f64,
}

impl GeoPoint {
    /// Creates a point at the given latitude and longitude in decimal
    /// degrees (positive = north/east).
    ///
    /// # Panics
    ///
    /// Panics if the latitude is outside `[-90, 90]` or the longitude is
    /// outside `[-180, 180]`.
    pub fn new(lat_deg: f64, lon_deg: f64) -> Self {
        assert!(
            (-90.0..=90.0).contains(&lat_deg),
            "latitude {lat_deg} out of range [-90, 90]"
        );
        assert!(
            (-180.0..=180.0).contains(&lon_deg),
            "longitude {lon_deg} out of range [-180, 180]"
        );
        GeoPoint { lat_deg, lon_deg }
    }

    /// Returns the latitude in decimal degrees.
    pub fn lat_deg(self) -> f64 {
        self.lat_deg
    }

    /// Returns the longitude in decimal degrees.
    pub fn lon_deg(self) -> f64 {
        self.lon_deg
    }

    /// Returns the great-circle distance to `other` in kilometers, computed
    /// with the haversine formula on a spherical Earth.
    pub fn distance_km(self, other: GeoPoint) -> f64 {
        let lat1 = self.lat_deg.to_radians();
        let lat2 = other.lat_deg.to_radians();
        let dlat = (other.lat_deg - self.lat_deg).to_radians();
        let dlon = (other.lon_deg - self.lon_deg).to_radians();

        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        let c = 2.0 * a.sqrt().asin();
        EARTH_RADIUS_KM * c
    }
}

impl fmt::Display for GeoPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}°, {:.2}°)", self.lat_deg, self.lon_deg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_to_self_is_zero() {
        let p = GeoPoint::new(41.88, -87.63);
        assert_eq!(p.distance_km(p), 0.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = GeoPoint::new(40.71, -74.01); // New York
        let b = GeoPoint::new(51.51, -0.13); // London
        assert!((a.distance_km(b) - b.distance_km(a)).abs() < 1e-9);
    }

    #[test]
    fn known_distances_are_accurate() {
        // New York <-> London: ~5570 km.
        let ny = GeoPoint::new(40.71, -74.01);
        let london = GeoPoint::new(51.51, -0.13);
        let d = ny.distance_km(london);
        assert!((5500.0..5650.0).contains(&d), "NY-London was {d}");

        // Seattle <-> Miami: ~4400 km.
        let seattle = GeoPoint::new(47.61, -122.33);
        let miami = GeoPoint::new(25.76, -80.19);
        let d = seattle.distance_km(miami);
        assert!((4350.0..4500.0).contains(&d), "Seattle-Miami was {d}");
    }

    #[test]
    fn antipodal_distance_is_half_circumference() {
        let a = GeoPoint::new(0.0, 0.0);
        let b = GeoPoint::new(0.0, 180.0);
        let d = a.distance_km(b);
        let half = std::f64::consts::PI * EARTH_RADIUS_KM;
        assert!((d - half).abs() < 1.0, "antipodal distance was {d}");
    }

    #[test]
    #[should_panic(expected = "latitude")]
    fn rejects_out_of_range_latitude() {
        let _ = GeoPoint::new(91.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "longitude")]
    fn rejects_out_of_range_longitude() {
        let _ = GeoPoint::new(0.0, 200.0);
    }

    #[test]
    fn display_shows_both_coordinates() {
        let p = GeoPoint::new(12.34, -56.78);
        assert_eq!(p.to_string(), "(12.34°, -56.78°)");
    }
}
