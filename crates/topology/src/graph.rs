//! Weighted undirected PoP graphs and session sampling.

use std::fmt;

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use teeve_types::{CostMatrix, CostMs};

use crate::{GeoPoint, LatencyModel};

/// Error produced by topology construction or session sampling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// An edge referenced a node index that does not exist.
    InvalidEdge {
        /// First endpoint of the offending edge.
        a: usize,
        /// Second endpoint of the offending edge.
        b: usize,
        /// Number of nodes in the topology.
        nodes: usize,
    },
    /// An edge connected a node to itself.
    SelfLoop {
        /// The offending node index.
        node: usize,
    },
    /// More session sites were requested than PoPs exist.
    NotEnoughNodes {
        /// Number of sites requested.
        requested: usize,
        /// Number of PoPs available.
        available: usize,
    },
    /// A pair of selected PoPs is not connected by any path.
    Disconnected {
        /// First unreachable endpoint (node index).
        a: usize,
        /// Second unreachable endpoint (node index).
        b: usize,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::InvalidEdge { a, b, nodes } => {
                write!(f, "edge ({a}, {b}) references a node outside 0..{nodes}")
            }
            TopologyError::SelfLoop { node } => write!(f, "self-loop on node {node}"),
            TopologyError::NotEnoughNodes {
                requested,
                available,
            } => write!(
                f,
                "requested {requested} session sites but only {available} PoPs exist"
            ),
            TopologyError::Disconnected { a, b } => {
                write!(f, "no path between PoPs {a} and {b}")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// A session sampled from a topology: `n` PoPs chosen at random, with their
/// pairwise shortest-path latencies.
///
/// This mirrors the paper's setup: "We randomly select 3-10 nodes in the
/// experiments. The costs of edges are computed based on the geographical
/// distances between the nodes."
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSample {
    /// Indices of the selected PoPs within the source [`Topology`];
    /// `pops[k]` hosts the session's site `H_k`.
    pub pops: Vec<usize>,
    /// Human-readable names of the selected PoPs, parallel to `pops`.
    pub names: Vec<String>,
    /// Pairwise shortest-path latency between the selected PoPs;
    /// entry `(a, b)` is the cost between session sites `H_a` and `H_b`.
    pub costs: CostMatrix,
}

/// A weighted undirected graph of backbone PoPs.
///
/// Nodes carry a name and a geographic location; edges carry an
/// integer-millisecond latency. Pairwise RP costs are shortest-path
/// distances over this graph.
///
/// # Examples
///
/// ```
/// use teeve_topology::{GeoPoint, LatencyModel, Topology};
///
/// let topo = Topology::from_geo(
///     vec![
///         ("A".into(), GeoPoint::new(0.0, 0.0)),
///         ("B".into(), GeoPoint::new(0.0, 10.0)),
///         ("C".into(), GeoPoint::new(0.0, 20.0)),
///     ],
///     &[(0, 1), (1, 2)],
///     LatencyModel::IDEAL,
/// )?;
/// let apsp = topo.all_pairs_shortest_paths();
/// // A→C must route through B: cost(A,C) = cost(A,B) + cost(B,C).
/// assert_eq!(apsp.cost_idx(0, 2), apsp.cost_idx(0, 1) + apsp.cost_idx(1, 2));
/// # Ok::<(), teeve_topology::TopologyError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    names: Vec<String>,
    points: Vec<GeoPoint>,
    /// Undirected edges as `(a, b, cost)` with `a < b`.
    edges: Vec<(usize, usize, CostMs)>,
}

impl Topology {
    /// Builds a topology from named geographic nodes and an undirected edge
    /// list; each edge cost is derived from the great-circle distance using
    /// `model`.
    ///
    /// # Errors
    ///
    /// Returns an error if an edge references a missing node or is a
    /// self-loop.
    pub fn from_geo(
        nodes: Vec<(String, GeoPoint)>,
        edges: &[(usize, usize)],
        model: LatencyModel,
    ) -> Result<Self, TopologyError> {
        let (names, points): (Vec<_>, Vec<_>) = nodes.into_iter().unzip();
        let n = names.len();
        let mut weighted = Vec::with_capacity(edges.len());
        for &(a, b) in edges {
            if a >= n || b >= n {
                return Err(TopologyError::InvalidEdge { a, b, nodes: n });
            }
            if a == b {
                return Err(TopologyError::SelfLoop { node: a });
            }
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            let cost = model.cost_for_km(points[lo].distance_km(points[hi]));
            weighted.push((lo, hi, cost));
        }
        Ok(Topology {
            names,
            points,
            edges: weighted,
        })
    }

    /// Returns the number of PoP nodes.
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// Returns the number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Returns the name of node `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn name(&self, index: usize) -> &str {
        &self.names[index]
    }

    /// Returns the geographic location of node `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn point(&self, index: usize) -> GeoPoint {
        self.points[index]
    }

    /// Returns an iterator over the undirected edges as `(a, b, cost)`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, CostMs)> + '_ {
        self.edges.iter().copied()
    }

    /// Returns true if every PoP can reach every other PoP.
    pub fn is_connected(&self) -> bool {
        let n = self.node_count();
        if n <= 1 {
            return true;
        }
        let mut adj = vec![Vec::new(); n];
        for &(a, b, _) in &self.edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut visited = 1;
        while let Some(u) = stack.pop() {
            for &v in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    visited += 1;
                    stack.push(v);
                }
            }
        }
        visited == n
    }

    /// Computes all-pairs shortest-path costs over the backbone with
    /// Floyd–Warshall. Unreachable pairs get [`CostMs::MAX`].
    pub fn all_pairs_shortest_paths(&self) -> CostMatrix {
        let n = self.node_count();
        let mut dist = vec![CostMs::MAX; n * n];
        for i in 0..n {
            dist[i * n + i] = CostMs::ZERO;
        }
        for &(a, b, c) in &self.edges {
            // Parallel edges keep the cheaper cost.
            if c < dist[a * n + b] {
                dist[a * n + b] = c;
                dist[b * n + a] = c;
            }
        }
        for k in 0..n {
            for i in 0..n {
                let dik = dist[i * n + k];
                if dik == CostMs::MAX {
                    continue;
                }
                for j in 0..n {
                    let through = dik.saturating_add(dist[k * n + j]);
                    if through < dist[i * n + j] {
                        dist[i * n + j] = through;
                    }
                }
            }
        }
        // The result is symmetric with a zero diagonal by construction.
        CostMatrix::from_flat(n, dist).expect("APSP output is a valid cost matrix")
    }

    /// Randomly selects `n` distinct PoPs to host a 3DTI session and returns
    /// their pairwise shortest-path cost matrix, exactly as the paper's
    /// simulation setup does with Mapnet.
    ///
    /// # Errors
    ///
    /// Returns an error if fewer than `n` PoPs exist or if any selected pair
    /// is disconnected.
    pub fn sample_session<R: Rng + ?Sized>(
        &self,
        n: usize,
        rng: &mut R,
    ) -> Result<SessionSample, TopologyError> {
        let available = self.node_count();
        if n > available {
            return Err(TopologyError::NotEnoughNodes {
                requested: n,
                available,
            });
        }
        let mut indices: Vec<usize> = (0..available).collect();
        indices.shuffle(rng);
        indices.truncate(n);
        self.session_from_pops(indices)
    }

    /// Builds a session from an explicit list of PoP indices (useful for
    /// reproducible scenarios and tests).
    ///
    /// # Errors
    ///
    /// Returns an error if any index is out of bounds or any selected pair
    /// is disconnected.
    pub fn session_from_pops(&self, pops: Vec<usize>) -> Result<SessionSample, TopologyError> {
        let available = self.node_count();
        for &p in &pops {
            if p >= available {
                return Err(TopologyError::InvalidEdge {
                    a: p,
                    b: p,
                    nodes: available,
                });
            }
        }
        let apsp = self.all_pairs_shortest_paths();
        for (ai, &a) in pops.iter().enumerate() {
            for &b in pops.iter().skip(ai + 1) {
                if apsp.cost_idx(a, b) == CostMs::MAX {
                    return Err(TopologyError::Disconnected { a, b });
                }
            }
        }
        let costs = apsp.restrict(&pops);
        let names = pops.iter().map(|&p| self.names[p].clone()).collect();
        Ok(SessionSample { pops, names, costs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn line_of_three() -> Topology {
        Topology::from_geo(
            vec![
                ("A".into(), GeoPoint::new(0.0, 0.0)),
                ("B".into(), GeoPoint::new(0.0, 10.0)),
                ("C".into(), GeoPoint::new(0.0, 20.0)),
            ],
            &[(0, 1), (1, 2)],
            LatencyModel::IDEAL,
        )
        .expect("valid topology")
    }

    #[test]
    fn rejects_edges_to_missing_nodes() {
        let err = Topology::from_geo(
            vec![("A".into(), GeoPoint::new(0.0, 0.0))],
            &[(0, 1)],
            LatencyModel::IDEAL,
        )
        .unwrap_err();
        assert_eq!(
            err,
            TopologyError::InvalidEdge {
                a: 0,
                b: 1,
                nodes: 1
            }
        );
    }

    #[test]
    fn rejects_self_loops() {
        let err = Topology::from_geo(
            vec![("A".into(), GeoPoint::new(0.0, 0.0))],
            &[(0, 0)],
            LatencyModel::IDEAL,
        )
        .unwrap_err();
        assert_eq!(err, TopologyError::SelfLoop { node: 0 });
    }

    #[test]
    fn apsp_routes_through_intermediate_nodes() {
        let topo = line_of_three();
        let apsp = topo.all_pairs_shortest_paths();
        assert_eq!(
            apsp.cost_idx(0, 2),
            apsp.cost_idx(0, 1) + apsp.cost_idx(1, 2),
            "A-C should be the two-hop path through B"
        );
    }

    #[test]
    fn apsp_marks_unreachable_pairs() {
        let topo = Topology::from_geo(
            vec![
                ("A".into(), GeoPoint::new(0.0, 0.0)),
                ("B".into(), GeoPoint::new(0.0, 10.0)),
            ],
            &[],
            LatencyModel::IDEAL,
        )
        .unwrap();
        assert!(!topo.is_connected());
        let apsp = topo.all_pairs_shortest_paths();
        assert_eq!(apsp.cost_idx(0, 1), CostMs::MAX);
    }

    #[test]
    fn apsp_satisfies_triangle_inequality() {
        let topo = line_of_three();
        assert!(topo.all_pairs_shortest_paths().is_metric());
    }

    #[test]
    fn connectivity_detection() {
        assert!(line_of_three().is_connected());
        let disconnected = Topology::from_geo(
            vec![
                ("A".into(), GeoPoint::new(0.0, 0.0)),
                ("B".into(), GeoPoint::new(0.0, 10.0)),
                ("C".into(), GeoPoint::new(0.0, 20.0)),
            ],
            &[(0, 1)],
            LatencyModel::IDEAL,
        )
        .unwrap();
        assert!(!disconnected.is_connected());
    }

    #[test]
    fn sample_session_selects_distinct_pops() {
        let topo = line_of_three();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let session = topo.sample_session(3, &mut rng).unwrap();
        let mut pops = session.pops.clone();
        pops.sort_unstable();
        pops.dedup();
        assert_eq!(pops.len(), 3, "PoPs must be distinct");
        assert_eq!(session.costs.len(), 3);
        assert_eq!(session.names.len(), 3);
    }

    #[test]
    fn sample_session_rejects_oversized_requests() {
        let topo = line_of_three();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let err = topo.sample_session(4, &mut rng).unwrap_err();
        assert_eq!(
            err,
            TopologyError::NotEnoughNodes {
                requested: 4,
                available: 3
            }
        );
    }

    #[test]
    fn sample_session_rejects_disconnected_pairs() {
        let topo = Topology::from_geo(
            vec![
                ("A".into(), GeoPoint::new(0.0, 0.0)),
                ("B".into(), GeoPoint::new(0.0, 10.0)),
            ],
            &[],
            LatencyModel::IDEAL,
        )
        .unwrap();
        let err = topo.session_from_pops(vec![0, 1]).unwrap_err();
        assert!(matches!(err, TopologyError::Disconnected { .. }));
    }

    #[test]
    fn session_costs_match_restricted_apsp() {
        let topo = line_of_three();
        let session = topo.session_from_pops(vec![2, 0]).unwrap();
        let apsp = topo.all_pairs_shortest_paths();
        assert_eq!(session.costs.cost_idx(0, 1), apsp.cost_idx(2, 0));
        assert_eq!(session.names, vec!["C".to_string(), "A".to_string()]);
    }

    #[test]
    fn sampling_is_deterministic_for_a_seed() {
        let topo = line_of_three();
        let s1 = topo
            .sample_session(2, &mut ChaCha8Rng::seed_from_u64(42))
            .unwrap();
        let s2 = topo
            .sample_session(2, &mut ChaCha8Rng::seed_from_u64(42))
            .unwrap();
        assert_eq!(s1, s2);
    }
}
