//! Conversion from geographic distance to propagation latency.

use serde::{Deserialize, Serialize};
use teeve_types::CostMs;

/// Converts great-circle kilometers into integer-millisecond edge costs.
///
/// The paper computes edge costs "based on the geographical distances
/// between the nodes". We make the conversion explicit: light in fiber
/// propagates at roughly 200 km/ms, real fiber paths are longer than the
/// great circle (`path_inflation`), and each hop adds a fixed
/// router/processing delay (`per_hop_ms`). The default model is
/// `ceil(km × 1.3 / 200) + 1 ms`.
///
/// # Examples
///
/// ```
/// use teeve_topology::LatencyModel;
/// use teeve_types::CostMs;
///
/// let model = LatencyModel::default();
/// // A 2000 km link: ceil(2000 * 1.3 / 200) + 1 = 14 ms.
/// assert_eq!(model.cost_for_km(2000.0), CostMs::new(14));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Propagation speed in kilometers per millisecond (fiber ≈ 200).
    pub km_per_ms: f64,
    /// Multiplier accounting for fiber paths being longer than the great
    /// circle (typically 1.2–1.5 for backbone links).
    pub path_inflation: f64,
    /// Fixed per-hop processing delay added to every edge, in milliseconds.
    pub per_hop_ms: u32,
}

impl LatencyModel {
    /// A model with no inflation and no per-hop delay: pure speed-of-light
    /// propagation. Useful in tests where exact costs matter.
    pub const IDEAL: LatencyModel = LatencyModel {
        km_per_ms: 200.0,
        path_inflation: 1.0,
        per_hop_ms: 0,
    };

    /// Creates a custom latency model.
    ///
    /// # Panics
    ///
    /// Panics if `km_per_ms` or `path_inflation` is not strictly positive.
    pub fn new(km_per_ms: f64, path_inflation: f64, per_hop_ms: u32) -> Self {
        assert!(km_per_ms > 0.0, "km_per_ms must be positive");
        assert!(path_inflation > 0.0, "path_inflation must be positive");
        LatencyModel {
            km_per_ms,
            path_inflation,
            per_hop_ms,
        }
    }

    /// Returns the integer-millisecond cost of a link spanning `km`
    /// great-circle kilometers.
    pub fn cost_for_km(&self, km: f64) -> CostMs {
        let propagation = (km * self.path_inflation / self.km_per_ms).ceil() as u32;
        CostMs::new(propagation + self.per_hop_ms)
    }
}

impl Default for LatencyModel {
    /// Fiber propagation at 200 km/ms, 1.3× path inflation, 1 ms per hop.
    fn default() -> Self {
        LatencyModel {
            km_per_ms: 200.0,
            path_inflation: 1.3,
            per_hop_ms: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_distance_costs_only_hop_delay() {
        let model = LatencyModel::default();
        assert_eq!(model.cost_for_km(0.0), CostMs::new(1));
        assert_eq!(LatencyModel::IDEAL.cost_for_km(0.0), CostMs::ZERO);
    }

    #[test]
    fn cost_is_monotone_in_distance() {
        let model = LatencyModel::default();
        let mut prev = CostMs::ZERO;
        for km in [0.0, 100.0, 500.0, 1000.0, 5000.0, 10000.0] {
            let c = model.cost_for_km(km);
            assert!(c >= prev, "cost not monotone at {km} km");
            prev = c;
        }
    }

    #[test]
    fn ideal_model_matches_speed_of_light() {
        // 4000 km coast-to-coast at 200 km/ms = 20 ms.
        assert_eq!(LatencyModel::IDEAL.cost_for_km(4000.0), CostMs::new(20));
    }

    #[test]
    fn fractional_milliseconds_round_up() {
        assert_eq!(LatencyModel::IDEAL.cost_for_km(1.0), CostMs::new(1));
        assert_eq!(LatencyModel::IDEAL.cost_for_km(200.0), CostMs::new(1));
        assert_eq!(LatencyModel::IDEAL.cost_for_km(200.1), CostMs::new(2));
    }

    #[test]
    #[should_panic(expected = "km_per_ms")]
    fn rejects_nonpositive_speed() {
        let _ = LatencyModel::new(0.0, 1.0, 0);
    }

    #[test]
    #[should_panic(expected = "path_inflation")]
    fn rejects_nonpositive_inflation() {
        let _ = LatencyModel::new(200.0, 0.0, 0);
    }
}
