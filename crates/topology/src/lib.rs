//! Internet backbone topology substrate for the TEEVE reproduction.
//!
//! The ICDCS 2008 paper evaluates its overlay heuristics on the real
//! **Mapnet** Internet topology (CAIDA), randomly selecting 3–10 PoP nodes
//! per session and deriving edge costs from geographic distance. The Mapnet
//! dataset is no longer distributable, so this crate provides a faithful
//! substitute (substitution S1 in `DESIGN.md`):
//!
//! * [`backbone`] — an embedded backbone of 48 real PoP cities (public
//!   latitude/longitude) connected with a realistic mesh of regional rings
//!   and long-haul/submarine chords;
//! * [`WaxmanConfig`] — a seeded Waxman random-graph generator for
//!   sensitivity experiments;
//! * [`Topology`] — a weighted undirected graph with all-pairs shortest
//!   paths, producing the [`CostMatrix`] consumed by `teeve-overlay`;
//! * [`GeoPoint`] and [`LatencyModel`] — great-circle distance and the
//!   distance → propagation-milliseconds conversion.
//!
//! # Examples
//!
//! ```
//! use rand::SeedableRng;
//! use teeve_topology::backbone;
//!
//! let topo = backbone();
//! assert!(topo.is_connected());
//!
//! // Sample a 5-site 3DTI session exactly like the paper's setup.
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//! let session = topo.sample_session(5, &mut rng)?;
//! assert_eq!(session.costs.len(), 5);
//! # Ok::<(), teeve_topology::TopologyError>(())
//! ```
//!
//! [`CostMatrix`]: teeve_types::CostMatrix

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backbone;
mod generator;
mod geo;
mod graph;
mod latency;

pub use backbone::{
    backbone, backbone_north_america, backbone_north_america_with_model, backbone_with_model,
    BACKBONE_CITY_COUNT, NORTH_AMERICA_CITY_COUNT,
};
pub use generator::WaxmanConfig;
pub use geo::GeoPoint;
pub use graph::{SessionSample, Topology, TopologyError};
pub use latency::LatencyModel;
