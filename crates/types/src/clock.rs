//! The single sanctioned wall-clock module for the workspace.
//!
//! Every crate that needs an absolute timestamp — frame capture stamps in
//! `teeve-net`, flight-event stamps in `teeve-telemetry` — goes through
//! [`unix_micros`] instead of calling `std::time::SystemTime::now`
//! directly. Funnelling wall-clock reads through one chokepoint is the
//! groundwork for the roadmap's clock-skew handling: a future skew
//! estimator only has to adjust one function, and `teeve-check`'s `clock`
//! lint rejects any new `SystemTime::now` call outside this module.
//!
//! Elapsed-time measurement is *not* this module's business: intervals
//! should keep using the monotonic [`std::time::Instant`], which is immune
//! to wall-clock steps. Only cross-process timestamps belong here.

use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Microseconds since the Unix epoch.
///
/// Saturates at zero if the wall clock reads before the epoch and at
/// `u64::MAX` far past it (year ~586,912), so callers never see an error
/// for something as routine as reading the time.
///
/// ```
/// let a = teeve_types::clock::unix_micros();
/// let b = teeve_types::clock::unix_micros();
/// // The wall clock can step backwards between calls, but both reads are
/// // well past the epoch on any sane host.
/// assert!(a > 0 && b > 0);
/// ```
pub fn unix_micros() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(duration_micros)
        .unwrap_or(0)
}

/// Clamps a [`Duration`] to whole microseconds in `u64`.
pub fn duration_micros(d: Duration) -> u64 {
    d.as_micros().min(u128::from(u64::MAX)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unix_micros_is_past_2020() {
        // 2020-01-01T00:00:00Z in micros.
        assert!(unix_micros() > 1_577_836_800_000_000);
    }

    #[test]
    fn duration_micros_clamps() {
        assert_eq!(duration_micros(Duration::from_micros(7)), 7);
        assert_eq!(duration_micros(Duration::MAX), u64::MAX);
    }
}
