//! Identifier newtypes for sites, streams, cameras, and displays.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a 3DTI site (`H_i` in the paper).
///
/// A site hosts an array of 3D cameras (publishers), an array of 3D displays
/// (subscribers), and exactly one rendezvous point (RP). The overlay graph is
/// built over RPs only, so a `SiteId` also names the site's RP node.
///
/// # Examples
///
/// ```
/// use teeve_types::SiteId;
///
/// let a = SiteId::new(0);
/// let b = SiteId::new(1);
/// assert!(a < b);
/// assert_eq!(a.index(), 0);
/// assert_eq!(a.to_string(), "H0");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct SiteId(u32);

impl SiteId {
    /// Creates a site identifier from a dense zero-based index.
    pub const fn new(index: u32) -> Self {
        SiteId(index)
    }

    /// Returns the dense zero-based index of the site.
    ///
    /// Dense indices make it cheap to use `SiteId` as a key into
    /// `Vec`-backed per-site tables, which the overlay construction inner
    /// loop relies on.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns an iterator over the first `n` site identifiers
    /// (`H_0, H_1, …, H_{n-1}`).
    ///
    /// # Examples
    ///
    /// ```
    /// use teeve_types::SiteId;
    ///
    /// let sites: Vec<SiteId> = SiteId::all(3).collect();
    /// assert_eq!(sites.len(), 3);
    /// assert_eq!(sites[2], SiteId::new(2));
    /// ```
    pub fn all(n: usize) -> impl Iterator<Item = SiteId> + Clone {
        (0..n as u32).map(SiteId)
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "H{}", self.0)
    }
}

impl From<u32> for SiteId {
    fn from(index: u32) -> Self {
        SiteId(index)
    }
}

/// Identifier of a 3D video stream (`s_j^q` in the paper): the stream with
/// local index `q` originating from site `H_j`.
///
/// Streams are produced by 3D cameras; one camera produces one continuous
/// stream, so within the pub-sub layer a `StreamId` and the producing
/// [`CameraId`] are in one-to-one correspondence.
///
/// # Examples
///
/// ```
/// use teeve_types::{SiteId, StreamId};
///
/// let s = StreamId::new(SiteId::new(3), 1);
/// assert_eq!(s.origin(), SiteId::new(3));
/// assert_eq!(s.local_index(), 1);
/// assert_eq!(s.to_string(), "s3.1");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct StreamId {
    origin: SiteId,
    local_index: u32,
}

impl StreamId {
    /// Creates the identifier of the stream with local index `local_index`
    /// originating from `origin`.
    pub const fn new(origin: SiteId, local_index: u32) -> Self {
        StreamId {
            origin,
            local_index,
        }
    }

    /// Returns the site the stream originates from (`H_j`).
    pub const fn origin(self) -> SiteId {
        self.origin
    }

    /// Returns the stream's local index within its origin site (`q`).
    pub const fn local_index(self) -> u32 {
        self.local_index
    }
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}.{}", self.origin.0, self.local_index)
    }
}

/// Identifier of a 3D camera (publisher) within a site.
///
/// # Examples
///
/// ```
/// use teeve_types::{CameraId, SiteId};
///
/// let cam = CameraId::new(SiteId::new(0), 4);
/// assert_eq!(cam.site(), SiteId::new(0));
/// assert_eq!(cam.local_index(), 4);
/// assert_eq!(cam.to_string(), "cam0.4");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct CameraId {
    site: SiteId,
    local_index: u32,
}

impl CameraId {
    /// Creates a camera identifier local to `site`.
    pub const fn new(site: SiteId, local_index: u32) -> Self {
        CameraId { site, local_index }
    }

    /// Returns the site hosting the camera.
    pub const fn site(self) -> SiteId {
        self.site
    }

    /// Returns the camera's index within its site.
    pub const fn local_index(self) -> u32 {
        self.local_index
    }

    /// Returns the identifier of the stream this camera publishes.
    ///
    /// One 3D camera produces exactly one continuous 3D video stream, so the
    /// mapping is a pure re-tagging of the same `(site, index)` pair.
    pub const fn stream(self) -> StreamId {
        StreamId::new(self.site, self.local_index)
    }
}

impl fmt::Display for CameraId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cam{}.{}", self.site.0, self.local_index)
    }
}

/// Identifier of a 3D display (subscriber) within a site.
///
/// Each display renders an integrated view of the cyber-space and carries its
/// own field-of-view subscription.
///
/// # Examples
///
/// ```
/// use teeve_types::{DisplayId, SiteId};
///
/// let d = DisplayId::new(SiteId::new(1), 0);
/// assert_eq!(d.site(), SiteId::new(1));
/// assert_eq!(d.to_string(), "disp1.0");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct DisplayId {
    site: SiteId,
    local_index: u32,
}

impl DisplayId {
    /// Creates a display identifier local to `site`.
    pub const fn new(site: SiteId, local_index: u32) -> Self {
        DisplayId { site, local_index }
    }

    /// Returns the site hosting the display.
    pub const fn site(self) -> SiteId {
        self.site
    }

    /// Returns the display's index within its site.
    pub const fn local_index(self) -> u32 {
        self.local_index
    }
}

impl fmt::Display for DisplayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "disp{}.{}", self.site.0, self.local_index)
    }
}

/// Identifier of one hosted 3DTI session within a multi-session service.
///
/// The paper describes a single session dictated by one centralized
/// membership server. A production deployment hosts *many* sessions
/// concurrently behind a sharded `MembershipService`; `SessionId` names one
/// of them. Ids are dense service-local counters, never reused within a
/// service's lifetime, and every session-scoped artifact (plans, plan
/// deltas) carries one so executors serving several sessions can route by
/// it.
///
/// # Examples
///
/// ```
/// use teeve_types::SessionId;
///
/// let a = SessionId::new(0);
/// let b = SessionId::new(1);
/// assert!(a < b);
/// assert_eq!(b.raw(), 1);
/// assert_eq!(b.to_string(), "sess1");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct SessionId(u64);

impl SessionId {
    /// Creates a session identifier from its raw counter value.
    pub const fn new(raw: u64) -> Self {
        SessionId(raw)
    }

    /// Returns the raw counter value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sess{}", self.0)
    }
}

impl From<u64> for SessionId {
    fn from(raw: u64) -> Self {
        SessionId(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_id_roundtrips_index() {
        for i in [0u32, 1, 7, 1000] {
            assert_eq!(SiteId::new(i).index(), i as usize);
        }
    }

    #[test]
    fn site_id_ordering_follows_index() {
        assert!(SiteId::new(1) < SiteId::new(2));
        assert!(SiteId::new(0) < SiteId::new(10));
    }

    #[test]
    fn site_id_all_enumerates_dense_prefix() {
        let sites: Vec<_> = SiteId::all(4).collect();
        assert_eq!(
            sites,
            vec![
                SiteId::new(0),
                SiteId::new(1),
                SiteId::new(2),
                SiteId::new(3)
            ]
        );
    }

    #[test]
    fn stream_id_accessors() {
        let s = StreamId::new(SiteId::new(5), 9);
        assert_eq!(s.origin(), SiteId::new(5));
        assert_eq!(s.local_index(), 9);
    }

    #[test]
    fn stream_ordering_groups_by_origin_site() {
        let a = StreamId::new(SiteId::new(0), 99);
        let b = StreamId::new(SiteId::new(1), 0);
        assert!(a < b, "streams sort primarily by origin site");
    }

    #[test]
    fn camera_maps_to_stream_with_same_coordinates() {
        let cam = CameraId::new(SiteId::new(2), 3);
        let stream = cam.stream();
        assert_eq!(stream.origin(), cam.site());
        assert_eq!(stream.local_index(), cam.local_index());
    }

    #[test]
    fn display_formats_with_site_and_index() {
        assert_eq!(DisplayId::new(SiteId::new(3), 2).to_string(), "disp3.2");
    }

    #[test]
    fn ids_serialize_to_json_and_back() {
        let s = StreamId::new(SiteId::new(4), 11);
        let json = serde_json::to_string(&s).expect("serialize");
        let back: StreamId = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, s);

        let site = SiteId::new(9);
        let json = serde_json::to_string(&site).expect("serialize");
        assert_eq!(json, "9", "SiteId is serde(transparent)");
        let back: SiteId = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, site);
    }

    #[test]
    fn session_id_roundtrips_and_orders_by_counter() {
        let a = SessionId::new(3);
        assert_eq!(a.raw(), 3);
        assert_eq!(a, SessionId::from(3));
        assert!(SessionId::new(2) < a);
        assert_eq!(a.to_string(), "sess3");
        let json = serde_json::to_string(&a).expect("serialize");
        assert_eq!(json, "3", "SessionId is serde(transparent)");
        let back: SessionId = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, a);
    }

    #[test]
    fn display_impls_are_nonempty_and_distinct() {
        let site = SiteId::new(1);
        let texts = [
            site.to_string(),
            StreamId::new(site, 0).to_string(),
            CameraId::new(site, 0).to_string(),
            DisplayId::new(site, 0).to_string(),
        ];
        for t in &texts {
            assert!(!t.is_empty());
        }
        let unique: std::collections::HashSet<_> = texts.iter().collect();
        assert_eq!(unique.len(), texts.len());
    }
}
