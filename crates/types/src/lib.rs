//! Shared vocabulary types for the TEEVE multi-site 3D tele-immersion
//! reproduction (Wu et al., ICDCS 2008).
//!
//! Every other crate in the workspace speaks in terms of the identifiers and
//! units defined here:
//!
//! * [`SiteId`] — a participating 3DTI site (`H_i` in the paper), which hosts
//!   one rendezvous point (RP), an array of 3D cameras, and an array of 3D
//!   displays. Because the overlay excludes edge hosts, `SiteId` doubles as
//!   the identifier of the site's RP node.
//! * [`StreamId`] — a 3D video stream `s_j^q`: the stream with local index
//!   `q` originating from site `H_j`.
//! * [`CameraId`] / [`DisplayId`] — edge hosts within a site.
//! * [`SessionId`] — one hosted 3DTI session within a multi-session
//!   membership service; session-scoped plans and deltas carry it.
//! * [`CostMs`] — an integer latency cost in milliseconds (edge costs
//!   `c(e) ∈ ℤ⁺` in the paper's problem formulation).
//! * [`Degree`] — a bandwidth limit expressed in *number of streams*
//!   (`I_i, O_i ∈ ℕ`).
//! * [`Quality`] / [`QualityLadder`] — per-subscription quality rungs,
//!   shared by the adaptation controller, the overlay's degrade-don't-
//!   reject admission path, dissemination plan entries, and the wire
//!   protocol.
//! * [`clock`] — the single sanctioned wall-clock module; all absolute
//!   timestamps in the workspace come from [`clock::unix_micros`].
//!
//! # Examples
//!
//! ```
//! use teeve_types::{SiteId, StreamId};
//!
//! let site = SiteId::new(2);
//! let stream = StreamId::new(site, 7);
//! assert_eq!(stream.origin(), site);
//! assert_eq!(stream.local_index(), 7);
//! assert_eq!(stream.to_string(), "s2.7");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
mod id;
mod matrix;
mod quality;
mod units;

pub use id::{CameraId, DisplayId, SessionId, SiteId, StreamId};
pub use matrix::{CostMatrix, CostMatrixError};
pub use quality::{Quality, QualityLadder, QualityLevel};
pub use units::{BitRate, CostMs, Degree};
