//! A dense symmetric matrix of pairwise latency costs between RP nodes.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{CostMs, SiteId};

/// Error returned when constructing an ill-formed [`CostMatrix`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CostMatrixError {
    /// The flat cost buffer length does not equal `n * n`.
    WrongLength {
        /// Expected number of entries (`n * n`).
        expected: usize,
        /// Actual number of entries provided.
        actual: usize,
    },
    /// A diagonal entry was non-zero; the cost from a node to itself must be
    /// zero.
    NonZeroDiagonal {
        /// The offending node index.
        index: usize,
    },
    /// The matrix was not symmetric: `cost(i, j) != cost(j, i)`.
    Asymmetric {
        /// Row of the offending entry.
        i: usize,
        /// Column of the offending entry.
        j: usize,
    },
}

impl fmt::Display for CostMatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostMatrixError::WrongLength { expected, actual } => {
                write!(f, "cost buffer has {actual} entries, expected {expected}")
            }
            CostMatrixError::NonZeroDiagonal { index } => {
                write!(f, "diagonal entry {index} is non-zero")
            }
            CostMatrixError::Asymmetric { i, j } => {
                write!(f, "cost({i}, {j}) differs from cost({j}, {i})")
            }
        }
    }
}

impl std::error::Error for CostMatrixError {}

/// A dense symmetric `n × n` matrix of pairwise latencies between the RP
/// nodes of a session.
///
/// Row/column `k` corresponds to `SiteId::new(k)`. The paper models the
/// overlay substrate as a completely connected graph `G = (V, E)` with a
/// positive integer cost on every edge; this type is that graph's cost
/// function.
///
/// # Examples
///
/// ```
/// use teeve_types::{CostMatrix, CostMs, SiteId};
///
/// let m = CostMatrix::from_fn(3, |i, j| CostMs::new((i as u32 + 1) * (j as u32 + 1)));
/// assert_eq!(m.len(), 3);
/// assert_eq!(m.cost(SiteId::new(1), SiteId::new(2)), CostMs::new(6));
/// assert_eq!(m.cost(SiteId::new(0), SiteId::new(0)), CostMs::ZERO);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostMatrix {
    n: usize,
    costs: Vec<CostMs>,
}

impl CostMatrix {
    /// Builds a matrix by evaluating `f(i, j)` for every unordered pair
    /// `i < j`; the matrix is symmetric by construction and the diagonal is
    /// zero regardless of `f`.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> CostMs) -> Self {
        let mut costs = vec![CostMs::ZERO; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let c = f(i, j);
                costs[i * n + j] = c;
                costs[j * n + i] = c;
            }
        }
        CostMatrix { n, costs }
    }

    /// Builds a matrix from a flat row-major buffer of `n * n` entries.
    ///
    /// # Errors
    ///
    /// Returns an error if the buffer length is not `n * n`, if any diagonal
    /// entry is non-zero, or if the matrix is not symmetric.
    pub fn from_flat(n: usize, costs: Vec<CostMs>) -> Result<Self, CostMatrixError> {
        if costs.len() != n * n {
            return Err(CostMatrixError::WrongLength {
                expected: n * n,
                actual: costs.len(),
            });
        }
        for i in 0..n {
            if costs[i * n + i] != CostMs::ZERO {
                return Err(CostMatrixError::NonZeroDiagonal { index: i });
            }
            for j in (i + 1)..n {
                if costs[i * n + j] != costs[j * n + i] {
                    return Err(CostMatrixError::Asymmetric { i, j });
                }
            }
        }
        Ok(CostMatrix { n, costs })
    }

    /// Returns the number of nodes (rows) in the matrix.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns true if the matrix covers zero nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Returns the latency between two sites.
    ///
    /// # Panics
    ///
    /// Panics if either site index is out of bounds.
    pub fn cost(&self, a: SiteId, b: SiteId) -> CostMs {
        self.costs[a.index() * self.n + b.index()]
    }

    /// Returns the latency between two sites given as raw indices.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn cost_idx(&self, a: usize, b: usize) -> CostMs {
        self.costs[a * self.n + b]
    }

    /// Returns the largest pairwise cost in the matrix, or zero for matrices
    /// with fewer than two nodes.
    pub fn max_cost(&self) -> CostMs {
        self.costs.iter().copied().max().unwrap_or(CostMs::ZERO)
    }

    /// Returns the mean pairwise cost over ordered pairs `i != j`, or zero
    /// for matrices with fewer than two nodes.
    pub fn mean_cost(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let total: u64 = self.costs.iter().map(|c| u64::from(c.as_millis())).sum();
        total as f64 / (self.n * (self.n - 1)) as f64
    }

    /// Returns a new matrix restricted to the given subset of node indices
    /// (in the given order); entry `(a, b)` of the result is the cost
    /// between `subset[a]` and `subset[b]` in `self`.
    ///
    /// # Panics
    ///
    /// Panics if any index in `subset` is out of bounds.
    pub fn restrict(&self, subset: &[usize]) -> CostMatrix {
        CostMatrix::from_fn(subset.len(), |a, b| self.cost_idx(subset[a], subset[b]))
    }

    /// Checks whether the matrix satisfies the triangle inequality
    /// (`cost(i, k) <= cost(i, j) + cost(j, k)` for all triples).
    ///
    /// Shortest-path-derived matrices always satisfy it; raw great-circle
    /// matrices do too. Useful as a sanity check on hand-built fixtures.
    pub fn is_metric(&self) -> bool {
        for i in 0..self.n {
            for j in 0..self.n {
                for k in 0..self.n {
                    let direct = self.cost_idx(i, k);
                    let via = self.cost_idx(i, j).saturating_add(self.cost_idx(j, k));
                    if direct > via {
                        return false;
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_is_symmetric_with_zero_diagonal() {
        let m = CostMatrix::from_fn(4, |i, j| CostMs::new((i * 10 + j) as u32));
        for i in 0..4 {
            assert_eq!(m.cost_idx(i, i), CostMs::ZERO);
            for j in 0..4 {
                assert_eq!(m.cost_idx(i, j), m.cost_idx(j, i));
            }
        }
    }

    #[test]
    fn from_flat_rejects_wrong_length() {
        let err = CostMatrix::from_flat(2, vec![CostMs::ZERO; 3]).unwrap_err();
        assert_eq!(
            err,
            CostMatrixError::WrongLength {
                expected: 4,
                actual: 3
            }
        );
    }

    #[test]
    fn from_flat_rejects_nonzero_diagonal() {
        let costs = vec![CostMs::new(1), CostMs::new(2), CostMs::new(2), CostMs::ZERO];
        let err = CostMatrix::from_flat(2, costs).unwrap_err();
        assert_eq!(err, CostMatrixError::NonZeroDiagonal { index: 0 });
    }

    #[test]
    fn from_flat_rejects_asymmetry() {
        let costs = vec![CostMs::ZERO, CostMs::new(2), CostMs::new(3), CostMs::ZERO];
        let err = CostMatrix::from_flat(2, costs).unwrap_err();
        assert_eq!(err, CostMatrixError::Asymmetric { i: 0, j: 1 });
    }

    #[test]
    fn from_flat_accepts_valid_matrix() {
        let costs = vec![CostMs::ZERO, CostMs::new(2), CostMs::new(2), CostMs::ZERO];
        let m = CostMatrix::from_flat(2, costs).expect("valid matrix");
        assert_eq!(m.cost(SiteId::new(0), SiteId::new(1)), CostMs::new(2));
    }

    #[test]
    fn restrict_reorders_and_subsets() {
        let m = CostMatrix::from_fn(4, |i, j| CostMs::new((i + j) as u32));
        let r = m.restrict(&[3, 1]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.cost_idx(0, 1), m.cost_idx(3, 1));
    }

    #[test]
    fn max_and_mean_cost() {
        let m = CostMatrix::from_fn(3, |i, j| CostMs::new((i + j) as u32));
        // Off-diagonal costs: (0,1)=1 (0,2)=2 (1,2)=3, each appearing twice.
        assert_eq!(m.max_cost(), CostMs::new(3));
        let mean = m.mean_cost();
        assert!((mean - 2.0).abs() < 1e-9, "mean was {mean}");
    }

    #[test]
    fn metric_check_detects_violation() {
        let good = CostMatrix::from_fn(3, |_, _| CostMs::new(5));
        assert!(good.is_metric());
        // 0-2 direct (10) is worse than 0-1-2 (2): violates triangle inequality.
        let bad = CostMatrix::from_fn(3, |i, j| match (i, j) {
            (0, 2) => CostMs::new(10),
            _ => CostMs::new(1),
        });
        assert!(!bad.is_metric());
    }

    #[test]
    fn empty_and_singleton_matrices() {
        let empty = CostMatrix::from_fn(0, |_, _| CostMs::ZERO);
        assert!(empty.is_empty());
        assert_eq!(empty.max_cost(), CostMs::ZERO);
        assert_eq!(empty.mean_cost(), 0.0);
        let one = CostMatrix::from_fn(1, |_, _| CostMs::ZERO);
        assert_eq!(one.len(), 1);
        assert_eq!(one.mean_cost(), 0.0);
    }

    #[test]
    fn serde_roundtrip() {
        let m = CostMatrix::from_fn(3, |i, j| CostMs::new((i * 7 + j) as u32));
        let json = serde_json::to_string(&m).unwrap();
        let back: CostMatrix = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
