//! Quality levels: the discrete rungs a stream can be served at.
//!
//! The adaptation layer (`teeve-adapt`), the overlay admission path
//! (`teeve-overlay`), dissemination plans (`teeve-pubsub`), and the wire
//! protocol (`teeve-net`) all speak about per-subscription quality; this
//! module is the shared vocabulary they agree on:
//!
//! * [`Quality`] — a ladder rung *index* (0 = full quality), the compact
//!   representation plan entries and wire messages carry;
//! * [`QualityLevel`] — one rung's media parameters (bit rate, utility);
//! * [`QualityLadder`] — the descending sequence of levels a stream can
//!   degrade through.

use serde::{Deserialize, Serialize};

/// A quality rung index: 0 is full quality, each higher rung is one step
/// down the stream's [`QualityLadder`].
///
/// `Quality` orders by *degradation*: `Quality::FULL < Quality::new(1)`,
/// so the "coarser of two levels" is simply their [`max`](Ord::max).
///
/// # Examples
///
/// ```
/// use teeve_types::Quality;
///
/// assert!(Quality::FULL.is_full());
/// assert_eq!(Quality::new(2).rung(), 2);
/// assert_eq!(Quality::FULL.max(Quality::new(1)), Quality::new(1));
/// assert_eq!(Quality::new(1).to_string(), "q1");
/// ```
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Quality(u8);

impl Quality {
    /// Full quality: the top rung of every ladder.
    pub const FULL: Quality = Quality(0);

    /// Creates a quality from a rung index (0 = full).
    pub const fn new(rung: u8) -> Quality {
        Quality(rung)
    }

    /// Returns the rung index (0 = full).
    pub const fn rung(self) -> usize {
        self.0 as usize
    }

    /// Returns true at the top rung.
    pub const fn is_full(self) -> bool {
        self.0 == 0
    }

    /// One rung further down (saturating at the `u8` range; ladders clamp
    /// to their own depth).
    #[must_use]
    pub const fn degraded(self) -> Quality {
        Quality(self.0.saturating_add(1))
    }

    /// Scales a full-quality payload length to this rung.
    ///
    /// The data plane's canonical convention, mirroring the paper ladder's
    /// 8/4/2 Mbps steps: each rung halves the payload. Used by the live
    /// RP substrate to size forwarded frames by level.
    pub const fn scaled_len(self, full_len: usize) -> usize {
        if self.0 >= usize::BITS as u8 {
            0
        } else {
            full_len >> self.0
        }
    }
}

impl std::fmt::Display for Quality {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// One rung of a quality ladder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QualityLevel {
    /// Bit rate this level consumes.
    pub bitrate_bps: u64,
    /// Relative visual utility in `[0, 1]` (1 = full quality).
    pub utility: f64,
}

/// A descending ladder of quality levels for one stream, ending in an
/// implicit "dropped" state (0 bps, 0 utility).
///
/// # Examples
///
/// ```
/// use teeve_types::{Quality, QualityLadder};
///
/// let ladder = QualityLadder::paper_default();
/// assert_eq!(ladder.full().bitrate_bps, 8_000_000);
/// assert!(ladder.level(1).bitrate_bps < ladder.level(0).bitrate_bps);
/// assert_eq!(ladder.rate_of(Quality::new(2)), 2_000_000);
/// assert_eq!(ladder.floor(), Quality::new(2));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualityLadder {
    levels: Vec<QualityLevel>,
}

impl QualityLadder {
    /// Creates a ladder from strictly descending bit rates.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty, bit rates are not strictly
    /// descending and positive, or utilities are not in `(0, 1]` and
    /// non-increasing.
    pub fn new(levels: Vec<QualityLevel>) -> Self {
        assert!(!levels.is_empty(), "a ladder needs at least one level");
        for pair in levels.windows(2) {
            assert!(
                pair[0].bitrate_bps > pair[1].bitrate_bps,
                "bit rates must be strictly descending"
            );
            assert!(
                pair[0].utility >= pair[1].utility,
                "utility must be non-increasing"
            );
        }
        for level in &levels {
            assert!(level.bitrate_bps > 0, "levels must have positive bit rate");
            assert!(
                level.utility > 0.0 && level.utility <= 1.0,
                "utility must be in (0, 1]"
            );
        }
        QualityLadder { levels }
    }

    /// The paper's stream economics: full quality at 8 Mbps (the middle
    /// of the quoted 5–10 Mbps band), then half-resolution (4 Mbps),
    /// quarter (2 Mbps).
    pub fn paper_default() -> Self {
        QualityLadder::new(vec![
            QualityLevel {
                bitrate_bps: 8_000_000,
                utility: 1.0,
            },
            QualityLevel {
                bitrate_bps: 4_000_000,
                utility: 0.7,
            },
            QualityLevel {
                bitrate_bps: 2_000_000,
                utility: 0.45,
            },
        ])
    }

    /// Returns the number of real (non-dropped) levels.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Ladders are never empty; this mirrors the collection convention.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Returns the full-quality level.
    pub fn full(&self) -> QualityLevel {
        self.levels[0]
    }

    /// Returns level `index` (0 = full quality).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn level(&self, index: usize) -> QualityLevel {
        self.levels[index]
    }

    /// Returns all levels, descending.
    pub fn levels(&self) -> &[QualityLevel] {
        &self.levels
    }

    /// The lowest (coarsest) rung of this ladder.
    pub fn floor(&self) -> Quality {
        Quality::new((self.levels.len() - 1) as u8)
    }

    /// Clamps a rung index into this ladder's range.
    pub fn clamp(&self, quality: Quality) -> Quality {
        quality.min(self.floor())
    }

    /// Returns the bit rate consumed at `quality`, clamped to the ladder.
    pub fn rate_of(&self, quality: Quality) -> u64 {
        self.levels[self.clamp(quality).rung()].bitrate_bps
    }

    /// Returns the utility delivered at `quality`, clamped to the ladder.
    pub fn utility_of(&self, quality: Quality) -> f64 {
        self.levels[self.clamp(quality).rung()].utility
    }

    /// Whether `quality` has a rung below it in this ladder.
    pub fn can_degrade(&self, quality: Quality) -> bool {
        quality < self.floor()
    }
}

impl Default for QualityLadder {
    /// Same as [`QualityLadder::paper_default`].
    fn default() -> Self {
        QualityLadder::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ladder_is_descending() {
        let l = QualityLadder::paper_default();
        assert_eq!(l.len(), 3);
        assert!(l.level(0).bitrate_bps > l.level(1).bitrate_bps);
        assert!(l.level(1).bitrate_bps > l.level(2).bitrate_bps);
        assert_eq!(l.full().utility, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_ladder_panics() {
        let _ = QualityLadder::new(Vec::new());
    }

    #[test]
    #[should_panic(expected = "descending")]
    fn ascending_rates_panic() {
        let _ = QualityLadder::new(vec![
            QualityLevel {
                bitrate_bps: 1,
                utility: 0.5,
            },
            QualityLevel {
                bitrate_bps: 2,
                utility: 0.4,
            },
        ]);
    }

    #[test]
    #[should_panic(expected = "utility")]
    fn increasing_utility_panics() {
        let _ = QualityLadder::new(vec![
            QualityLevel {
                bitrate_bps: 2,
                utility: 0.4,
            },
            QualityLevel {
                bitrate_bps: 1,
                utility: 0.9,
            },
        ]);
    }

    #[test]
    #[should_panic(expected = "positive bit rate")]
    fn zero_rate_panics() {
        let _ = QualityLadder::new(vec![QualityLevel {
            bitrate_bps: 0,
            utility: 0.5,
        }]);
    }

    #[test]
    fn quality_orders_by_degradation() {
        assert!(Quality::FULL < Quality::new(1));
        assert_eq!(Quality::FULL.degraded(), Quality::new(1));
        assert!(Quality::FULL.is_full());
        assert!(!Quality::new(1).is_full());
        assert_eq!(Quality::new(3).rung(), 3);
    }

    #[test]
    fn clamping_and_rates_follow_the_ladder() {
        let l = QualityLadder::paper_default();
        assert_eq!(l.floor(), Quality::new(2));
        assert_eq!(l.clamp(Quality::new(9)), Quality::new(2));
        assert_eq!(l.rate_of(Quality::FULL), 8_000_000);
        assert_eq!(l.rate_of(Quality::new(1)), 4_000_000);
        assert_eq!(l.rate_of(Quality::new(200)), 2_000_000);
        assert!(l.can_degrade(Quality::FULL));
        assert!(!l.can_degrade(Quality::new(2)));
        assert!((l.utility_of(Quality::new(1)) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn scaled_len_halves_per_rung() {
        assert_eq!(Quality::FULL.scaled_len(1024), 1024);
        assert_eq!(Quality::new(1).scaled_len(1024), 512);
        assert_eq!(Quality::new(2).scaled_len(1024), 256);
        assert_eq!(Quality::new(255).scaled_len(usize::MAX), 0);
    }

    #[test]
    fn quality_serde_roundtrip() {
        let q = Quality::new(2);
        let json = serde_json::to_string(&q).unwrap();
        let back: Quality = serde_json::from_str(&json).unwrap();
        assert_eq!(back, q);
    }
}
