//! Unit newtypes: latency cost, stream-count degree, and bit rate.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A latency cost in integer milliseconds (`c(e) ∈ ℤ⁺` in the paper).
///
/// Costs accumulate along overlay tree paths and are compared against the
/// interactivity bound `B_cost`. The paper derives costs from geographic
/// distance; see `teeve-topology` for the distance → milliseconds model.
///
/// # Examples
///
/// ```
/// use teeve_types::CostMs;
///
/// let a = CostMs::new(4);
/// let b = CostMs::new(5);
/// assert_eq!(a + b, CostMs::new(9));
/// assert!(a + b < CostMs::new(10));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct CostMs(u32);

impl CostMs {
    /// Zero cost (the distance from a node to itself).
    pub const ZERO: CostMs = CostMs(0);

    /// The largest representable cost; useful as an "unreachable" sentinel.
    pub const MAX: CostMs = CostMs(u32::MAX);

    /// Creates a cost of `ms` milliseconds.
    pub const fn new(ms: u32) -> Self {
        CostMs(ms)
    }

    /// Returns the cost in whole milliseconds.
    pub const fn as_millis(self) -> u32 {
        self.0
    }

    /// Saturating addition; the result never wraps below [`CostMs::MAX`].
    ///
    /// Path relaxation in all-pairs shortest path uses this so that
    /// "unreachable + edge" stays unreachable.
    #[must_use]
    pub const fn saturating_add(self, rhs: CostMs) -> CostMs {
        CostMs(self.0.saturating_add(rhs.0))
    }
}

impl Add for CostMs {
    type Output = CostMs;

    fn add(self, rhs: CostMs) -> CostMs {
        CostMs(self.0 + rhs.0)
    }
}

impl AddAssign for CostMs {
    fn add_assign(&mut self, rhs: CostMs) {
        self.0 += rhs.0;
    }
}

impl Sub for CostMs {
    type Output = CostMs;

    fn sub(self, rhs: CostMs) -> CostMs {
        CostMs(self.0 - rhs.0)
    }
}

impl Sum for CostMs {
    fn sum<I: Iterator<Item = CostMs>>(iter: I) -> CostMs {
        iter.fold(CostMs::ZERO, Add::add)
    }
}

impl fmt::Display for CostMs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

impl From<u32> for CostMs {
    fn from(ms: u32) -> Self {
        CostMs(ms)
    }
}

/// A bandwidth limit or usage expressed in *number of streams*
/// (`I_i, O_i ∈ ℕ` in the paper).
///
/// The paper's degree bounds count concurrent streams rather than bits per
/// second: every 3D stream is assumed to have comparable bandwidth after
/// compression (5–10 Mbps), so a site's inbound/outbound capacity divides
/// into an integer number of stream slots.
///
/// # Examples
///
/// ```
/// use teeve_types::Degree;
///
/// let capacity = Degree::new(20);
/// let used = Degree::new(13);
/// assert_eq!(capacity.remaining(used), Degree::new(7));
/// assert!(used < capacity);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct Degree(u32);

impl Degree {
    /// Zero streams.
    pub const ZERO: Degree = Degree(0);

    /// Creates a degree of `n` streams.
    pub const fn new(n: u32) -> Self {
        Degree(n)
    }

    /// Returns the degree as a plain count.
    pub const fn count(self) -> u32 {
        self.0
    }

    /// Returns `self - used`, saturating at zero.
    ///
    /// Treating over-use as zero (rather than panicking) keeps capacity
    /// arithmetic total; the overlay layer enforces non-over-use separately
    /// through its invariant validator.
    #[must_use]
    pub const fn remaining(self, used: Degree) -> Degree {
        Degree(self.0.saturating_sub(used.0))
    }

    /// Increments the degree by one stream.
    pub fn increment(&mut self) {
        self.0 += 1;
    }

    /// Decrements the degree by one stream, saturating at zero.
    pub fn decrement(&mut self) {
        self.0 = self.0.saturating_sub(1);
    }

    /// Returns true if the degree is zero streams.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for Degree {
    type Output = Degree;

    fn add(self, rhs: Degree) -> Degree {
        Degree(self.0 + rhs.0)
    }
}

impl AddAssign for Degree {
    fn add_assign(&mut self, rhs: Degree) {
        self.0 += rhs.0;
    }
}

impl Sum for Degree {
    fn sum<I: Iterator<Item = Degree>>(iter: I) -> Degree {
        iter.fold(Degree::ZERO, Add::add)
    }
}

impl fmt::Display for Degree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} streams", self.0)
    }
}

impl From<u32> for Degree {
    fn from(n: u32) -> Self {
        Degree(n)
    }
}

/// A stream bit rate in bits per second.
///
/// Used by the dissemination simulator and the live network substrate to
/// model serialization delay. The paper measures compressed 3D streams at
/// 5–10 Mbps (Section 5.1) and raw streams at ≈180 Mbps (Section 1).
///
/// # Examples
///
/// ```
/// use teeve_types::BitRate;
///
/// let r = BitRate::from_mbps(8);
/// assert_eq!(r.bits_per_sec(), 8_000_000);
/// // An 80 kB frame at 8 Mbps takes 80 ms to serialize.
/// assert_eq!(r.transmit_micros(80_000), 80_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct BitRate(u64);

impl BitRate {
    /// Creates a bit rate of `bps` bits per second.
    pub const fn new(bps: u64) -> Self {
        BitRate(bps)
    }

    /// Creates a bit rate of `mbps` megabits per second.
    pub const fn from_mbps(mbps: u64) -> Self {
        BitRate(mbps * 1_000_000)
    }

    /// Returns the rate in bits per second.
    pub const fn bits_per_sec(self) -> u64 {
        self.0
    }

    /// Returns the time, in microseconds, to transmit `bytes` bytes at this
    /// rate, rounded up.
    ///
    /// # Panics
    ///
    /// Panics if the rate is zero.
    pub const fn transmit_micros(self, bytes: u64) -> u64 {
        let bits = bytes * 8;
        (bits * 1_000_000).div_ceil(self.0)
    }
}

impl fmt::Display for BitRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_multiple_of(1_000_000) {
            write!(f, "{}Mbps", self.0 / 1_000_000)
        } else {
            write!(f, "{}bps", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_addition_and_comparison() {
        let bound = CostMs::new(10);
        let path = CostMs::new(4) + CostMs::new(5);
        assert!(path < bound);
        assert_eq!((path + CostMs::new(1)), bound);
    }

    #[test]
    fn cost_saturating_add_never_wraps() {
        assert_eq!(CostMs::MAX.saturating_add(CostMs::new(1)), CostMs::MAX);
        assert_eq!(
            CostMs::new(1).saturating_add(CostMs::new(2)),
            CostMs::new(3)
        );
    }

    #[test]
    fn cost_sums_over_iterators() {
        let total: CostMs = [1u32, 2, 3].into_iter().map(CostMs::new).sum();
        assert_eq!(total, CostMs::new(6));
    }

    #[test]
    fn degree_remaining_saturates() {
        assert_eq!(
            Degree::new(5).remaining(Degree::new(7)),
            Degree::ZERO,
            "over-use clamps to zero remaining"
        );
        assert_eq!(Degree::new(7).remaining(Degree::new(5)), Degree::new(2));
    }

    #[test]
    fn degree_increment_decrement() {
        let mut d = Degree::ZERO;
        d.increment();
        d.increment();
        assert_eq!(d, Degree::new(2));
        d.decrement();
        assert_eq!(d, Degree::new(1));
        d.decrement();
        d.decrement();
        assert_eq!(d, Degree::ZERO, "decrement saturates at zero");
    }

    #[test]
    fn bitrate_transmit_time_rounds_up() {
        let r = BitRate::new(1_000_000); // 1 Mbps
                                         // 1 byte = 8 bits -> 8 microseconds at 1 Mbps.
        assert_eq!(r.transmit_micros(1), 8);
        // 125_000 bytes = 1_000_000 bits -> exactly one second.
        assert_eq!(r.transmit_micros(125_000), 1_000_000);
        // One extra bit's worth rounds up, never down.
        let r3 = BitRate::new(3);
        assert_eq!(r3.transmit_micros(1), 2_666_667);
    }

    #[test]
    fn display_formats() {
        assert_eq!(CostMs::new(12).to_string(), "12ms");
        assert_eq!(Degree::new(3).to_string(), "3 streams");
        assert_eq!(BitRate::from_mbps(10).to_string(), "10Mbps");
        assert_eq!(BitRate::new(1500).to_string(), "1500bps");
    }

    #[test]
    fn units_serde_roundtrip() {
        let c = CostMs::new(42);
        let d = Degree::new(20);
        let r = BitRate::from_mbps(5);
        assert_eq!(
            serde_json::from_str::<CostMs>(&serde_json::to_string(&c).unwrap()).unwrap(),
            c
        );
        assert_eq!(
            serde_json::from_str::<Degree>(&serde_json::to_string(&d).unwrap()).unwrap(),
            d
        );
        assert_eq!(
            serde_json::from_str::<BitRate>(&serde_json::to_string(&r).unwrap()).unwrap(),
            r
        );
    }
}
