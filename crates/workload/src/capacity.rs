//! Node resource distributions (paper Section 5.1, "Node Resource
//! Distribution").

use rand::Rng;
use serde::{Deserialize, Serialize};
use teeve_overlay::NodeCapacity;
use teeve_types::Degree;

/// Sampled per-session node resources: bandwidth capacities and the number
/// of streams each site publishes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeResources {
    /// Per-site inbound/outbound limits, in site order.
    pub capacities: Vec<NodeCapacity>,
    /// Per-site published stream counts, in site order.
    pub streams_per_site: Vec<u32>,
}

/// The paper's two node resource distributions, plus an explicit escape
/// hatch.
///
/// * **Uniform**: `O_i = I_i = 20 ± ε` with `ε` uniform in `[0, 5]`
///   (realized as an integer capacity uniform in `[15, 25]`); every site
///   publishes 20 streams.
/// * **Heterogeneous**: 50% of sites get capacity 30, 25% get 20, 25% get
///   10; stream counts are uniform in `[10, 30]`.
///
/// These numbers mirror the paper's measurements on Internet2: site
/// bandwidth of 40–150 Mbps against compressed 3D streams of 5–10 Mbps
/// yields capacities of roughly 10–30 streams.
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use teeve_workload::CapacityModel;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let res = CapacityModel::Uniform.sample(5, &mut rng);
/// assert_eq!(res.capacities.len(), 5);
/// assert!(res.streams_per_site.iter().all(|&m| m == 20));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CapacityModel {
    /// Uniform capacities `20 ± ε`, 20 streams per site.
    Uniform,
    /// 50/25/25% mix of capacities 30/20/10, streams uniform in `[10, 30]`.
    Heterogeneous,
    /// Explicit resources, for tests and custom scenarios.
    Explicit(NodeResources),
}

impl CapacityModel {
    /// Base capacity of the uniform model.
    pub const UNIFORM_BASE: u32 = 20;
    /// Maximum jitter `ε` of the uniform model.
    pub const UNIFORM_JITTER: u32 = 5;
    /// Streams published per site under the uniform model.
    pub const UNIFORM_STREAMS: u32 = 20;

    /// Samples resources for an `n`-site session.
    ///
    /// Heterogeneous class counts follow the paper's proportions with
    /// largest-remainder rounding, and the class-to-site assignment is
    /// shuffled so no site index is systematically privileged.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero, or if an [`CapacityModel::Explicit`] model's
    /// tables do not have length `n`.
    pub fn sample<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> NodeResources {
        assert!(n > 0, "a session needs at least one site");
        match self {
            CapacityModel::Uniform => {
                let capacities = (0..n)
                    .map(|_| {
                        let lo = Self::UNIFORM_BASE - Self::UNIFORM_JITTER;
                        let hi = Self::UNIFORM_BASE + Self::UNIFORM_JITTER;
                        NodeCapacity::symmetric(Degree::new(rng.gen_range(lo..=hi)))
                    })
                    .collect();
                NodeResources {
                    capacities,
                    streams_per_site: vec![Self::UNIFORM_STREAMS; n],
                }
            }
            CapacityModel::Heterogeneous => {
                // 50% large (30), 25% medium (20), 25% small (10), with
                // largest-remainder rounding so odd session sizes stay as
                // close to the target proportions as possible.
                let quotas = [(30u32, 0.50f64), (20, 0.25), (10, 0.25)];
                let mut counts: Vec<(u32, usize, f64)> = quotas
                    .iter()
                    .map(|&(cap, share)| {
                        let ideal = share * n as f64;
                        (cap, ideal.floor() as usize, ideal.fract())
                    })
                    .collect();
                let mut assigned: usize = counts.iter().map(|&(_, c, _)| c).sum();
                // Hand leftover slots to the largest fractional remainders.
                counts.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite"));
                let classes_len = counts.len();
                let mut idx = 0;
                while assigned < n {
                    counts[idx % classes_len].1 += 1;
                    assigned += 1;
                    idx += 1;
                }
                let mut classes: Vec<u32> = Vec::with_capacity(n);
                for (cap, count, _) in counts {
                    classes.extend(std::iter::repeat_n(cap, count));
                }
                use rand::seq::SliceRandom;
                classes.shuffle(rng);
                let capacities = classes
                    .into_iter()
                    .map(|c| NodeCapacity::symmetric(Degree::new(c)))
                    .collect();
                let streams_per_site = (0..n).map(|_| rng.gen_range(10..=30)).collect();
                NodeResources {
                    capacities,
                    streams_per_site,
                }
            }
            CapacityModel::Explicit(res) => {
                assert_eq!(
                    res.capacities.len(),
                    n,
                    "explicit capacities must cover n sites"
                );
                assert_eq!(
                    res.streams_per_site.len(),
                    n,
                    "explicit stream counts must cover n sites"
                );
                res.clone()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn uniform_capacities_stay_in_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let res = CapacityModel::Uniform.sample(100, &mut rng);
        for cap in &res.capacities {
            let c = cap.inbound.count();
            assert!((15..=25).contains(&c), "capacity {c} out of 20±5");
            assert_eq!(cap.inbound, cap.outbound, "O_i = I_i");
        }
        assert!(res.streams_per_site.iter().all(|&m| m == 20));
    }

    #[test]
    fn heterogeneous_mix_matches_proportions() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let res = CapacityModel::Heterogeneous.sample(8, &mut rng);
        let mut counts = std::collections::HashMap::new();
        for cap in &res.capacities {
            *counts.entry(cap.outbound.count()).or_insert(0usize) += 1;
        }
        assert_eq!(counts.get(&30), Some(&4), "50% large");
        assert_eq!(counts.get(&20), Some(&2), "25% medium");
        assert_eq!(counts.get(&10), Some(&2), "25% small");
        for &m in &res.streams_per_site {
            assert!((10..=30).contains(&m));
        }
    }

    #[test]
    fn heterogeneous_handles_odd_session_sizes() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for n in 3..=10 {
            let res = CapacityModel::Heterogeneous.sample(n, &mut rng);
            assert_eq!(res.capacities.len(), n);
            let total: u32 = res.capacities.iter().map(|c| c.outbound.count()).sum();
            assert!(total >= 10 * n as u32);
            assert!(total <= 30 * n as u32);
        }
    }

    #[test]
    fn heterogeneous_assignment_is_shuffled() {
        // Across seeds, site 0 must not always receive the same class.
        let mut seen = std::collections::HashSet::new();
        for seed in 0..20 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let res = CapacityModel::Heterogeneous.sample(8, &mut rng);
            seen.insert(res.capacities[0].outbound.count());
        }
        assert!(seen.len() > 1, "site 0 always got the same class");
    }

    #[test]
    fn explicit_model_is_passed_through() {
        let explicit = NodeResources {
            capacities: vec![NodeCapacity::symmetric(Degree::new(7)); 3],
            streams_per_site: vec![1, 2, 3],
        };
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let res = CapacityModel::Explicit(explicit.clone()).sample(3, &mut rng);
        assert_eq!(res, explicit);
    }

    #[test]
    #[should_panic(expected = "cover n sites")]
    fn explicit_model_validates_length() {
        let explicit = NodeResources {
            capacities: vec![NodeCapacity::symmetric(Degree::new(7)); 2],
            streams_per_site: vec![1, 2],
        };
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let _ = CapacityModel::Explicit(explicit).sample(3, &mut rng);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let a = CapacityModel::Heterogeneous.sample(6, &mut ChaCha8Rng::seed_from_u64(9));
        let b = CapacityModel::Heterogeneous.sample(6, &mut ChaCha8Rng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
