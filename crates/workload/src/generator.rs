//! Subscription workload generation: combines a popularity model and a
//! capacity model into complete [`ProblemInstance`]s.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use teeve_overlay::{ProblemError, ProblemInstance};
use teeve_types::{CostMatrix, CostMs, SiteId, StreamId};

use crate::{CapacityModel, PopularityModel};

/// A complete workload configuration: the paper's simulation setup minus
/// the topology (which is provided as a cost matrix at generation time).
///
/// # Examples
///
/// ```
/// use rand::SeedableRng;
/// use teeve_types::{CostMatrix, CostMs};
/// use teeve_workload::WorkloadConfig;
///
/// let costs = CostMatrix::from_fn(5, |i, j| CostMs::new(5 + (i + j) as u32));
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
/// let problem = WorkloadConfig::zipf_uniform().generate(&costs, &mut rng)?;
/// assert_eq!(problem.site_count(), 5);
/// assert!(problem.total_requests() > 0);
/// # Ok::<(), teeve_overlay::ProblemError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Stream popularity model (Zipf vs random).
    pub popularity: PopularityModel,
    /// Node resource distribution (uniform vs heterogeneous).
    pub capacity: CapacityModel,
    /// Interactivity bound `B_cost` for the generated problems.
    pub cost_bound: CostMs,
}

impl WorkloadConfig {
    /// Default interactivity bound: 60 ms end-to-end.
    ///
    /// Calibration: on the North-American backbone every *direct* site pair
    /// is feasible (max pairwise cost ≈ 45 ms), but relaying chains of
    /// depth 2–3 across the continent are not — so the latency constraint
    /// genuinely shapes tree construction, as in the paper's worked
    /// examples where the bound binds at depth two.
    pub const DEFAULT_COST_BOUND: CostMs = CostMs::new(60);

    /// Paper setup: Zipf workload, uniform nodes (Figure 8(b)).
    pub fn zipf_uniform() -> Self {
        WorkloadConfig {
            popularity: PopularityModel::paper_zipf(),
            capacity: CapacityModel::Uniform,
            cost_bound: Self::DEFAULT_COST_BOUND,
        }
    }

    /// Paper setup: Zipf workload, heterogeneous nodes (Figure 8(a), 11).
    pub fn zipf_heterogeneous() -> Self {
        WorkloadConfig {
            popularity: PopularityModel::paper_zipf(),
            capacity: CapacityModel::Heterogeneous,
            cost_bound: Self::DEFAULT_COST_BOUND,
        }
    }

    /// Paper setup: random workload, uniform nodes (Figures 8(d), 9, 10).
    pub fn random_uniform() -> Self {
        WorkloadConfig {
            popularity: PopularityModel::paper_random(),
            capacity: CapacityModel::Uniform,
            cost_bound: Self::DEFAULT_COST_BOUND,
        }
    }

    /// Paper setup: random workload, heterogeneous nodes (Figure 8(c)).
    pub fn random_heterogeneous() -> Self {
        WorkloadConfig {
            popularity: PopularityModel::paper_random(),
            capacity: CapacityModel::Heterogeneous,
            cost_bound: Self::DEFAULT_COST_BOUND,
        }
    }

    /// Overrides the interactivity bound.
    #[must_use]
    pub fn with_cost_bound(mut self, bound: CostMs) -> Self {
        self.cost_bound = bound;
        self
    }

    /// Generates one subscription workload sample over the session whose
    /// pairwise latencies are `costs`.
    ///
    /// Process, mirroring the paper's setup:
    ///
    /// 1. sample per-site capacities and stream counts from the capacity
    ///    model;
    /// 2. assign every published stream a global popularity rank (uniformly
    ///    at random — any camera may be the popular one);
    /// 3. each site subscribes to each *remote* stream independently with
    ///    the rank's probability.
    ///
    /// # Errors
    ///
    /// Returns an error if the session has fewer than three sites.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        costs: &CostMatrix,
        rng: &mut R,
    ) -> Result<ProblemInstance, ProblemError> {
        let n = costs.len();
        if n < 3 {
            return Err(ProblemError::TooFewSites { sites: n });
        }
        let resources = self.capacity.sample(n, rng);

        // Enumerate all streams and assign global popularity ranks.
        let mut streams: Vec<StreamId> = (0..n)
            .flat_map(|j| {
                let site = SiteId::new(j as u32);
                (0..resources.streams_per_site[j]).map(move |q| StreamId::new(site, q))
            })
            .collect();
        streams.shuffle(rng);
        let probs = self.popularity.stream_probabilities(streams.len(), rng);

        let mut builder = ProblemInstance::builder(costs.clone(), self.cost_bound)
            .capacities(resources.capacities)
            .streams_per_site(&resources.streams_per_site);
        for (stream, &p) in streams.iter().zip(&probs) {
            if p == 0.0 {
                continue;
            }
            for subscriber in SiteId::all(n) {
                if subscriber == stream.origin() {
                    continue;
                }
                if rng.gen_bool(p) {
                    builder = builder.subscribe(subscriber, *stream);
                }
            }
        }
        builder.build()
    }

    /// Generates `count` independent workload samples (the paper uses 200
    /// per configuration).
    ///
    /// # Errors
    ///
    /// Returns the first generation error, if any.
    pub fn generate_many<R: Rng + ?Sized>(
        &self,
        costs: &CostMatrix,
        count: usize,
        rng: &mut R,
    ) -> Result<Vec<ProblemInstance>, ProblemError> {
        (0..count).map(|_| self.generate(costs, rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn costs(n: usize) -> CostMatrix {
        CostMatrix::from_fn(n, |i, j| CostMs::new(4 + ((i * 3 + j) % 7) as u32))
    }

    #[test]
    fn generates_paper_scale_problems() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for n in 3..=10 {
            let problem = WorkloadConfig::zipf_uniform()
                .generate(&costs(n), &mut rng)
                .unwrap();
            assert_eq!(problem.site_count(), n);
            // Uniform model publishes 20 streams per site.
            for site in SiteId::all(n) {
                assert_eq!(problem.streams_of(site), 20);
            }
        }
    }

    #[test]
    fn demand_tracks_the_popularity_calibration() {
        // Mean per-site demand should approximate the model's expected
        // demand over remote streams.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 10;
        let cfg = WorkloadConfig::zipf_uniform();
        let mut total_requests = 0usize;
        let samples = 30;
        for _ in 0..samples {
            let p = cfg.generate(&costs(n), &mut rng).unwrap();
            total_requests += p.total_requests();
        }
        let mean_per_site = total_requests as f64 / (samples * n) as f64;
        // 200 streams total, 180 remote per site; expected demand scaled by
        // the remote fraction (9/10).
        let expected = PopularityModel::paper_zipf().expected_demand(200) * 0.9;
        assert!(
            (mean_per_site - expected).abs() < 3.0,
            "mean demand {mean_per_site:.1} should be near {expected:.1}"
        );
    }

    #[test]
    fn no_self_subscriptions_are_generated() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let problem = WorkloadConfig::random_heterogeneous()
            .generate(&costs(6), &mut rng)
            .unwrap();
        for r in problem.requests() {
            assert_ne!(r.subscriber, r.stream.origin());
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = WorkloadConfig::zipf_heterogeneous();
        let a = cfg
            .generate(&costs(5), &mut ChaCha8Rng::seed_from_u64(11))
            .unwrap();
        let b = cfg
            .generate(&costs(5), &mut ChaCha8Rng::seed_from_u64(11))
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn zipf_concentrates_popularity_more_than_flat() {
        // Count, per sample, the size of the largest multicast group; Zipf
        // should produce larger top groups on average.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let n = 8;
        let mut zipf_top = 0usize;
        let mut flat_top = 0usize;
        for _ in 0..20 {
            let z = WorkloadConfig::zipf_uniform()
                .generate(&costs(n), &mut rng)
                .unwrap();
            zipf_top += z.groups().iter().map(|g| g.len()).max().unwrap_or(0);
            let f = WorkloadConfig::random_uniform()
                .generate(&costs(n), &mut rng)
                .unwrap();
            flat_top += f.groups().iter().map(|g| g.len()).max().unwrap_or(0);
        }
        assert!(
            zipf_top >= flat_top,
            "zipf top-group mass {zipf_top} should exceed flat {flat_top}"
        );
    }

    #[test]
    fn generate_many_produces_independent_samples() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let samples = WorkloadConfig::zipf_uniform()
            .generate_many(&costs(4), 5, &mut rng)
            .unwrap();
        assert_eq!(samples.len(), 5);
        // With overwhelming probability at this scale, not all identical.
        assert!(samples.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn rejects_too_small_sessions() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let err = WorkloadConfig::zipf_uniform()
            .generate(&costs(2), &mut rng)
            .unwrap_err();
        assert!(matches!(err, ProblemError::TooFewSites { .. }));
    }

    #[test]
    fn config_serde_roundtrip() {
        let cfg = WorkloadConfig::random_heterogeneous();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: WorkloadConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }
}
