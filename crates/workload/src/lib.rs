//! Subscription workload generation for the TEEVE reproduction (paper
//! Section 5.1).
//!
//! A workload sample fixes, for one simulated 3DTI session:
//!
//! * per-site node resources — bandwidth capacities in streams and the
//!   number of published streams ([`CapacityModel`]: the paper's *uniform*
//!   and *heterogeneous* distributions);
//! * which sites subscribe to which streams ([`PopularityModel`]: the
//!   paper's *Zipf-distributed* and *random* workloads).
//!
//! [`WorkloadConfig`] combines the two and emits ready-to-solve
//! [`ProblemInstance`]s; [`SubscriptionTrace`] persists sample batches so
//! experiments are regenerable artifacts.
//!
//! # Examples
//!
//! ```
//! use rand::SeedableRng;
//! use teeve_types::{CostMatrix, CostMs};
//! use teeve_workload::WorkloadConfig;
//!
//! // Figure 8(a)'s setup: Zipf workload over heterogeneous nodes.
//! let costs = CostMatrix::from_fn(6, |i, j| CostMs::new(5 + (i ^ j) as u32));
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2008);
//! let samples = WorkloadConfig::zipf_heterogeneous()
//!     .generate_many(&costs, 10, &mut rng)?;
//! assert_eq!(samples.len(), 10);
//! # Ok::<(), teeve_overlay::ProblemError>(())
//! ```
//!
//! [`ProblemInstance`]: teeve_overlay::ProblemInstance

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod capacity;
mod generator;
mod popularity;
mod trace;

pub use capacity::{CapacityModel, NodeResources};
pub use generator::WorkloadConfig;
pub use popularity::PopularityModel;
pub use trace::{SubscriptionTrace, TraceError};
