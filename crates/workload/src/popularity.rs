//! Stream popularity models: Zipf-distributed and flat/random
//! (paper Section 5.1, "Subscription Workloads").

use serde::{Deserialize, Serialize};

/// How likely each stream is to be subscribed, as a function of its global
/// popularity rank.
///
/// The paper evaluates two workload families:
///
/// * **Zipf-distributed** — stream popularity in multimedia systems follows
///   a Zipf-like law, and intuitively so in 3DTI: "the front cameras that
///   capture people's faces are likely to be subscribed by most sites".
/// * **Random** — all streams roughly equally popular, as in surveillance
///   or group collaboration.
///
/// All models expose the same knob: the *interest mass* `c`. Under Zipf
/// the stream of global rank `r` is subscribed by any given remote site
/// with probability `min(1, (c / r^α))`; the other models match its
/// **expected total demand**, so the workload families are directly
/// comparable (same expected demand, different concentration).
///
/// The calibration (see `DESIGN.md`) reproduces the paper's regime: a
/// *dense* session where "a participant typically wants to see a large
/// portion of other participants" — the popular streams are subscribed by
/// almost every site (big multicast groups), a long tail goes
/// unsubscribed (leaving the relay headroom behind Figure 10's ≈25%
/// relay share), and per-site demand exceeds inbound capacity more and
/// more as sites join (driving Figure 8's rejection growth).
///
/// # Examples
///
/// ```
/// use teeve_workload::PopularityModel;
///
/// let zipf = PopularityModel::zipf(3.0, 6.0);
/// let probs = zipf.rank_probabilities(100);
/// assert_eq!(probs.len(), 100);
/// assert!(probs[0] > probs[99], "rank 1 is most popular");
///
/// let flat = PopularityModel::flat_matched(3.0, 6.0);
/// let zipf_demand = zipf.expected_demand(100);
/// let flat_demand = flat.expected_demand(100);
/// assert!((zipf_demand - flat_demand).abs() < 1e-9, "matched expected demand");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PopularityModel {
    /// Zipf-like popularity: rank `r` gets probability `min(1, mass/r^alpha)`.
    Zipf {
        /// Skew exponent `α` (1.0 = classic Zipf).
        alpha: f64,
        /// Interest mass `c`; larger means more total demand.
        mass: f64,
    },
    /// Equal popularity for all streams, with the total expected demand of
    /// the Zipf model with the same parameters.
    FlatMatched {
        /// Skew exponent of the Zipf model being matched.
        alpha: f64,
        /// Interest mass of the Zipf model being matched.
        mass: f64,
    },
    /// The paper's "random" workload: a randomly *activated* subset of
    /// streams, all equally popular ("the streams have more or less
    /// similar popularity"); inactive streams are subscribed by nobody.
    ///
    /// Each stream is active with a probability chosen so that the
    /// expected total demand matches `Zipf { alpha, mass }`; every active
    /// stream is subscribed by each remote site independently with
    /// probability `subscribe_probability`. The two-stage sampling
    /// correlates subscriptions across sites (everyone watches the same
    /// active feeds), preserving the dense-group regime under a
    /// popularity-agnostic draw.
    ActiveUniform {
        /// Skew exponent of the Zipf model whose demand is matched.
        alpha: f64,
        /// Interest mass of the Zipf model whose demand is matched.
        mass: f64,
        /// Subscription probability of active streams.
        subscribe_probability: f64,
    },
}

impl PopularityModel {
    /// The paper-calibrated default interest mass (see `DESIGN.md`,
    /// "Demand calibration"): with [`Self::DEFAULT_ALPHA`], the
    /// `mass^(1/alpha) = 20` most popular streams are subscribed by
    /// (nearly) every site.
    pub const DEFAULT_MASS: f64 = 8000.0;
    /// Default Zipf skew exponent.
    ///
    /// Calibrated steep (3.0) so that, together with
    /// [`Self::DEFAULT_MASS`], a head of ≈20 globally popular streams is
    /// subscribed by every site while the tail stays unsubscribed —
    /// keeping each site's pending-stream count `m_i` well below its
    /// out-degree so relaying is possible (Figure 10), and per-site
    /// demand grows past inbound capacity as sites join (Figure 8).
    pub const DEFAULT_ALPHA: f64 = 3.0;

    /// Creates a Zipf popularity model.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is negative or `mass` is not positive.
    pub fn zipf(alpha: f64, mass: f64) -> Self {
        assert!(alpha >= 0.0, "alpha must be non-negative");
        assert!(mass > 0.0, "mass must be positive");
        PopularityModel::Zipf { alpha, mass }
    }

    /// Creates a flat model matching the expected demand of
    /// `PopularityModel::zipf(alpha, mass)`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is negative or `mass` is not positive.
    pub fn flat_matched(alpha: f64, mass: f64) -> Self {
        assert!(alpha >= 0.0, "alpha must be non-negative");
        assert!(mass > 0.0, "mass must be positive");
        PopularityModel::FlatMatched { alpha, mass }
    }

    /// The paper's Zipf workload with default calibration.
    pub fn paper_zipf() -> Self {
        PopularityModel::zipf(Self::DEFAULT_ALPHA, Self::DEFAULT_MASS)
    }

    /// Subscription probability of active streams under the default
    /// random workload.
    pub const DEFAULT_ACTIVE_P: f64 = 0.85;

    /// The paper's random workload with default calibration: an active
    /// subset of streams, uniformly popular, demand-matched to
    /// [`PopularityModel::paper_zipf`].
    pub fn paper_random() -> Self {
        PopularityModel::ActiveUniform {
            alpha: Self::DEFAULT_ALPHA,
            mass: Self::DEFAULT_MASS,
            subscribe_probability: Self::DEFAULT_ACTIVE_P,
        }
    }

    /// A flat workload matched to the default Zipf demand (every stream
    /// equally, mildly popular). Kept as a comparison point for the
    /// ablation benches; not one of the paper's two workload families.
    pub fn paper_flat() -> Self {
        PopularityModel::flat_matched(Self::DEFAULT_ALPHA, Self::DEFAULT_MASS)
    }

    /// Creates an active-uniform model: streams activate with a
    /// probability matched to `Zipf { alpha, mass }` demand; active
    /// streams are subscribed with probability `subscribe_probability`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is negative, `mass` is not positive, or
    /// `subscribe_probability` is outside `(0, 1]`.
    pub fn active_uniform(alpha: f64, mass: f64, subscribe_probability: f64) -> Self {
        assert!(alpha >= 0.0, "alpha must be non-negative");
        assert!(mass > 0.0, "mass must be positive");
        assert!(
            subscribe_probability > 0.0 && subscribe_probability <= 1.0,
            "subscribe_probability must be in (0, 1]"
        );
        PopularityModel::ActiveUniform {
            alpha,
            mass,
            subscribe_probability,
        }
    }

    /// Returns the per-stream subscription probabilities for `m` streams,
    /// sampling any stochastic structure (e.g. which streams are active)
    /// with `rng`. Index 0 is global rank 1. All values are in `[0, 1]`.
    pub fn stream_probabilities<R: rand::Rng + ?Sized>(&self, m: usize, rng: &mut R) -> Vec<f64> {
        match *self {
            PopularityModel::Zipf { .. } | PopularityModel::FlatMatched { .. } => {
                self.rank_probabilities(m)
            }
            PopularityModel::ActiveUniform {
                alpha,
                mass,
                subscribe_probability,
            } => {
                if m == 0 {
                    return Vec::new();
                }
                let target = zipf_mass(alpha, mass, m);
                let activation = (target / (subscribe_probability * m as f64)).min(1.0);
                (0..m)
                    .map(|_| {
                        if rng.gen_bool(activation) {
                            subscribe_probability
                        } else {
                            0.0
                        }
                    })
                    .collect()
            }
        }
    }

    /// Returns the deterministic per-rank probabilities of the
    /// rank-structured models.
    ///
    /// # Panics
    ///
    /// Panics for [`PopularityModel::ActiveUniform`], whose per-stream
    /// probabilities are stochastic — use
    /// [`PopularityModel::stream_probabilities`].
    pub fn rank_probabilities(&self, m: usize) -> Vec<f64> {
        match *self {
            PopularityModel::Zipf { alpha, mass } => (1..=m)
                .map(|r| (mass / (r as f64).powf(alpha)).min(1.0))
                .collect(),
            PopularityModel::FlatMatched { alpha, mass } => {
                if m == 0 {
                    return Vec::new();
                }
                let total = zipf_mass(alpha, mass, m);
                vec![(total / m as f64).min(1.0); m]
            }
            PopularityModel::ActiveUniform { .. } => {
                panic!("ActiveUniform probabilities are stochastic; use stream_probabilities")
            }
        }
    }

    /// Returns the expected number of subscriptions a single remote site
    /// makes when `m` streams are available.
    pub fn expected_demand(&self, m: usize) -> f64 {
        match *self {
            PopularityModel::Zipf { alpha, mass }
            | PopularityModel::FlatMatched { alpha, mass } => zipf_mass(alpha, mass, m),
            PopularityModel::ActiveUniform {
                alpha,
                mass,
                subscribe_probability,
            } => {
                if m == 0 {
                    return 0.0;
                }
                let target = zipf_mass(alpha, mass, m);
                let activation = (target / (subscribe_probability * m as f64)).min(1.0);
                activation * subscribe_probability * m as f64
            }
        }
    }
}

/// Expected total demand of `Zipf { alpha, mass }` over `m` streams.
fn zipf_mass(alpha: f64, mass: f64, m: usize) -> f64 {
    (1..=m)
        .map(|r| (mass / (r as f64).powf(alpha)).min(1.0))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_monotone_decreasing() {
        let probs = PopularityModel::paper_zipf().rank_probabilities(50);
        for w in probs.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn probabilities_are_clamped_to_one() {
        let probs = PopularityModel::zipf(1.0, 100.0).rank_probabilities(10);
        assert!(probs.iter().all(|&p| (0.0..=1.0).contains(&p)));
        assert_eq!(probs[0], 1.0, "head rank saturates at probability 1");
    }

    #[test]
    fn flat_model_is_uniform() {
        let probs = PopularityModel::paper_flat().rank_probabilities(40);
        assert!(probs.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-15));
    }

    #[test]
    fn active_uniform_streams_are_all_or_nothing() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let probs = PopularityModel::paper_random().stream_probabilities(200, &mut rng);
        assert_eq!(probs.len(), 200);
        let p = PopularityModel::DEFAULT_ACTIVE_P;
        assert!(probs.iter().all(|&x| x == 0.0 || (x - p).abs() < 1e-15));
        let active = probs.iter().filter(|&&x| x > 0.0).count();
        assert!(active > 0, "some streams must be active");
        assert!(active < 200, "not every stream should be active");
    }

    #[test]
    fn active_uniform_demand_matches_zipf_in_expectation() {
        use rand::SeedableRng;
        let model = PopularityModel::paper_random();
        let target = PopularityModel::paper_zipf().expected_demand(200);
        assert!((model.expected_demand(200) - target).abs() < 1e-9);
        // Empirical check over seeds.
        let mut total = 0.0;
        for seed in 0..50 {
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            total += model
                .stream_probabilities(200, &mut rng)
                .iter()
                .sum::<f64>();
        }
        let mean = total / 50.0;
        assert!(
            (mean - target).abs() < target * 0.2,
            "empirical mass {mean:.1} should approximate {target:.1}"
        );
    }

    #[test]
    #[should_panic(expected = "stochastic")]
    fn rank_probabilities_rejects_active_uniform() {
        let _ = PopularityModel::paper_random().rank_probabilities(10);
    }

    #[test]
    fn matched_models_share_expected_demand() {
        // (small m is excluded: the activation probability caps at 1.)
        for m in [50usize, 100, 200] {
            let zipf = PopularityModel::paper_zipf().expected_demand(m);
            for other in [
                PopularityModel::paper_flat(),
                PopularityModel::paper_random(),
            ] {
                let d = other.expected_demand(m);
                assert!(
                    (zipf - d).abs() < 1e-9,
                    "m={m}: zipf {zipf} vs {other:?} {d}"
                );
            }
        }
    }

    #[test]
    fn demand_grows_sublinearly_with_stream_count() {
        let model = PopularityModel::paper_zipf();
        let d40 = model.expected_demand(40);
        let d180 = model.expected_demand(180);
        assert!(d180 > d40, "more streams, more demand");
        assert!(
            d180 < 2.0 * d40,
            "demand grows logarithmically, not linearly: {d40} -> {d180}"
        );
    }

    #[test]
    fn paper_calibration_is_in_capacity_range() {
        // With the paper's uniform capacity (≈20-22.5 inbound streams), the
        // calibrated demand must move from "barely contended" at N=3 to
        // "clearly over capacity" at N=10 to reproduce Figure 8's range.
        // Per-site demand = expected demand over all M streams, scaled by
        // the remote fraction (N-1)/N.
        let model = PopularityModel::paper_zipf();
        let at_n3 = model.expected_demand(60) * 2.0 / 3.0;
        let at_n10 = model.expected_demand(200) * 0.9;
        assert!(
            (16.0..=23.0).contains(&at_n3),
            "N=3 demand {at_n3} should sit just below capacity"
        );
        assert!(
            (23.0..=32.0).contains(&at_n10),
            "N=10 demand {at_n10} should exceed capacity"
        );
    }

    #[test]
    fn empty_stream_set_is_handled() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        assert!(PopularityModel::paper_zipf()
            .rank_probabilities(0)
            .is_empty());
        assert!(PopularityModel::paper_random()
            .stream_probabilities(0, &mut rng)
            .is_empty());
        assert_eq!(PopularityModel::paper_random().expected_demand(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "mass")]
    fn rejects_nonpositive_mass() {
        let _ = PopularityModel::zipf(1.0, 0.0);
    }

    #[test]
    fn serde_roundtrip() {
        let m = PopularityModel::paper_zipf();
        let json = serde_json::to_string(&m).unwrap();
        let back: PopularityModel = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
