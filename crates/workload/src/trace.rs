//! Persisted workload traces: regenerable experiment inputs.
//!
//! The paper lists collecting real user subscription traces as future work
//! and evaluates on generated workloads; this module makes those generated
//! workloads durable artifacts, so an experiment can be re-run bit-for-bit
//! from its trace file.

use std::fs;
use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};
use teeve_overlay::ProblemInstance;

use crate::WorkloadConfig;

/// A persisted batch of workload samples together with the configuration
/// and seed that produced them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubscriptionTrace {
    /// The generating configuration.
    pub config: WorkloadConfig,
    /// The RNG seed used for generation.
    pub seed: u64,
    /// The generated problem instances.
    pub samples: Vec<ProblemInstance>,
}

/// Error loading or saving a trace.
#[derive(Debug)]
pub enum TraceError {
    /// Filesystem error.
    Io(io::Error),
    /// Malformed trace contents.
    Format(serde_json::Error),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::Format(e) => write!(f, "trace format error: {e}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            TraceError::Format(e) => Some(e),
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

impl From<serde_json::Error> for TraceError {
    fn from(e: serde_json::Error) -> Self {
        TraceError::Format(e)
    }
}

impl SubscriptionTrace {
    /// Creates a trace from already-generated samples.
    pub fn new(config: WorkloadConfig, seed: u64, samples: Vec<ProblemInstance>) -> Self {
        SubscriptionTrace {
            config,
            seed,
            samples,
        }
    }

    /// Serializes the trace as JSON into `writer`.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O or serialization failure.
    pub fn write_json<W: io::Write>(&self, writer: W) -> Result<(), TraceError> {
        serde_json::to_writer(writer, self)?;
        Ok(())
    }

    /// Reads a JSON trace from `reader`.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O or deserialization failure.
    pub fn read_json<R: io::Read>(reader: R) -> Result<Self, TraceError> {
        Ok(serde_json::from_reader(reader)?)
    }

    /// Saves the trace to a file.
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be written.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), TraceError> {
        let file = fs::File::create(path)?;
        self.write_json(io::BufWriter::new(file))
    }

    /// Loads a trace from a file.
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be read or parsed.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        let file = fs::File::open(path)?;
        Self::read_json(io::BufReader::new(file))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use teeve_types::{CostMatrix, CostMs};

    fn sample_trace() -> SubscriptionTrace {
        let costs = CostMatrix::from_fn(4, |i, j| CostMs::new(3 + (i + j) as u32));
        let config = WorkloadConfig::zipf_uniform();
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let samples = config.generate_many(&costs, 3, &mut rng).unwrap();
        SubscriptionTrace::new(config, 99, samples)
    }

    #[test]
    fn json_roundtrip_through_memory() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        trace.write_json(&mut buf).unwrap();
        let back = SubscriptionTrace::read_json(buf.as_slice()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn file_roundtrip() {
        let trace = sample_trace();
        let dir = std::env::temp_dir().join(format!("teeve-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        trace.save(&path).unwrap();
        let back = SubscriptionTrace::load(&path).unwrap();
        assert_eq!(back, trace);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_rejects_garbage() {
        let err = SubscriptionTrace::read_json(&b"not json"[..]).unwrap_err();
        assert!(matches!(err, TraceError::Format(_)));
        assert!(err.to_string().contains("format"));
    }

    #[test]
    fn load_missing_file_is_io_error() {
        let err = SubscriptionTrace::load("/nonexistent/teeve/trace.json").unwrap_err();
        assert!(matches!(err, TraceError::Io(_)));
    }

    #[test]
    fn trace_regenerates_identically_from_seed() {
        let trace = sample_trace();
        let costs = CostMatrix::from_fn(4, |i, j| CostMs::new(3 + (i + j) as u32));
        let mut rng = ChaCha8Rng::seed_from_u64(trace.seed);
        let regenerated = trace
            .config
            .generate_many(&costs, trace.samples.len(), &mut rng)
            .unwrap();
        assert_eq!(regenerated, trace.samples);
    }
}
