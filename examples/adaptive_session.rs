//! Bandwidth adaptation under congestion: a receiving site watches four
//! remote participants, its access link degrades mid-session, and the
//! adaptation loop (the paper's reference [27] substrate) gracefully
//! degrades the least-contributing streams first — then restores them as
//! the link recovers.
//!
//! Run with: `cargo run --example adaptive_session`

use teeve::adapt::{AdaptStream, AdaptiveReceiver, BandwidthEstimator, QualityLadder};
use teeve::geometry::{CyberSpace, FieldOfView, ViewSelector};
use teeve::types::SiteId;

fn main() {
    // 1. A 5-site meeting circle; site 0's display looks across at site 2.
    let space = CyberSpace::meeting_circle(5, 8);
    let eye =
        space.participant_position(SiteId::new(0)) + teeve::geometry::Vec3::new(0.0, 0.0, 1.6);
    let fov = FieldOfView::looking_at(eye, space.participant_position(SiteId::new(2)), 70.0);

    // 2. FOV contribution scores become adaptation priorities.
    let scored = ViewSelector::top_k(6).select(&space, &fov);
    println!("subscribed streams by FOV contribution:");
    for s in &scored {
        println!("  {}  score {:.3}", s.stream, s.score);
    }
    let streams: Vec<AdaptStream> = scored
        .iter()
        .map(|s| AdaptStream {
            stream: s.stream,
            score: s.score,
            ladder: QualityLadder::paper_default(),
        })
        .collect();

    // 3. Drive the loop through a congestion dip: 60 → 18 → 60 Mbps.
    let mut rx = AdaptiveReceiver::new(streams, 0.15).with_estimator(BandwidthEstimator::new(0.5));
    let trace: Vec<(u64, f64)> = (0..30)
        .map(|t| {
            let mbps = match t {
                0..=9 => 60.0,
                10..=19 => 18.0,
                _ => 60.0,
            };
            (t, mbps * 1e6)
        })
        .collect();

    println!("\n t   observed   plan");
    for (t, bps) in trace {
        match rx.observe_bps(bps) {
            Some(plan) => {
                let served: Vec<String> = plan
                    .decisions()
                    .iter()
                    .map(|d| match d.level {
                        Some(0) => format!("{}=full", d.stream),
                        Some(l) => format!("{}=L{l}", d.stream),
                        None => format!("{}=drop", d.stream),
                    })
                    .collect();
                println!(
                    "{t:3}  {:5.1} Mbps  replan → {:.1} Mbps granted, utility {:.2}: {}",
                    bps / 1e6,
                    plan.total_bitrate_bps() as f64 / 1e6,
                    plan.total_utility(),
                    served.join(" ")
                );
            }
            None => println!(
                "{t:3}  {:5.1} Mbps  (within hysteresis, no replan)",
                bps / 1e6
            ),
        }
    }
}
