//! A miniature of the paper's Figure 8: mean rejection ratio vs. number of
//! sites for every construction algorithm, on live-generated workloads.
//!
//! Run with: `cargo run --release --example algorithm_comparison [samples]`
//! (default 25 samples per point; the paper uses 200).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use teeve::overlay::{
    ConstructionAlgorithm, CorrelatedRandomJoin, GranLtf, LargestTreeFirst,
    MinimumCapacityTreeFirst, RandomJoin, SmallestTreeFirst,
};
use teeve::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let samples: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(25);
    let mut rng = ChaCha8Rng::seed_from_u64(2008);
    let topo = teeve::topology::backbone_north_america();

    let gran4 = GranLtf::new(4);
    let algorithms: Vec<&dyn ConstructionAlgorithm> = vec![
        &SmallestTreeFirst,
        &LargestTreeFirst,
        &MinimumCapacityTreeFirst,
        &gran4,
        &RandomJoin,
        &CorrelatedRandomJoin,
    ];

    for (label, config) in [
        (
            "Zipf workload, uniform nodes",
            WorkloadConfig::zipf_uniform(),
        ),
        (
            "Random workload, heterogeneous nodes",
            WorkloadConfig::random_heterogeneous(),
        ),
    ] {
        println!("\n=== {label} ({samples} samples/point) ===");
        print!("{:>3}", "N");
        for algo in &algorithms {
            print!(" {:>9}", algo.name());
        }
        println!();
        for n in 3..=10 {
            let mut totals = vec![0.0; algorithms.len()];
            for _ in 0..samples {
                let session = topo.sample_session(n, &mut rng)?;
                let problem = config.generate(&session.costs, &mut rng)?;
                for (t, algo) in totals.iter_mut().zip(&algorithms) {
                    *t += algo
                        .construct(&problem, &mut rng)
                        .metrics()
                        .rejection_ratio();
                }
            }
            print!("{n:>3}");
            for t in &totals {
                print!(" {:>9.4}", t / samples as f64);
            }
            println!();
        }
    }
    println!(
        "\nThe paper's headline: the simple randomized algorithm (RJ) keeps\n\
         up with or beats every tree-based heuristic while being the\n\
         cheapest to run — no sorting, just a shuffle."
    );
    Ok(())
}
