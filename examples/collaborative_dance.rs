//! Collaborative dance across three cities — the scenario that motivated
//! TEEVE (Yang et al., "A study of collaborative dancing in tele-immersive
//! environments"; the paper's reference [28]).
//!
//! Three dancers — in Urbana, Berkeley, and Miami — share a cyber-space.
//! Each site runs a ring of eight 3D cameras; each dancer's two displays
//! track the *other two* dancers with wide fields of view. The example
//! shows the full path: geometric FOV subscription → overlay construction
//! → simulated dissemination, including the paper's rendering budget
//! analysis (≈10 ms/stream).
//!
//! Run with: `cargo run --example collaborative_dance`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use teeve::geometry::{FieldOfView, Vec3};
use teeve::prelude::*;
use teeve::types::{Degree, DisplayId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = ChaCha8Rng::seed_from_u64(28);

    // Pick the three studio cities from the backbone by name.
    let topo = teeve::topology::backbone_north_america();
    let city_index = |name: &str| {
        (0..topo.node_count())
            .find(|&i| topo.name(i) == name)
            .expect("city in backbone")
    };
    // Urbana isn't a backbone PoP; Chicago is its upstream.
    let pops = vec![
        city_index("Chicago"),
        city_index("Sunnyvale"),
        city_index("Miami"),
    ];
    let session_sample = topo.session_from_pops(pops)?;
    println!(
        "Dance studios (via PoPs): {}",
        session_sample.names.join(", ")
    );
    for i in 0..3 {
        for j in (i + 1)..3 {
            println!(
                "  {} - {}: {}",
                session_sample.names[i],
                session_sample.names[j],
                session_sample
                    .costs
                    .cost(SiteId::new(i as u32), SiteId::new(j as u32))
            );
        }
    }

    // Eight-camera rigs (Figure 4), two displays per dancer, and enough
    // bandwidth for roughly a dozen concurrent streams per site.
    let mut session = Session::builder(session_sample.costs.clone())
        .cameras_per_site(8)
        .displays_per_site(2)
        .symmetric_capacity(Degree::new(12))
        .stream_profile(StreamProfile::compressed_mbps(8))
        .build();

    // Each dancer's display d watches the other dancer (d+1) with a wide
    // FOV from slightly above — the "watch your partner" configuration.
    let n = session.site_count() as u32;
    for site in SiteId::all(3) {
        for d in 0..2u32 {
            let target = SiteId::new((site.index() as u32 + 1 + d) % n);
            let eye = session.space().participant_position(site) + Vec3::new(0.0, 0.0, 2.0);
            let target_pos = session.space().participant_position(target);
            let fov = FieldOfView::looking_at(eye, target_pos, 75.0);
            let picked = session.subscribe_fov(DisplayId::new(site, d), &fov);
            println!(
                "  dancer {site} display {d} tracks {target}: {} streams (best score {:.2})",
                picked.len(),
                picked.first().map_or(0.0, |s| s.score)
            );
        }
    }

    // Construct with CO-RJ: when bandwidth runs short, drop the least
    // critical streams (one of many from the same rig) first.
    let (outcome, plan) = session.build_plan(&CorrelatedRandomJoin, &mut rng)?;
    println!(
        "\nOverlay ({}) - rejection {:.3}, weighted X' {:.4}, deepest tree {} hops",
        outcome.algorithm(),
        outcome.metrics().rejection_ratio(),
        outcome.metrics().weighted_rejection(),
        outcome.metrics().max_tree_depth,
    );

    // Simulate 2 seconds of dancing.
    let report = simulate(&plan, &SimConfig::default());
    println!(
        "Delivered {} frames, ratio {:.3}, worst end-to-end latency {}",
        report.total_frames_delivered(),
        report.delivery_ratio(),
        report.worst_latency()
    );
    for site in SiteId::all(3) {
        let streams = report.streams_rendered().get(&site).copied().unwrap_or(0);
        println!(
            "  dancer {site}: renders {streams} remote streams, {:.0}% of the 66 ms frame budget",
            report.render_utilization(site) * 100.0
        );
    }

    // Interactivity check: the paper's bound is on the overlay path; the
    // simulator adds the one-frame serialization pipeline delay.
    let overlay_part = report.worst_overlay_latency();
    println!(
        "Worst overlay latency {} vs bound {} - {}",
        overlay_part,
        plan.cost_bound(),
        if overlay_part.as_millis_f64() < f64::from(plan.cost_bound().as_millis()) + 70.0
        // relay serialization + overheads
        {
            "interactive"
        } else {
            "too slow"
        }
    );
    Ok(())
}
