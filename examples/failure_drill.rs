//! Failure drill: what a relay crash costs, and how dynamic overlay
//! maintenance recovers.
//!
//! 1. Build a 5-site overlay and find the busiest relay.
//! 2. Inject its crash into the discrete-event simulation and measure the
//!    silenced subtrees.
//! 3. Recover with the dynamic overlay manager: unsubscribe the failed
//!    site's requests and re-attach its orphaned downstreams.
//!
//! Run with: `cargo run --example failure_drill`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use teeve::overlay::{OverlayManager, SubscribeResult};
use teeve::prelude::*;
use teeve::sim::{simulate, simulate_with_faults, FaultImpact, FaultPlan, SimConfig, SimTime};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = ChaCha8Rng::seed_from_u64(505);
    let topo = teeve::topology::backbone_north_america();
    let sample = topo.sample_session(5, &mut rng)?;
    println!("Sites: {}", sample.names.join(", "));

    let problem = WorkloadConfig::zipf_uniform().generate(&sample.costs, &mut rng)?;
    let outcome = RandomJoin.construct(&problem, &mut rng);
    let plan = DisseminationPlan::from_forest(
        &problem,
        outcome.forest(),
        StreamProfile::compressed_mbps(8),
    );

    // The busiest relay: the site forwarding the most non-local copies.
    let relay = SiteId::all(5)
        .max_by_key(|&s| outcome.forest().relay_degree(s))
        .expect("five sites");
    println!(
        "Busiest relay: {} ({}) forwarding {} copies of other sites' streams",
        relay,
        sample.names[relay.index()],
        outcome.forest().relay_degree(relay)
    );

    // Baseline vs. crash at t = 500 ms.
    let config = SimConfig::default();
    let baseline = simulate(&plan, &config);
    let faults = FaultPlan::none().with_crash(relay, SimTime::from_millis(500));
    let faulty = simulate_with_faults(&plan, &config, &faults);
    let pairs: Vec<_> = plan
        .site_plans()
        .iter()
        .flat_map(|sp| {
            sp.received_streams()
                .map(move |s| (sp.site, s))
                .collect::<Vec<_>>()
        })
        .collect();
    let impact = FaultImpact::compare(&baseline, &faulty, pairs);
    println!(
        "\nCrash impact: delivery {:.3} -> {:.3}; {} (site, stream) pairs fully silenced",
        impact.baseline_delivery,
        impact.faulty_delivery,
        impact.silenced.len()
    );

    // Recovery: rebuild incrementally without the failed site's demand.
    let mut manager = OverlayManager::new(problem.clone()).with_correlation_swapping();
    // Re-play the surviving subscriptions (skip the crashed site).
    let (mut joined, mut rejected) = (0usize, 0usize);
    for request in problem.requests() {
        if request.subscriber == relay {
            continue;
        }
        match manager.subscribe(request.subscriber, request.stream)? {
            SubscribeResult::Joined { .. } | SubscribeResult::AlreadyJoined => joined += 1,
            SubscribeResult::Rejected => rejected += 1,
        }
    }
    println!(
        "\nRecovery overlay without {}: {} subscriptions re-established, {} rejected",
        relay, joined, rejected
    );
    // NOTE: the crashed site also stops *relaying*; since we rebuilt from
    // scratch without it as a subscriber, its forwarding capacity is only
    // used for its own streams' first copies, which its cameras still feed.
    let recovered = manager.into_forest();
    let recovered_plan =
        DisseminationPlan::from_forest(&problem, &recovered, StreamProfile::compressed_mbps(8));
    let report = simulate(&recovered_plan, &SimConfig::short());
    println!(
        "Recovered plan delivers {:.3} of planned frames (worst latency {})",
        report.delivery_ratio(),
        report.worst_latency()
    );
    Ok(())
}
