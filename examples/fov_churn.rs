//! Live subscription churn: participants keep turning to look at one
//! another, and the overlay is repaired incrementally instead of being
//! rebuilt — the "real deployment" scenario the paper defers to future
//! work.
//!
//! Run with: `cargo run --example fov_churn`

use teeve::pubsub::{run_churn, ChurnEvent};
use teeve::prelude::*;
use teeve::types::{DisplayId, SiteId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A 5-site session with modest capacities, so churn actually
    //    contends for bandwidth.
    let costs = teeve::types::CostMatrix::from_fn(5, |i, j| {
        teeve::types::CostMs::new(4 + ((i * 5 + j) % 5) as u32 * 3)
    });
    let mut session = Session::builder(costs)
        .cameras_per_site(8)
        .displays_per_site(2)
        .symmetric_capacity(teeve::types::Degree::new(10))
        .build();

    // Initial FOVs: each site's first display watches the right-hand
    // neighbour, the second the left-hand one.
    let n = session.site_count();
    for site in SiteId::all(n) {
        let i = site.index() as u32;
        session.subscribe_viewpoint(DisplayId::new(site, 0), SiteId::new((i + 1) % n as u32));
        session.subscribe_viewpoint(
            DisplayId::new(site, 1),
            SiteId::new((i + n as u32 - 1) % n as u32),
        );
    }

    // 2. The script: over three rounds, every site swings its gaze to a
    //    different participant (never itself); one display per round looks
    //    away entirely, then re-engages next round.
    let mut events = Vec::new();
    for round in 1..=3u32 {
        for site in SiteId::all(n) {
            let i = site.index() as u32;
            events.push(ChurnEvent::Retarget {
                display: DisplayId::new(site, 0),
                target: SiteId::new((i + 1 + round) % n as u32),
            });
        }
        events.push(ChurnEvent::Clear {
            display: DisplayId::new(SiteId::new(round % n as u32), 1),
        });
    }

    // 3. Run the churn twice: plain node-join repair, then with CO-RJ
    //    victim swapping.
    for (label, corr) in [("plain", false), ("with CO-RJ swapping", true)] {
        let mut s = session.clone();
        let (report, forest) = run_churn(&mut s, &events, corr)?;
        println!("churn run ({label}):");
        println!("  events          {}", report.events);
        println!(
            "  joins           {} attempted, {} accepted, {} rejected (acceptance {:.3})",
            report.subscribes,
            report.accepted,
            report.rejected,
            report.acceptance_ratio()
        );
        println!(
            "  leaves          {} applied, {} descendants re-attached, {} dropped",
            report.unsubscribes, report.reattached, report.dropped
        );
        let live_trees = forest.trees().iter().filter(|t| t.member_count() > 1).count();
        println!("  final forest    {live_trees} live trees\n");
    }
    Ok(())
}
