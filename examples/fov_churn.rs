//! Live subscription churn, runtime-driven: participants keep turning to
//! look at one another, sites drop out and rejoin, receivers report their
//! bandwidth — and the epoch-driven [`SessionRuntime`] keeps the overlay
//! repaired incrementally, emitting per-epoch plan *deltas* instead of
//! full replans. This is the "real deployment" loop the paper defers to
//! future work, closed end to end.
//!
//! Run with: `cargo run --example fov_churn`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use teeve::prelude::*;
use teeve::runtime::{RuntimeEvent, TraceConfig};
use teeve::types::{DisplayId, SiteId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A 5-site session with modest capacities, so churn actually
    //    contends for bandwidth.
    let costs = teeve::types::CostMatrix::from_fn(5, |i, j| {
        teeve::types::CostMs::new(4 + ((i * 5 + j) % 5) as u32 * 3)
    });
    let mut session = Session::builder(costs)
        .cameras_per_site(8)
        .displays_per_site(2)
        .symmetric_capacity(teeve::types::Degree::new(10))
        .build();

    // Initial FOVs: each site's first display watches the right-hand
    // neighbour, the second the left-hand one.
    let n = session.site_count();
    for site in SiteId::all(n) {
        let i = site.index() as u32;
        session.subscribe_viewpoint(DisplayId::new(site, 0), SiteId::new((i + 1) % n as u32));
        session.subscribe_viewpoint(
            DisplayId::new(site, 1),
            SiteId::new((i + n as u32 - 1) % n as u32),
        );
    }

    // 2. The runtime owns the session from here: the subscription
    //    universe admits any FOV the events may select, and the seeded
    //    overlay covers the initial gazes.
    let universe = subscription_universe(&session)?;
    let mut runtime = SessionRuntime::new(universe, session, RuntimeConfig::default())?;
    println!(
        "seeded: {} forwarding entries across {} sites\n",
        runtime
            .plan()
            .site_plans()
            .iter()
            .map(|sp| sp.entries.len())
            .sum::<usize>(),
        n
    );

    // 3. Twelve epochs of scripted churn: FOV swings dominate, one site
    //    drops out and rejoins, and receivers report throughput.
    let trace = TraceConfig {
        epochs: 12,
        events_per_epoch: 4,
        ..TraceConfig::default()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(2008);
    println!(
        "{:>5} {:>7} {:>6} {:>6} {:>6} {:>7} {:>9} {:>8}  path",
        "epoch", "events", "joins", "rej", "drop", "delta", "plan", "µs"
    );
    for epoch_events in trace.generate(n, 2, &mut rng) {
        let outcome = runtime.apply_epoch(&epoch_events);
        runtime.validate()?;
        let r = &outcome.report;
        println!(
            "{:>5} {:>7} {:>6} {:>6} {:>6} {:>7} {:>9} {:>8}  {}",
            r.epoch,
            r.events,
            r.subscribes,
            r.rejected,
            r.dropped_subscriptions,
            r.delta_entries,
            r.plan_entries,
            r.reconverge.as_micros(),
            if r.rebuilt { "rebuild" } else { "repair" },
        );
        for event in &epoch_events {
            if let RuntimeEvent::BandwidthSample { site, .. } = event {
                if let Some(plan) = outcome.adaptation.get(site) {
                    println!(
                        "      adapt {site}: {} streams in {:.1} Mbps ({} degraded, {} dropped)",
                        plan.decisions().len(),
                        plan.budget_bps() as f64 / 1e6,
                        plan.degraded_count(),
                        plan.dropped_count(),
                    );
                }
            }
        }
    }

    // 4. The whole run in one line: how much dissemination the deltas
    //    saved over shipping full plans every epoch.
    let report = runtime.report();
    println!(
        "\n{} epochs ({} rebuilt): {} joins, {} accepted, {} dropped; \
         delta traffic {} entries vs {} full-plan entries ({:.0}% saved); \
         mean reconvergence {} µs",
        report.epochs,
        report.rebuilds,
        report.subscribes,
        report.accepted,
        report.dropped_subscriptions,
        report.delta_entries,
        report.plan_entries,
        (1.0 - report.delta_fraction()) * 100.0,
        report.mean_reconverge().as_micros(),
    );
    Ok(())
}
