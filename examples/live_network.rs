//! Live dissemination over real TCP sockets.
//!
//! Builds a 4-site session, constructs the overlay, then launches one
//! rendezvous-point daemon per site on 127.0.0.1. Origins publish real
//! framed messages; relays forward them along the multicast trees exactly
//! as the plan dictates; the example verifies every planned delivery
//! happened.
//!
//! Run with: `cargo run --example live_network`

use std::time::Duration;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use teeve::net::{run_cluster, ClusterConfig};
use teeve::prelude::*;
use teeve::types::{Degree, DisplayId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let topo = teeve::topology::backbone_north_america();
    let sample = topo.sample_session(4, &mut rng)?;
    println!("Sites: {}", sample.names.join(", "));

    let mut session = Session::builder(sample.costs.clone())
        .cameras_per_site(4)
        .displays_per_site(1)
        .symmetric_capacity(Degree::new(8))
        .build();
    let n = session.site_count() as u32;
    for site in SiteId::all(4) {
        let target = SiteId::new((site.index() as u32 + 1) % n);
        session.subscribe_viewpoint(DisplayId::new(site, 0), target);
    }

    let (outcome, plan) = session.build_plan(&RandomJoin, &mut rng)?;
    println!(
        "Overlay constructed: {} trees, {} planned deliveries",
        outcome.forest().len(),
        plan.site_plans()
            .iter()
            .map(|sp| sp.in_degree())
            .sum::<usize>()
    );

    let config = ClusterConfig {
        frames_per_stream: 30,
        payload_bytes: 4096,
        frame_interval: Some(Duration::from_millis(10)),
        timeout: Duration::from_secs(30),
    };
    println!(
        "Launching {} RP daemons on 127.0.0.1, {} frames per stream …",
        plan.site_count(),
        config.frames_per_stream
    );
    let report = run_cluster(&plan, &config)?;

    println!(
        "Delivered {} frames in {:?} (worst socket latency {:.2} ms)",
        report.total_delivered(),
        report.elapsed,
        report.max_latency_micros as f64 / 1000.0
    );
    for ((site, stream), count) in &report.delivered {
        println!("  {site} received {count} frames of {stream}");
    }

    // Every planned delivery must have completed in full.
    for sp in plan.site_plans() {
        for stream in sp.received_streams() {
            let got = report
                .delivered
                .get(&(sp.site, stream))
                .copied()
                .unwrap_or(0);
            assert_eq!(
                got, config.frames_per_stream,
                "missing frames at {}",
                sp.site
            );
        }
    }
    println!("All planned deliveries verified.");
    Ok(())
}
