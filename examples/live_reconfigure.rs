//! Live reconfiguration on real sockets: the full paper pipeline.
//!
//! A `SessionRuntime` consumes a churn trace (FOV swings, sites leaving
//! and rejoining, bandwidth reports) and emits one `PlanDelta` per epoch;
//! each delta is pushed into a *running* `LiveCluster` of TCP rendezvous
//! points over the wire control plane (`Reconfigure`/`Ack`), opening only
//! the connections that gained their first stream and closing only those
//! that lost their last — while frames keep flowing between epochs.
//!
//! Run with: `cargo run --example live_reconfigure`

use std::time::Duration;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use teeve::net::{ClusterConfig, LiveCluster};
use teeve::prelude::*;
use teeve::runtime::TraceConfig;
use teeve::types::{DisplayId, SiteId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const SITES: usize = 5;
    const DISPLAYS: u32 = 2;
    const FRAMES_PER_EPOCH: u64 = 5;

    // 1. A 5-site session; every site's first display watches its
    //    right-hand neighbour so the launch plan already carries traffic.
    let costs = teeve::types::CostMatrix::from_fn(SITES, |i, j| {
        teeve::types::CostMs::new(4 + ((i * 5 + j) % 5) as u32)
    });
    let mut session = Session::builder(costs)
        .cameras_per_site(6)
        .displays_per_site(DISPLAYS)
        .symmetric_capacity(teeve::types::Degree::new(10))
        .build();
    for site in SiteId::all(SITES) {
        let i = site.index() as u32;
        session.subscribe_viewpoint(DisplayId::new(site, 0), SiteId::new((i + 1) % SITES as u32));
    }

    let universe = subscription_universe(&session)?;
    let mut runtime = SessionRuntime::new(universe, session, RuntimeConfig::default())?;

    // 2. Launch the long-lived cluster on the seeded plan.
    let config = ClusterConfig {
        frames_per_stream: FRAMES_PER_EPOCH,
        payload_bytes: 2048,
        frame_interval: Some(Duration::from_millis(2)),
        timeout: Duration::from_secs(30),
    };
    let mut cluster = LiveCluster::launch(runtime.plan(), &config)?;
    println!(
        "launched {} RPs on 127.0.0.1 ({} planned stream edges)\n",
        SITES,
        runtime.plan().edges().count()
    );
    cluster.publish(FRAMES_PER_EPOCH)?;

    // 3. Ten epochs of churn; each epoch's delta lands on the running RPs
    //    and the next frame batch flows under the reconfigured plan.
    let trace = TraceConfig {
        epochs: 10,
        events_per_epoch: 4,
        ..TraceConfig::default()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(2008);
    println!(
        "{:>5} {:>7} {:>9} {:>7} {:>7} {:>9} {:>9}  sockets",
        "epoch", "events", "delta", "open", "close", "retained", "reconf"
    );
    for events in trace.generate(SITES, DISPLAYS, &mut rng) {
        let outcome = runtime.apply_epoch(&events);
        let report = cluster.apply_delta(&outcome.delta)?;
        println!(
            "{:>5} {:>7} {:>9} {:>7} {:>7} {:>9} {:>9}  {}",
            report.revision,
            events.len(),
            outcome.delta.len(),
            report.established.len(),
            report.closed.len(),
            report.retained,
            report.reconfigured_sites,
            if report.is_socket_free() {
                "socket-free"
            } else {
                "churned"
            },
        );
        cluster.publish(FRAMES_PER_EPOCH)?;
    }

    // 4. Wind down and account for every frame.
    let report = cluster.shutdown();
    println!(
        "\nrevision {}: delivered {} frames across {} (site, stream) pairs in {:?}; \
         reconfigurations opened {} and closed {} TCP connections \
         (worst socket latency {:.2} ms)",
        report.final_revision,
        report.total_delivered(),
        report.delivered.len(),
        report.elapsed,
        report.connections_opened,
        report.connections_closed,
        report.max_latency_micros as f64 / 1000.0,
    );
    Ok(())
}
