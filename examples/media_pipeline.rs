//! The paper's bandwidth story, measured: a raw 3D stream at
//! `640 × 480 × 15 fps × 5 B/pixel ≈ 184 Mbps` is pushed through the
//! reduction chain of Section 1 — background subtraction, resolution
//! reduction, real-time compression — and lands in the 5–10 Mbps band the
//! evaluation assumes. The measured bit rate then becomes the stream
//! profile of a simulated multi-site session.
//!
//! Run with: `cargo run --example media_pipeline`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use teeve::media::{
    raw_bitrate_bps, PipelineStats, ReductionPipeline, SyntheticCapture, FRAME_FPS, FRAME_HEIGHT,
    FRAME_WIDTH,
};
use teeve::prelude::*;
use teeve::types::DisplayId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. One synthetic 3D camera per angle of an 8-camera ring.
    let pipeline = ReductionPipeline::paper();
    println!(
        "raw stream: {} x {} @ {} fps = {:.1} Mbps",
        FRAME_WIDTH,
        FRAME_HEIGHT,
        FRAME_FPS,
        raw_bitrate_bps(FRAME_WIDTH, FRAME_HEIGHT, FRAME_FPS) as f64 / 1e6
    );
    println!("\ncamera  foreground  reduced   compressed  ratio");

    let mut worst_mbps: f64 = 0.0;
    for cam_index in 0..8u64 {
        let azimuth = cam_index as f64 * std::f64::consts::TAU / 8.0;
        let camera = SyntheticCapture::new(FRAME_WIDTH, FRAME_HEIGHT, 2008 + cam_index);
        let mut stats = PipelineStats::new();
        for seq in 0..FRAME_FPS as u64 {
            stats.record(&pipeline.process(&camera.capture(azimuth, seq)).bytes);
        }
        let totals = stats.totals();
        let frames = stats.frames();
        let mbps = stats.bitrate_mbps(FRAME_FPS);
        worst_mbps = worst_mbps.max(mbps);
        println!(
            "cam {cam_index}   {:7.1} kB  {:6.1} kB  {:6.1} kB    {:5.1}x  ({mbps:.2} Mbps)",
            totals.foreground as f64 / frames as f64 / 1e3,
            totals.reduced as f64 / frames as f64 / 1e3,
            totals.compressed as f64 / frames as f64 / 1e3,
            stats.mean_compression_ratio(),
        );
    }

    // 2. Provision streams at the worst measured rate (rounded up).
    let provisioned = (worst_mbps.ceil() as u64).max(1);
    println!("\nprovisioning streams at {provisioned} Mbps (worst measured camera)");
    let profile = StreamProfile::compressed_mbps(provisioned);

    // 3. A 4-site session carried at the measured profile.
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let sample = teeve::topology::backbone_north_america().sample_session(4, &mut rng)?;
    let mut session = Session::builder(sample.costs.clone())
        .cameras_per_site(8)
        .displays_per_site(1)
        .symmetric_capacity(teeve::types::Degree::new(12))
        .stream_profile(profile)
        .build();
    let n = session.site_count();
    for site in SiteId::all(n) {
        let target = SiteId::new((site.index() as u32 + 1) % n as u32);
        session.subscribe_viewpoint(DisplayId::new(site, 0), target);
    }
    let (outcome, plan) = session.build_plan(&RandomJoin, &mut rng)?;
    let report = simulate(&plan, &SimConfig::short());
    println!(
        "overlay rejection {:.3}, sim delivery {:.3}, worst latency {}",
        outcome.metrics().rejection_ratio(),
        report.delivery_ratio(),
        report.worst_latency(),
    );
    // For scale: a raw 1.5 MB frame on a 100 Mbps site link serializes
    // for ~123 ms — alone already past any interactive bound. That is why
    // the evaluation only ever ships reduced streams.
    let raw_frame_bytes = raw_bitrate_bps(FRAME_WIDTH, FRAME_HEIGHT, FRAME_FPS) / 8 / 15;
    println!(
        "(one RAW frame on a 100 Mbps link would serialize for {} ms)",
        raw_frame_bytes * 8 * 1_000 / 100_000_000
    );
    Ok(())
}
