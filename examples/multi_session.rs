//! Many concurrent 3DTI sessions behind one sharded `MembershipService`.
//!
//! The paper's membership server dictates *one* session. Here a service
//! hosts a handful of independent sessions at once: each gets its own
//! scoped runtime in the sharded registry, churn events are queued per
//! session, and `drive_all` advances every session one epoch with shards
//! reconciled in parallel worker threads. Per-session and service-wide
//! reports come out at the end.
//!
//! Run with: `cargo run --example multi_session`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use teeve::prelude::*;
use teeve::runtime::TraceConfig;
use teeve::service::SessionHandle;
use teeve::types::{CostMatrix, CostMs, Degree, DisplayId, SiteId};

const SESSIONS: usize = 6;
const SITES: usize = 8;
const EPOCHS: usize = 8;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. One service, four registry shards.
    let service = MembershipService::with_shards(4);

    // 2. Admit six sessions with different cost structures; each starts
    //    with a ring of gazes so the first epoch already builds trees.
    let mut handles: Vec<SessionHandle> = Vec::new();
    for index in 0..SESSIONS {
        let costs = CostMatrix::from_fn(SITES, |i, j| {
            CostMs::new(3 + ((i * 31 + j * 17 + index * 7) % 9) as u32)
        });
        let mut session = Session::builder(costs)
            .cameras_per_site(6)
            .displays_per_site(2)
            .symmetric_capacity(Degree::new(10))
            .build();
        for site in SiteId::all(SITES) {
            let i = site.index() as u32;
            session
                .subscribe_viewpoint(DisplayId::new(site, 0), SiteId::new((i + 1) % SITES as u32));
        }
        let handle = service.create_session(SessionSpec::new(session))?;
        println!(
            "admitted {} -> shard {}",
            handle.id(),
            service.shard_index(handle.id())
        );
        handles.push(handle);
    }

    // 3. Eight rounds: queue each session's seeded churn, then advance
    //    the whole service one epoch in a single parallel pass.
    println!(
        "\n{:>5} {:>8} {:>7} {:>6} {:>6} {:>7} {:>9} {:>10}",
        "round", "sessions", "events", "joins", "rej", "delta", "plan", "work µs"
    );
    for round in 0..EPOCHS {
        for handle in &handles {
            let index = handle.id().raw();
            let mut rng = ChaCha8Rng::seed_from_u64(index * 100 + round as u64);
            let trace = TraceConfig {
                epochs: 1,
                events_per_epoch: 3,
                ..TraceConfig::default()
            };
            for epoch in trace.generate(SITES, 2, &mut rng) {
                handle.submit_requests(epoch)?;
            }
        }
        let report = service.drive_all();
        println!(
            "{:>5} {:>8} {:>7} {:>6} {:>6} {:>7} {:>9} {:>10}",
            round,
            report.sessions,
            report.events,
            report.subscribes,
            report.rejected,
            report.delta_entries,
            report.plan_entries,
            report.total_reconverge.as_micros(),
        );
        for handle in &handles {
            handle.validate()?;
        }
    }

    // 4. Per-session breakdown, then close everything.
    println!("\nper-session totals:");
    for handle in &handles {
        let report = handle.report()?;
        let plan = handle.plan()?;
        println!(
            "  {}: {} epochs ({} rebuilt), {} joins ({} accepted), \
             delta traffic {}/{} entries, plan revision {} ({} entries)",
            handle.id(),
            report.epochs,
            report.rebuilds,
            report.subscribes,
            report.accepted,
            report.delta_entries,
            report.plan_entries,
            plan.revision(),
            plan.site_plans()
                .iter()
                .map(|sp| sp.entries.len())
                .sum::<usize>(),
        );
    }
    for handle in handles {
        handle.close()?;
    }
    assert_eq!(service.session_count(), 0);
    println!("\nall sessions closed.");
    Ok(())
}
