//! Quickstart: the complete TEEVE pipeline in one page.
//!
//! 1. Sample a 4-site session from the North-American backbone (the
//!    paper's Mapnet setup).
//! 2. Let each site's display subscribe with a field of view.
//! 3. Construct the overlay forest with Random Join (the paper's winner).
//! 4. Execute the plan in the discrete-event simulator.
//!
//! Run with: `cargo run --example quickstart`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use teeve::prelude::*;
use teeve_types::DisplayId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = ChaCha8Rng::seed_from_u64(2008);

    // 1. A 4-site session: real PoP cities, costs from geography.
    let topo = teeve::topology::backbone_north_america();
    let session_sample = topo.sample_session(4, &mut rng)?;
    println!("Session sites: {}", session_sample.names.join(", "));

    // 2. Build the pub-sub session: 8 cameras and 2 displays per site.
    let mut session = Session::builder(session_sample.costs.clone())
        .cameras_per_site(8)
        .displays_per_site(2)
        .symmetric_capacity(teeve::types::Degree::new(12))
        .build();

    // Every site's displays watch the two "next" participants around the
    // virtual meeting circle.
    let n = session.site_count();
    for site in SiteId::all(n) {
        for (d, hop) in [(0u32, 1u32), (1, 2)] {
            let target = SiteId::new((site.index() as u32 + hop) % n as u32);
            let display = DisplayId::new(site, d);
            let picked = session.subscribe_viewpoint(display, target);
            println!(
                "{display} watches {target}: {} contributing streams",
                picked.len()
            );
        }
    }

    // 3. The membership server constructs the overlay with Random Join.
    let (outcome, plan) = session.build_plan(&RandomJoin, &mut rng)?;
    let metrics = outcome.metrics();
    println!(
        "\nOverlay: {} trees, rejection ratio {:.3}, max path cost {}",
        outcome.forest().len(),
        metrics.rejection_ratio(),
        metrics.max_path_cost
    );
    for site in SiteId::all(n) {
        println!(
            "  {site} receives {} streams, forwards {} copies",
            plan.site_plan(site).in_degree(),
            plan.site_plan(site).out_degree()
        );
    }

    // 4. Run 2 simulated seconds of 8 Mbps / 15 fps streams over the plan.
    let report = simulate(&plan, &SimConfig::default());
    println!(
        "\nSimulation: {} frames delivered (ratio {:.3}), worst latency {}",
        report.total_frames_delivered(),
        report.delivery_ratio(),
        report.worst_latency()
    );
    for site in SiteId::all(n) {
        println!(
            "  {site}: render budget {:.0}% of a frame interval",
            report.render_utilization(site) * 100.0
        );
    }
    Ok(())
}
