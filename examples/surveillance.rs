//! Distributed surveillance: the paper's "random workload" use case.
//!
//! A security operator federates camera clusters at six facilities. There
//! is no Zipf popularity here — operators watch whichever feeds matter to
//! them ("the streams have more or less similar popularity", Section 5.1).
//! The example generates the paper's random workload over heterogeneous
//! facilities and compares all four construction algorithms on the same
//! instances, then drills into the winner's load balancing.
//!
//! Run with: `cargo run --example surveillance`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use teeve::overlay::{
    ConstructionAlgorithm, LargestTreeFirst, MinimumCapacityTreeFirst, RandomJoin,
    SmallestTreeFirst,
};
use teeve::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = ChaCha8Rng::seed_from_u64(911);
    let topo = teeve::topology::backbone_north_america();
    let session = topo.sample_session(6, &mut rng)?;
    println!("Facilities: {}", session.names.join(", "));

    // The paper's random workload over heterogeneous facility capacities.
    let config = WorkloadConfig::random_heterogeneous();
    let samples = 40;
    let problems: Vec<_> = (0..samples)
        .map(|_| config.generate(&session.costs, &mut rng))
        .collect::<Result<_, _>>()?;

    let algorithms: [&dyn ConstructionAlgorithm; 4] = [
        &SmallestTreeFirst,
        &LargestTreeFirst,
        &MinimumCapacityTreeFirst,
        &RandomJoin,
    ];
    println!("\nMean rejection over {samples} workload samples:");
    let mut best: (f64, &str) = (f64::INFINITY, "");
    for algo in algorithms {
        let mut total = 0.0;
        for problem in &problems {
            total += algo
                .construct(problem, &mut rng)
                .metrics()
                .rejection_ratio();
        }
        let mean = total / samples as f64;
        println!("  {:<5} {mean:.4}", algo.name());
        if mean < best.0 {
            best = (mean, algo.name());
        }
    }
    println!("Best algorithm here: {}", best.1);

    // Drill into one RJ run: who forwards how much?
    let problem = &problems[0];
    let outcome = RandomJoin.construct(problem, &mut rng);
    let m = outcome.metrics();
    println!(
        "\nOne RJ run: {}/{} requests accepted ({} trees)",
        m.accepted_requests,
        m.total_requests,
        outcome.forest().len()
    );
    println!(
        "  out-degree utilization {:.1}% (stddev {:.1}%), relaying share {:.1}%",
        m.mean_out_degree_utilization * 100.0,
        m.stddev_out_degree_utilization * 100.0,
        m.mean_relay_fraction * 100.0
    );
    for site in SiteId::all(problem.site_count()) {
        let forest = outcome.forest();
        println!(
            "  facility {site} ({}): capacity {}, receives {}, sends {} ({} relayed)",
            session.names[site.index()],
            problem.capacity(site).outbound.count(),
            forest.in_degree(site),
            forest.out_degree(site),
            forest.relay_degree(site),
        );
    }
    Ok(())
}
