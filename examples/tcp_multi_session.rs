//! Many concurrent sessions, each executing on its own live TCP fleet.
//!
//! One `MembershipService` hosts several independent 3DTI sessions. Each
//! session gets a fleet of autonomous [`RpNode`]s — standalone RP
//! runtimes owning their own listeners, forwarding tables, and delivery
//! counters — driven by a [`Coordinator`] that holds nothing but control
//! connections and addresses. Every epoch, `drive_all_with` advances all
//! sessions one epoch and routes each emitted `PlanDelta` through a
//! `DeltaRouter<Coordinator>` onto that session's fleet, purely over the
//! wire; frames then flow and per-session delivery is accounted exactly.
//!
//! Run with: `cargo run --example tcp_multi_session`
//!
//! [`RpNode`]: teeve::net::RpNode
//! [`Coordinator`]: teeve::net::Coordinator

use std::collections::BTreeMap;
use std::time::Duration;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use teeve::net::{ClusterConfig, Coordinator, RpNode, RpNodeHandle};
use teeve::prelude::*;
use teeve::pubsub::DeltaRouter;
use teeve::runtime::TraceConfig;
use teeve::types::{CostMatrix, CostMs, Degree, DisplayId, SessionId, SiteId};

const SESSIONS: usize = 2;
const SITES: usize = 4;
const DISPLAYS: u32 = 2;
const EPOCHS: usize = 4;
const FRAMES_PER_EPOCH: u64 = 3;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let service = MembershipService::with_shards(2);
    let config = ClusterConfig {
        frames_per_stream: FRAMES_PER_EPOCH,
        payload_bytes: 1024,
        frame_interval: None,
        timeout: Duration::from_secs(30),
    };

    // 1. Admit the sessions and launch one RP fleet per session: bind
    //    the nodes, then hand the coordinator nothing but addresses.
    let mut handles = Vec::new();
    let mut fleets: BTreeMap<SessionId, Vec<RpNodeHandle>> = BTreeMap::new();
    let mut router: DeltaRouter<Coordinator> = DeltaRouter::new();
    for index in 0..SESSIONS {
        let costs = CostMatrix::from_fn(SITES, |i, j| {
            CostMs::new(3 + ((i * 13 + j * 7 + index * 5) % 8) as u32)
        });
        let mut session = Session::builder(costs)
            .cameras_per_site(4)
            .displays_per_site(DISPLAYS)
            .symmetric_capacity(Degree::new(8))
            .build();
        for site in SiteId::all(SITES) {
            let target = SiteId::new((site.index() as u32 + 1) % SITES as u32);
            session.subscribe_viewpoint(DisplayId::new(site, 0), target);
        }
        let handle = service.create_session(SessionSpec::new(session))?;
        let plan = handle.plan()?;

        let mut nodes = Vec::new();
        let mut addrs = Vec::new();
        for site in SiteId::all(SITES) {
            let node = RpNode::bind(site, config.timeout)?;
            addrs.push(node.local_addr());
            nodes.push(node.spawn());
        }
        let coordinator = Coordinator::connect(&plan, &addrs, &config)?;
        println!(
            "{}: fleet of {} RPs up, initial plan rev {} ({} links)",
            handle.id(),
            addrs.len(),
            coordinator.revision(),
            plan.edges().count(),
        );
        router.register(handle.id(), coordinator);
        fleets.insert(handle.id(), nodes);
        handles.push(handle);
    }

    // 2. Epoch loop: queue churn, advance every session in one service
    //    pass (deltas land on the live fleets via the router), publish.
    let traces: Vec<_> = (0..SESSIONS)
        .map(|i| {
            TraceConfig {
                epochs: EPOCHS,
                events_per_epoch: 3,
                leave_weight: 0,
                join_weight: 0,
                ..TraceConfig::default()
            }
            .generate(
                SITES,
                DISPLAYS,
                &mut ChaCha8Rng::seed_from_u64(77 + i as u64),
            )
        })
        .collect();
    for epoch in 0..EPOCHS {
        for (handle, trace) in handles.iter().zip(&traces) {
            handle.submit_requests(trace[epoch].iter().cloned())?;
        }
        let (report, rejections) = service.drive_all_with(&mut router);
        assert!(
            rejections.is_empty(),
            "live fleets rejected: {rejections:?}"
        );
        print!(
            "epoch {epoch}: {} sessions advanced, {} events | batches:",
            report.sessions, report.events
        );
        for handle in &handles {
            let coordinator = router.get_mut(handle.id()).expect("registered");
            coordinator.publish(FRAMES_PER_EPOCH)?;
            print!(
                " [{} rev {} opened {} closed {}]",
                handle.id(),
                coordinator.revision(),
                coordinator.connections_opened(),
                coordinator.connections_closed()
            );
        }
        println!();
    }

    // 3. Shut each fleet down and print per-session delivery accounting.
    println!();
    for handle in handles {
        let id = handle.id();
        let coordinator = router.unregister(id).expect("registered");
        let report = coordinator.shutdown();
        println!(
            "{id}: delivered {} frames over {} (site, stream) pairs, \
             max latency {} µs, {} reconfiguration opens / {} closes",
            report.total_delivered(),
            report.delivered.len(),
            report.max_latency_micros,
            report.connections_opened,
            report.connections_closed
        );
        for node in fleets.remove(&id).expect("fleet") {
            node.join();
        }
        let runtime_report = handle.close()?;
        println!(
            "    runtime: {} epochs, {} joins accepted, {} rebuilds",
            runtime_report.epochs, runtime_report.accepted, runtime_report.rebuilds
        );
    }
    Ok(())
}
