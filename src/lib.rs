//! # TEEVE — Multi-Site Collaboration in 3D Tele-Immersive Environments
//!
//! A Rust reproduction of **Wu, Yang, Gupta, Nahrstedt, "Towards Multi-Site
//! Collaboration in 3D Tele-Immersive Environments" (ICDCS 2008)**.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`types`] — shared identifiers and units;
//! * [`topology`] — Internet backbone substrate (Mapnet substitute);
//! * [`geometry`] — cyber-space, cameras, FOV subscriptions (ViewCast
//!   substitute);
//! * [`workload`] — Zipf/random subscription workload generation;
//! * [`overlay`] — the paper's core contribution: multicast-forest
//!   construction heuristics (LTF, STF, MCTF, RJ, Gran-LTF, CO-RJ);
//! * [`pubsub`] — publishers, subscribers, rendezvous points, membership
//!   server, dissemination plans and plan deltas;
//! * [`runtime`] — the epoch-driven session orchestrator: consumes live
//!   FOV / membership / bandwidth events, repairs the overlay
//!   incrementally (with full-reconstruction fall-back), and emits
//!   [`PlanDelta`](teeve_pubsub::PlanDelta)s executors apply without
//!   tearing down unaffected links;
//! * [`service`] — the multi-session membership service: a sharded
//!   registry of owned session runtimes with a full lifecycle API
//!   (create / submit / drive / close) and a parallel bulk driver;
//! * [`sim`] — discrete-event dissemination simulator, including
//!   delta-aware mid-run replanning;
//! * [`net`] — live TCP rendezvous points as process-separable nodes
//!   (`RpNode` fleets driven by a wire-only `Coordinator`, with the
//!   in-process `LiveCluster` wrapper) and link-level delta analysis;
//! * [`media`] — synthetic 3D capture and the reduction pipeline
//!   (background subtraction, resolution reduction, compression);
//! * [`adapt`] — multi-stream bandwidth adaptation.
//!
//! # Quickstart
//!
//! ```
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//! use teeve::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. Sample a 4-site session from the backbone topology.
//! let mut rng = ChaCha8Rng::seed_from_u64(2008);
//! let session = teeve::topology::backbone_north_america().sample_session(4, &mut rng)?;
//!
//! // 2. Generate a Zipf subscription workload at the paper's scale.
//! let problem = WorkloadConfig::zipf_uniform().generate(&session.costs, &mut rng)?;
//!
//! // 3. Construct the dissemination forest with the randomized algorithm.
//! let outcome = RandomJoin::default().construct(&problem, &mut rng);
//! println!("rejection ratio: {:.3}", outcome.metrics().rejection_ratio());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use teeve_adapt as adapt;
pub use teeve_geometry as geometry;
pub use teeve_media as media;
pub use teeve_net as net;
pub use teeve_overlay as overlay;
pub use teeve_pubsub as pubsub;
pub use teeve_runtime as runtime;
pub use teeve_service as service;
pub use teeve_sim as sim;
pub use teeve_topology as topology;
pub use teeve_types as types;
pub use teeve_workload as workload;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use teeve_adapt::{AdaptStream, AdaptationController, AdaptiveReceiver, QualityLadder};
    pub use teeve_geometry::{CyberSpace, FieldOfView, ViewSelector};
    pub use teeve_media::{ReductionPipeline, SyntheticCapture};
    pub use teeve_overlay::{
        ConstructionAlgorithm, CorrelatedRandomJoin, GranLtf, LargestTreeFirst,
        MinimumCapacityTreeFirst, OptimalSolver, RandomJoin, SmallestTreeFirst, UnicastBaseline,
    };
    pub use teeve_pubsub::{
        subscription_universe, DisseminationPlan, MembershipServer, PlanDelta, Session,
        StreamProfile,
    };
    pub use teeve_runtime::{RuntimeConfig, SessionRuntime};
    pub use teeve_service::{MembershipService, SessionSpec};
    pub use teeve_sim::{simulate, simulate_with_replans, SimConfig};
    pub use teeve_topology::{backbone, backbone_north_america, Topology};
    pub use teeve_types::{CostMatrix, CostMs, Degree, SessionId, SiteId, StreamId};
    pub use teeve_workload::{CapacityModel, PopularityModel, WorkloadConfig};
}
