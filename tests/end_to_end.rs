//! End-to-end integration: topology → workload → overlay → plan →
//! simulator, across crates.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use teeve::overlay::{
    validate_forest, ConstructionAlgorithm, CorrelatedRandomJoin, GranLtf, LargestTreeFirst,
    MinimumCapacityTreeFirst, RandomJoin, SmallestTreeFirst,
};
use teeve::prelude::*;
use teeve::sim::{simulate, SimConfig, SimTime};
use teeve::types::{DisplayId, SiteId};

/// Every algorithm, on a realistic paper-scale instance, must produce a
/// forest satisfying all problem constraints.
#[test]
fn all_algorithms_produce_valid_forests_at_paper_scale() {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let topo = teeve::topology::backbone_north_america();
    let gran = GranLtf::new(8);
    let algos: Vec<&dyn ConstructionAlgorithm> = vec![
        &SmallestTreeFirst,
        &LargestTreeFirst,
        &MinimumCapacityTreeFirst,
        &gran,
        &RandomJoin,
        &CorrelatedRandomJoin,
    ];
    for n in [3usize, 6, 10] {
        let session = topo.sample_session(n, &mut rng).expect("session");
        for config in [
            WorkloadConfig::zipf_uniform(),
            WorkloadConfig::zipf_heterogeneous(),
            WorkloadConfig::random_uniform(),
            WorkloadConfig::random_heterogeneous(),
        ] {
            let problem = config.generate(&session.costs, &mut rng).expect("generate");
            for algo in &algos {
                let outcome = algo.construct(&problem, &mut rng);
                validate_forest(&problem, outcome.forest())
                    .unwrap_or_else(|e| panic!("{} violated invariants: {e}", algo.name()));
            }
        }
    }
}

/// The full pipeline: a generated workload, solved and simulated; every
/// accepted subscription receives every captured frame within the latency
/// budget implied by the construction bound.
#[test]
fn accepted_subscriptions_are_fully_served_by_the_simulator() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let topo = teeve::topology::backbone_north_america();
    let session = topo.sample_session(6, &mut rng).expect("session");
    let problem = WorkloadConfig::zipf_uniform()
        .generate(&session.costs, &mut rng)
        .expect("generate");

    let outcome = RandomJoin.construct(&problem, &mut rng);
    let plan = DisseminationPlan::from_forest(
        &problem,
        outcome.forest(),
        StreamProfile::compressed_mbps(8),
    );
    let report = simulate(&plan, &SimConfig::short());
    assert_eq!(report.delivery_ratio(), 1.0, "every planned frame arrives");

    // The overlay portion of the worst latency is bounded by
    // B_cost + per-hop costs (relay serialization + forwarding overhead).
    let depth = outcome.metrics().max_tree_depth as u64;
    let serialization = report.serialization_time().as_micros();
    let bound_us = u64::from(problem.cost_bound().as_millis()) * 1_000
        + depth.saturating_sub(1) * (serialization + 500);
    assert!(
        report.worst_overlay_latency().as_micros() <= bound_us,
        "overlay latency {} exceeds budget {}us",
        report.worst_overlay_latency(),
        bound_us
    );
}

/// The session layer end to end: FOV subscriptions resolve to streams, the
/// plan covers exactly the accepted ones, and local streams bypass the
/// overlay.
#[test]
fn session_fov_subscriptions_round_trip_through_the_plan() {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let topo = teeve::topology::backbone_north_america();
    let sample = topo.sample_session(5, &mut rng).expect("session");
    let mut session = Session::builder(sample.costs.clone())
        .cameras_per_site(8)
        .displays_per_site(2)
        .symmetric_capacity(teeve::types::Degree::new(16))
        .build();

    for site in SiteId::all(5) {
        for d in 0..2u32 {
            let target = SiteId::new((site.index() as u32 + d + 1) % 5);
            let picked = session.subscribe_viewpoint(DisplayId::new(site, d), target);
            assert!(!picked.is_empty());
            assert!(picked.iter().all(|s| s.stream.origin() == target));
        }
    }

    let (outcome, plan) = session.build_plan(&RandomJoin, &mut rng).expect("plan");
    let problem = session.membership_server().problem().expect("problem");
    // Plan deliveries == accepted requests, per site.
    for site in SiteId::all(5) {
        let planned = plan.deliveries_to(site).len();
        let accepted = outcome
            .accepted_requests(&problem)
            .filter(|r| r.subscriber == site)
            .count();
        assert_eq!(planned, accepted, "site {site}");
    }
}

/// Determinism across the whole stack: same seeds, same session, same
/// forest, same simulation outcome.
#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let topo = teeve::topology::backbone_north_america();
        let session = topo.sample_session(5, &mut rng).unwrap();
        let problem = WorkloadConfig::random_uniform()
            .generate(&session.costs, &mut rng)
            .unwrap();
        let outcome = CorrelatedRandomJoin.construct(&problem, &mut rng);
        let plan =
            DisseminationPlan::from_forest(&problem, outcome.forest(), StreamProfile::default());
        let report = simulate(&plan, &SimConfig::short());
        (
            outcome.metrics().clone(),
            report.total_frames_delivered(),
            report.worst_latency(),
        )
    };
    assert_eq!(run(), run());
}

/// Rebuilding after a subscription change (the dynamic case the paper
/// leaves to future work) keeps the invariants.
#[test]
fn resubscription_and_rebuild_stay_valid() {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let costs = teeve::types::CostMatrix::from_fn(4, |i, j| {
        teeve::types::CostMs::new(3 + ((i * 2 + j) % 5) as u32)
    });
    let mut session = Session::builder(costs)
        .cameras_per_site(6)
        .displays_per_site(1)
        .symmetric_capacity(teeve::types::Degree::new(10))
        .build();
    for site in SiteId::all(4) {
        let target = SiteId::new((site.index() as u32 + 1) % 4);
        session.subscribe_viewpoint(DisplayId::new(site, 0), target);
    }
    let (first, _) = session.build_plan(&RandomJoin, &mut rng).expect("plan");

    // The user at site 0 turns around to watch site 3 instead.
    session.subscribe_viewpoint(DisplayId::new(SiteId::new(0), 0), SiteId::new(3));
    let (second, plan) = session.build_plan(&RandomJoin, &mut rng).expect("replan");
    let problem = session.membership_server().problem().expect("problem");
    validate_forest(&problem, second.forest()).expect("rebuilt forest valid");
    assert_ne!(
        first.forest(),
        second.forest(),
        "the overlay must follow the subscription change"
    );
    assert!(plan
        .deliveries_to(SiteId::new(0))
        .iter()
        .all(|s| s.origin() == SiteId::new(3)));
}

/// Simulated latency budget scales with the render model: a display
/// receiving k streams needs k x 10 ms per frame.
#[test]
fn render_budget_tracks_delivered_streams() {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let costs = teeve::types::CostMatrix::from_fn(3, |_, _| teeve::types::CostMs::new(4));
    let mut session = Session::builder(costs)
        .cameras_per_site(8)
        .displays_per_site(1)
        .symmetric_capacity(teeve::types::Degree::new(20))
        .view_selector(teeve::geometry::ViewSelector::top_k(8))
        .build();
    for site in SiteId::all(3) {
        let target = SiteId::new((site.index() as u32 + 1) % 3);
        session.subscribe_viewpoint(DisplayId::new(site, 0), target);
    }
    let (_, plan) = session.build_plan(&RandomJoin, &mut rng).expect("plan");
    let report = simulate(&plan, &SimConfig::short());
    for site in SiteId::all(3) {
        let streams = report.streams_rendered().get(&site).copied().unwrap_or(0);
        let expected = streams as f64 * 10.0 * 1000.0 / 66_666.0;
        assert!(
            (report.render_utilization(site) - expected).abs() < 1e-9,
            "render budget mismatch at {site}"
        );
    }
    // Freshness: the sim must run long enough to deliver at least a frame.
    assert!(report.total_frames_delivered() > 0);
    assert!(report.worst_latency() > SimTime::ZERO);
}
