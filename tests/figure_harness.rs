//! Smoke tests for the figure-reproduction harness (reduced sample counts;
//! the full runs live in `teeve-bench`'s binaries and EXPERIMENTS.md).

use teeve_bench::{fig10_series, fig11_series, fig8_series, fig9_series, Fig8Panel};

/// Figure 8's qualitative shape: rejection grows with the number of sites
/// under the uniform workloads.
#[test]
fn fig8_rejection_grows_with_session_size() {
    for panel in [Fig8Panel::ZipfUniform, Fig8Panel::RandomUniform] {
        let rows = fig8_series(panel, 12, 42);
        let first = &rows[0];
        let last = &rows[rows.len() - 1];
        for (algo, a, b) in [
            ("STF", first.stf, last.stf),
            ("LTF", first.ltf, last.ltf),
            ("MCTF", first.mctf, last.mctf),
            ("RJ", first.rj, last.rj),
        ] {
            assert!(
                b > a,
                "{algo} rejection should grow from N=3 ({a:.3}) to N=10 ({b:.3})"
            );
        }
    }
}

/// The headline claim: at the larger session sizes RJ is competitive with
/// the best tree-based algorithm (within noise) and strictly better than
/// the worst.
#[test]
fn fig8_rj_is_competitive_at_scale() {
    let rows = fig8_series(Fig8Panel::RandomHeterogeneous, 15, 7);
    let last = &rows[rows.len() - 1];
    let best_tree = last.stf.min(last.ltf).min(last.mctf);
    let worst_tree = last.stf.max(last.ltf).max(last.mctf);
    assert!(
        last.rj <= best_tree + 0.02,
        "RJ ({:.3}) should be within noise of the best tree-based ({best_tree:.3})",
        last.rj
    );
    assert!(
        last.rj < worst_tree,
        "RJ ({:.3}) should beat the worst tree-based ({worst_tree:.3})",
        last.rj
    );
}

/// Figure 9's shape: granularity F (RJ end) does not reject more than
/// granularity 1 (LTF end).
#[test]
fn fig9_larger_granularity_helps() {
    let points = fig9_series(8, 11, Some(&[1, 1000]));
    assert_eq!(points.len(), 2);
    assert!(
        points[1].rejection_ratio <= points[0].rejection_ratio + 0.01,
        "granularity F ({:.3}) should not be worse than 1 ({:.3})",
        points[1].rejection_ratio,
        points[0].rejection_ratio
    );
}

/// Figure 10's shape: high mean out-degree utilization with a small
/// standard deviation (good load balancing).
#[test]
fn fig10_load_balancing_holds() {
    let rows = fig10_series(6, 5);
    for row in rows.iter().filter(|r| r.sites >= 6) {
        assert!(
            row.mean_out_utilization > 0.85,
            "N={}: utilization {:.3} too low",
            row.sites,
            row.mean_out_utilization
        );
        assert!(
            row.stddev_out_utilization < 0.10,
            "N={}: stddev {:.3} too high",
            row.sites,
            row.stddev_out_utilization
        );
        assert!(row.mean_relay_fraction > 0.05, "relaying must happen");
    }
}

/// Figure 11's shape: CO-RJ's criticality-weighted rejection beats RJ's,
/// with the gap widening as sites join.
#[test]
fn fig11_corj_beats_rj_increasingly() {
    let rows = fig11_series(15, 13);
    let first = &rows[0];
    let last = &rows[rows.len() - 1];
    assert!(last.corj < last.rj, "CO-RJ must win at N=10");
    let gap_first = first.rj - first.corj;
    let gap_last = last.rj - last.corj;
    assert!(
        gap_last > gap_first,
        "the CO-RJ advantage should widen: {gap_first:.4} -> {gap_last:.4}"
    );
    let factor = last.rj / last.corj.max(1e-9);
    assert!(
        factor > 1.5,
        "CO-RJ should be a substantial factor better at N=10, got {factor:.2}x"
    );
}
