//! Integration of the live TCP substrate with the rest of the stack.

use std::time::Duration;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use teeve::net::{run_cluster, ClusterConfig};
use teeve::prelude::*;
use teeve::types::{DisplayId, SiteId};

fn quick_config(frames: u64) -> ClusterConfig {
    ClusterConfig {
        frames_per_stream: frames,
        payload_bytes: 512,
        frame_interval: None,
        timeout: Duration::from_secs(30),
    }
}

/// Session → overlay → live TCP cluster: every planned delivery completes
/// with real sockets.
#[test]
fn session_plan_runs_on_real_sockets() {
    let mut rng = ChaCha8Rng::seed_from_u64(21);
    let costs = teeve::types::CostMatrix::from_fn(4, |i, j| {
        teeve::types::CostMs::new(2 + ((i + j) % 4) as u32)
    });
    let mut session = Session::builder(costs)
        .cameras_per_site(4)
        .displays_per_site(1)
        .symmetric_capacity(teeve::types::Degree::new(6))
        .build();
    for site in SiteId::all(4) {
        let target = SiteId::new((site.index() as u32 + 1) % 4);
        session.subscribe_viewpoint(DisplayId::new(site, 0), target);
    }
    let (_, plan) = session.build_plan(&RandomJoin, &mut rng).expect("plan");

    let config = quick_config(8);
    let report = run_cluster(&plan, &config).expect("cluster completes");
    for sp in plan.site_plans() {
        for stream in sp.received_streams() {
            assert_eq!(
                report.delivered.get(&(sp.site, stream)).copied(),
                Some(config.frames_per_stream),
                "stream {stream} incomplete at {}",
                sp.site
            );
        }
    }
}

/// The live cluster and the discrete-event simulator agree on *what* is
/// delivered (the sim additionally models link latency, which localhost
/// cannot reproduce).
#[test]
fn simulator_and_cluster_agree_on_deliveries() {
    let mut rng = ChaCha8Rng::seed_from_u64(33);
    let topo = teeve::topology::backbone_north_america();
    let sample = topo.sample_session(4, &mut rng).expect("session");
    let problem = WorkloadConfig::zipf_uniform()
        .generate(&sample.costs, &mut rng)
        .expect("generate");
    let outcome = RandomJoin.construct(&problem, &mut rng);
    let plan = DisseminationPlan::from_forest(
        &problem,
        outcome.forest(),
        StreamProfile::compressed_mbps(5),
    );

    let sim_report = teeve::sim::simulate(&plan, &teeve::sim::SimConfig::short());
    let net_report = run_cluster(&plan, &quick_config(2)).expect("cluster");

    // Identical delivery relations: a (site, stream) pair received frames
    // in the simulator iff it received frames on real sockets.
    let sim_pairs: std::collections::BTreeSet<_> = plan
        .site_plans()
        .iter()
        .flat_map(|sp| {
            sp.received_streams()
                .filter(|&s| sim_report.stream_stats(sp.site, s).is_some())
                .map(move |s| (sp.site, s))
                .collect::<Vec<_>>()
        })
        .collect();
    let net_pairs: std::collections::BTreeSet<_> = net_report.delivered.keys().copied().collect();
    assert_eq!(sim_pairs, net_pairs);
}
