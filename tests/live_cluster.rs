//! Integration of the live TCP substrate with the rest of the stack.
//!
//! Every test here opens real sockets on 127.0.0.1 and is named with a
//! `socket_` prefix: CI runs them serialized (`--test-threads=1`) in
//! their own step so localhost port churn cannot flake the main test job.

use std::collections::BTreeMap;
use std::time::Duration;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use teeve::net::{run_cluster, ClusterConfig, LiveCluster};
use teeve::overlay::{OverlayManager, ProblemInstance};
use teeve::prelude::*;
use teeve::runtime::{RuntimeConfig, SessionRuntime, TraceConfig};
use teeve::types::{CostMatrix, CostMs, Degree, DisplayId, SiteId, StreamId};

fn quick_config(frames: u64) -> ClusterConfig {
    ClusterConfig {
        frames_per_stream: frames,
        payload_bytes: 512,
        frame_interval: None,
        timeout: Duration::from_secs(30),
    }
}

fn site(i: u32) -> SiteId {
    SiteId::new(i)
}

fn stream(origin: u32, q: u32) -> StreamId {
    StreamId::new(site(origin), q)
}

/// Session → overlay → live TCP cluster: every planned delivery completes
/// with real sockets.
#[test]
fn socket_session_plan_runs_end_to_end() {
    let mut rng = ChaCha8Rng::seed_from_u64(21);
    let costs = CostMatrix::from_fn(4, |i, j| CostMs::new(2 + ((i + j) % 4) as u32));
    let mut session = Session::builder(costs)
        .cameras_per_site(4)
        .displays_per_site(1)
        .symmetric_capacity(Degree::new(6))
        .build();
    for site in SiteId::all(4) {
        let target = SiteId::new((site.index() as u32 + 1) % 4);
        session.subscribe_viewpoint(DisplayId::new(site, 0), target);
    }
    let (_, plan) = session.build_plan(&RandomJoin, &mut rng).expect("plan");

    let config = quick_config(8);
    let report = run_cluster(&plan, &config).expect("cluster completes");
    for sp in plan.site_plans() {
        for stream in sp.received_streams() {
            assert_eq!(
                report.delivered.get(&(sp.site, stream)).copied(),
                Some(config.frames_per_stream),
                "stream {stream} incomplete at {}",
                sp.site
            );
        }
    }
}

/// The live cluster and the discrete-event simulator agree on *what* is
/// delivered (the sim additionally models link latency, which localhost
/// cannot reproduce).
#[test]
fn socket_simulator_and_cluster_agree_on_deliveries() {
    let mut rng = ChaCha8Rng::seed_from_u64(33);
    let topo = teeve::topology::backbone_north_america();
    let sample = topo.sample_session(4, &mut rng).expect("session");
    let problem = WorkloadConfig::zipf_uniform()
        .generate(&sample.costs, &mut rng)
        .expect("generate");
    let outcome = RandomJoin.construct(&problem, &mut rng);
    let plan = DisseminationPlan::from_forest(
        &problem,
        outcome.forest(),
        StreamProfile::compressed_mbps(5),
    );

    let sim_report = teeve::sim::simulate(&plan, &teeve::sim::SimConfig::short());
    let net_report = run_cluster(&plan, &quick_config(2)).expect("cluster");

    // Identical delivery relations: a (site, stream) pair received frames
    // in the simulator iff it received frames on real sockets.
    let sim_pairs: std::collections::BTreeSet<_> = plan
        .site_plans()
        .iter()
        .flat_map(|sp| {
            sp.received_streams()
                .filter(|&s| sim_report.stream_stats(sp.site, s).is_some())
                .map(move |s| (sp.site, s))
                .collect::<Vec<_>>()
        })
        .collect();
    let net_pairs: std::collections::BTreeSet<_> = net_report.delivered.keys().copied().collect();
    assert_eq!(sim_pairs, net_pairs);
}

/// The three-site universe the reconfiguration tests mutate: site 0 owns
/// two streams, sites 1 and 2 may subscribe to them.
fn reconfigure_universe() -> ProblemInstance {
    let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(4));
    ProblemInstance::builder(costs, CostMs::new(50))
        .symmetric_capacities(Degree::new(6))
        .streams_per_site(&[2, 0, 0])
        .subscribe(site(1), stream(0, 0))
        .subscribe(site(1), stream(0, 1))
        .subscribe(site(2), stream(0, 0))
        .build()
        .unwrap()
}

/// Derives the plan of the manager's current forest, stamped with the
/// given control-plane revision.
fn plan_at(
    problem: &ProblemInstance,
    manager: &OverlayManager,
    revision: u64,
) -> DisseminationPlan {
    let mut plan = DisseminationPlan::from_forest(
        problem,
        &manager.forest_snapshot(),
        StreamProfile::default(),
    );
    plan.set_revision(revision);
    plan
}

/// Records what the current plan's receivers are owed by a batch.
fn expect_batch(
    expected: &mut BTreeMap<(SiteId, StreamId), u64>,
    plan: &DisseminationPlan,
    frames: u64,
) {
    for sp in plan.site_plans() {
        for stream in sp.received_streams() {
            *expected.entry((sp.site, stream)).or_default() += frames;
        }
    }
}

/// Mid-flight reconfiguration: frames are delivered under plan A, a delta
/// is applied to the *running* RPs, frames are delivered under plan B —
/// and a socket-free reroute is proven to establish and close nothing.
#[test]
fn socket_live_reconfiguration_applies_deltas_mid_flight() {
    let p = reconfigure_universe();
    let mut m = OverlayManager::new(p.clone());
    m.subscribe(site(1), stream(0, 0)).unwrap();
    let plan_a = plan_at(&p, &m, 0);
    assert_eq!(plan_a.site_plan(site(1)).in_degree(), 1);

    let mut expected = BTreeMap::new();
    let mut cluster = LiveCluster::launch(&plan_a, &quick_config(3)).expect("launch");

    // Plan A flows.
    cluster.publish(3).expect("batch under plan A");
    expect_batch(&mut expected, cluster.plan(), 3);

    // Delta 1: site 2 joins stream 0.0 — one new connection somewhere.
    m.subscribe(site(2), stream(0, 0)).unwrap();
    let plan_b = plan_at(&p, &m, 1);
    let delta = PlanDelta::diff(&plan_a, &plan_b);
    let report = cluster.apply_delta(&delta).expect("delta applies live");
    assert_eq!(report.revision, 1);
    assert_eq!(cluster.revision(), 1);
    assert_eq!(report.established.len(), 1, "site 2 needs one new link");
    assert!(report.closed.is_empty());
    assert!(!report.is_socket_free());

    cluster.publish(4).expect("batch under plan B");
    expect_batch(&mut expected, cluster.plan(), 4);

    // Delta 2: a second stream lands on the already-connected 0 → 1 pair
    // — a socket-free reconfiguration must open and close nothing.
    let opened_before = cluster.connections_opened();
    let closed_before = cluster.connections_closed();
    m.subscribe(site(1), stream(0, 1)).unwrap();
    let plan_c = plan_at(&p, &m, 2);
    let delta = PlanDelta::diff(&plan_b, &plan_c);
    let report = cluster.apply_delta(&delta).expect("socket-free delta");
    assert!(report.is_socket_free(), "second stream rides the same link");
    assert!(report.established.is_empty());
    assert!(report.closed.is_empty());
    assert!(report.reconfigured_sites > 0, "tables still changed");
    assert_eq!(cluster.connections_opened(), opened_before);
    assert_eq!(cluster.connections_closed(), closed_before);

    cluster.publish(2).expect("batch under plan C");
    expect_batch(&mut expected, cluster.plan(), 2);

    // Delta 3: site 2 leaves again — its link's last stream goes, so the
    // connection closes (observed on the receive side via the Hello
    // attribution).
    m.unsubscribe(site(2), stream(0, 0)).unwrap();
    let plan_d = plan_at(&p, &m, 3);
    let delta = PlanDelta::diff(&plan_c, &plan_d);
    let report = cluster.apply_delta(&delta).expect("closing delta");
    assert_eq!(report.closed.len(), 1, "site 2's only link closes");
    assert!(report.established.is_empty());

    cluster.publish(5).expect("batch under plan D");
    expect_batch(&mut expected, cluster.plan(), 5);

    let report = cluster.shutdown();
    assert_eq!(report.final_revision, 3);
    assert_eq!(report.connections_opened, 1);
    assert_eq!(report.connections_closed, 1);
    assert_eq!(
        report.delivered, expected,
        "every batch must deliver exactly per its epoch's plan"
    );
    // Site 1 saw all four batches of s0.0 but only the last two of s0.1.
    assert_eq!(report.delivered[&(site(1), stream(0, 0))], 14);
    assert_eq!(report.delivered[&(site(1), stream(0, 1))], 7);
    assert_eq!(report.delivered[&(site(2), stream(0, 0))], 6);
}

/// A long-lived cluster must survive idling past its configured timeout:
/// the read deadline is a shutdown wake-up, not a link lifetime. Both the
/// data links and the RP-side control channels have to outlive the idle
/// gap — publishing and reconfiguring afterwards still works.
#[test]
fn socket_idle_cluster_survives_past_the_read_timeout() {
    let p = reconfigure_universe();
    let mut m = OverlayManager::new(p.clone());
    m.subscribe(site(1), stream(0, 0)).unwrap();
    let plan_a = plan_at(&p, &m, 0);

    let config = ClusterConfig {
        frames_per_stream: 2,
        payload_bytes: 256,
        frame_interval: None,
        timeout: Duration::from_millis(400),
    };
    let mut cluster = LiveCluster::launch(&plan_a, &config).expect("launch");
    cluster.publish(2).expect("batch before the idle gap");

    // Idle well past the 400 ms read timeout.
    std::thread::sleep(Duration::from_millis(1000));

    // Data links still deliver…
    cluster.publish(2).expect("idle data links must survive");
    // …and the control channels still reconfigure.
    m.subscribe(site(2), stream(0, 0)).unwrap();
    let plan_b = plan_at(&p, &m, 1);
    let report = cluster
        .apply_delta(&PlanDelta::diff(&plan_a, &plan_b))
        .expect("idle control channels must survive");
    assert_eq!(report.established.len(), 1);
    cluster
        .publish(2)
        .expect("batch under the reconfigured plan");

    let report = cluster.shutdown();
    assert_eq!(report.delivered[&(site(1), stream(0, 0))], 6);
    assert_eq!(report.delivered[&(site(2), stream(0, 0))], 2);
}

/// The full paper pipeline on real TCP: a `SessionRuntime` churn trace
/// (FOV change → overlay repair → delta) drives a running `LiveCluster`
/// epoch by epoch — every delta lands on live RPs, frames are delivered
/// correctly before and after each reconfiguration, and socket-free
/// deltas open/close zero connections.
#[test]
fn socket_session_runtime_churn_drives_the_live_cluster() {
    const SITES: usize = 5;
    const DISPLAYS: u32 = 2;
    let costs = CostMatrix::from_fn(SITES, |i, j| CostMs::new(3 + ((i * 5 + j) % 4) as u32));
    let mut session = Session::builder(costs)
        .cameras_per_site(4)
        .displays_per_site(DISPLAYS)
        .symmetric_capacity(Degree::new(8))
        .build();
    // Initial gazes so the launch plan already carries traffic.
    for s in SiteId::all(SITES) {
        let i = s.index() as u32;
        session.subscribe_viewpoint(DisplayId::new(s, 0), SiteId::new((i + 1) % SITES as u32));
    }
    let universe = subscription_universe(&session).unwrap();
    let mut runtime = SessionRuntime::new(universe, session, RuntimeConfig::default()).unwrap();
    assert!(
        runtime
            .plan()
            .site_plans()
            .iter()
            .any(|sp| sp.in_degree() > 0),
        "the seeded plan must disseminate something"
    );

    let mut cluster = LiveCluster::launch(runtime.plan(), &quick_config(2)).expect("launch");
    let mut expected = BTreeMap::new();

    // Frames flow before any reconfiguration.
    cluster.publish(2).expect("seed batch");
    expect_batch(&mut expected, cluster.plan(), 2);

    let trace = TraceConfig {
        epochs: 8,
        events_per_epoch: 3,
        ..TraceConfig::default()
    }
    .generate(SITES, DISPLAYS, &mut ChaCha8Rng::seed_from_u64(2008));

    let mut socket_free_deltas = 0usize;
    for (i, events) in trace.iter().enumerate() {
        let outcome = runtime.apply_epoch(events);
        let opened_before = cluster.connections_opened();
        let closed_before = cluster.connections_closed();
        let report = cluster
            .apply_delta(&outcome.delta)
            .unwrap_or_else(|e| panic!("epoch {i}: delta rejected: {e}"));

        // The cluster tracks the runtime revision in lock-step.
        assert_eq!(report.revision, runtime.plan().revision());
        assert_eq!(cluster.revision(), runtime.plan().revision());
        assert_eq!(cluster.plan(), runtime.plan(), "epoch {i}: plans diverged");
        if report.is_socket_free() {
            socket_free_deltas += 1;
            assert_eq!(cluster.connections_opened(), opened_before);
            assert_eq!(cluster.connections_closed(), closed_before);
        }

        // Frames flow correctly under the reconfigured plan.
        cluster
            .publish(2)
            .unwrap_or_else(|e| panic!("epoch {i}: post-delta batch failed: {e}"));
        expect_batch(&mut expected, cluster.plan(), 2);
    }
    assert!(
        socket_free_deltas > 0,
        "the trace should produce at least one socket-free epoch"
    );

    let report = cluster.shutdown();
    assert_eq!(report.final_revision, runtime.plan().revision());
    assert_eq!(
        report.delivered, expected,
        "cumulative deliveries must match every epoch's plan exactly"
    );
}

/// The `DeltaSink` bridge: `SessionRuntime::drive_epochs` pushes every
/// epoch's delta straight into the running cluster.
#[test]
fn socket_drive_epochs_bridges_runtime_and_cluster() {
    const SITES: usize = 4;
    let costs = CostMatrix::from_fn(SITES, |_, _| CostMs::new(5));
    let mut session = Session::builder(costs)
        .cameras_per_site(4)
        .displays_per_site(1)
        .symmetric_capacity(Degree::new(8))
        .build();
    session.subscribe_viewpoint(DisplayId::new(site(0), 0), site(1));
    let universe = subscription_universe(&session).unwrap();
    let mut runtime = SessionRuntime::new(universe, session, RuntimeConfig::default()).unwrap();

    let mut cluster = LiveCluster::launch(runtime.plan(), &quick_config(2)).expect("launch");
    let trace = vec![
        vec![teeve::runtime::RuntimeEvent::Viewpoint {
            display: DisplayId::new(site(2), 0),
            target: site(0),
        }],
        vec![teeve::runtime::RuntimeEvent::Viewpoint {
            display: DisplayId::new(site(0), 0),
            target: site(3),
        }],
    ];
    let outcomes = runtime.drive_epochs(&trace, &mut cluster).expect("bridge");
    assert_eq!(outcomes.len(), 2);
    assert_eq!(cluster.revision(), 2);
    assert_eq!(cluster.plan(), runtime.plan());

    // The final plan delivers on real sockets.
    cluster.publish(3).expect("batch under the final plan");
    let report = cluster.shutdown();
    for sp in runtime.plan().site_plans() {
        for stream in sp.received_streams() {
            assert_eq!(
                report.delivered.get(&(sp.site, stream)).copied(),
                Some(3),
                "stream {stream} incomplete at {}",
                sp.site
            );
        }
    }
}
