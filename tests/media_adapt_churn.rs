//! Cross-crate integration: the media pipeline's measured bit rate drives
//! the dissemination plan, FOV contribution scores drive adaptation, and
//! live churn preserves the overlay invariants.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use teeve::adapt::{AdaptStream, AdaptationController, QualityLadder};
use teeve::geometry::{CyberSpace, FieldOfView, ViewSelector};
use teeve::media::{PipelineStats, ReductionPipeline, SyntheticCapture, FRAME_FPS};
use teeve::prelude::*;
use teeve::pubsub::{run_churn, ChurnEvent};
use teeve::types::{CostMatrix, CostMs, Degree, DisplayId, SiteId, StreamId};

/// Measures the pipeline on a synthetic camera and returns the provisioned
/// Mbps (rounded up from the measured rate).
fn measured_mbps() -> u64 {
    let camera = SyntheticCapture::new(640, 480, 99);
    let pipeline = ReductionPipeline::paper();
    let mut stats = PipelineStats::new();
    for seq in 0..10 {
        stats.record(&pipeline.process(&camera.capture(0.3, seq)).bytes);
    }
    (stats.bitrate_mbps(FRAME_FPS).ceil() as u64).max(1)
}

/// The §1 story, end to end: raw ≈184 Mbps compresses to single-digit
/// Mbps, and a session provisioned at the *measured* rate carries a
/// 4-site meeting with full delivery in the simulator.
#[test]
fn measured_media_rate_carries_a_session() {
    let mbps = measured_mbps();
    assert!(
        (2..=12).contains(&mbps),
        "measured rate {mbps} Mbps outside the paper's band"
    );

    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let costs = CostMatrix::from_fn(4, |i, j| CostMs::new(3 + ((i + j) % 4) as u32 * 2));
    let mut session = Session::builder(costs)
        .cameras_per_site(8)
        .displays_per_site(1)
        .symmetric_capacity(Degree::new(12))
        .stream_profile(StreamProfile::compressed_mbps(mbps))
        .build();
    for site in SiteId::all(4) {
        let target = SiteId::new((site.index() as u32 + 1) % 4);
        session.subscribe_viewpoint(DisplayId::new(site, 0), target);
    }
    let (outcome, plan) = session.build_plan(&RandomJoin, &mut rng).expect("plan");
    assert_eq!(outcome.metrics().rejection_ratio(), 0.0);

    let report = simulate(&plan, &SimConfig::short());
    assert_eq!(report.delivery_ratio(), 1.0);
    // Serialization rounding can make each frame a microsecond late, but
    // steady-state delivery must stay essentially jitter-free.
    assert!(report.worst_jitter() <= teeve::sim::SimTime::from_micros(2));
}

/// FOV contribution scores flow into the adaptation controller: under a
/// tight budget, the streams kept at full quality are exactly the top
/// scorers.
#[test]
fn adaptation_keeps_the_most_contributing_streams() {
    let space = CyberSpace::meeting_circle(4, 8);
    let eye =
        space.participant_position(SiteId::new(0)) + teeve::geometry::Vec3::new(0.0, 0.0, 1.6);
    let fov = FieldOfView::looking_at(eye, space.participant_position(SiteId::new(2)), 70.0);
    let scored = ViewSelector::top_k(5).select(&space, &fov);
    assert!(scored.len() >= 3, "need a real stream set to adapt");

    let streams: Vec<AdaptStream> = scored
        .iter()
        .map(|s| AdaptStream {
            stream: s.stream,
            score: s.score,
            ladder: QualityLadder::paper_default(),
        })
        .collect();

    // Budget for roughly half the full-quality demand.
    let full: u64 = streams.iter().map(|s| s.ladder.full().bitrate_bps).sum();
    let plan = AdaptationController::new().plan(full / 2, &streams);
    assert!(plan.total_bitrate_bps() <= full / 2);

    // The best-scored stream is served at full quality; the worst is not.
    let best = &scored[0];
    let worst = scored.last().unwrap();
    assert_eq!(plan.decision(best.stream).unwrap().level, Some(0));
    assert_ne!(plan.decision(worst.stream).unwrap().level, Some(0));
}

/// Churn at session level leaves a forest that satisfies every static
/// invariant, checked through the public API only.
#[test]
fn churned_session_forest_validates_against_the_universe() {
    let costs = CostMatrix::from_fn(5, |i, j| CostMs::new(4 + ((i + j) % 3) as u32));
    let mut session = Session::builder(costs.clone())
        .cameras_per_site(6)
        .displays_per_site(2)
        .symmetric_capacity(Degree::new(8))
        .build();
    for site in SiteId::all(5) {
        let i = site.index() as u32;
        session.subscribe_viewpoint(DisplayId::new(site, 0), SiteId::new((i + 1) % 5));
        session.subscribe_viewpoint(DisplayId::new(site, 1), SiteId::new((i + 2) % 5));
    }
    let events: Vec<ChurnEvent> = (0..15u32)
        .map(|k| ChurnEvent::Retarget {
            display: DisplayId::new(SiteId::new(k % 5), k % 2),
            target: SiteId::new((k % 5 + 1 + k % 3) % 5),
        })
        .collect();
    let (report, forest) = run_churn(&mut session, &events, true).expect("churn runs");
    assert_eq!(report.events, 15);
    assert!(report.acceptance_ratio() > 0.5);

    // Rebuild the subscription universe through public accessors and
    // validate the final forest against it.
    let streams: Vec<u32> = SiteId::all(5)
        .map(|s| session.rp(s).camera_count())
        .collect();
    let mut builder =
        teeve::overlay::ProblemInstance::builder(session.costs().clone(), session.cost_bound())
            .capacities(session.capacities().to_vec())
            .streams_per_site(&streams);
    for sub in SiteId::all(5) {
        for origin in SiteId::all(5) {
            if sub == origin {
                continue;
            }
            for q in 0..streams[origin.index()] {
                builder = builder.subscribe(sub, StreamId::new(origin, q));
            }
        }
    }
    let universe = builder.build().expect("universe");
    teeve::overlay::validate_forest(&universe, &forest).expect("invariants after churn");
}

/// The unicast baseline and the optimal solver bracket the heuristics:
/// optimal ≤ RJ ≤ unicast on a source-constrained instance.
#[test]
fn optimal_rj_unicast_bracket() {
    let costs = CostMatrix::from_fn(3, |_, _| CostMs::new(5));
    let problem = teeve::overlay::ProblemInstance::builder(costs, CostMs::new(50))
        .capacities(vec![
            teeve::overlay::NodeCapacity::symmetric(Degree::new(1)),
            teeve::overlay::NodeCapacity::symmetric(Degree::new(4)),
            teeve::overlay::NodeCapacity::symmetric(Degree::new(4)),
        ])
        .streams_per_site(&[2, 0, 0])
        .subscribe(SiteId::new(1), StreamId::new(SiteId::new(0), 0))
        .subscribe(SiteId::new(2), StreamId::new(SiteId::new(0), 0))
        .subscribe(SiteId::new(1), StreamId::new(SiteId::new(0), 1))
        .subscribe(SiteId::new(2), StreamId::new(SiteId::new(0), 1))
        .build()
        .expect("instance");

    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let optimal = OptimalSolver::default()
        .solve(&problem)
        .expect("small instance")
        .metrics()
        .rejected_requests;
    let rj = RandomJoin
        .construct(&problem, &mut rng)
        .metrics()
        .rejected_requests;
    let unicast = UnicastBaseline
        .construct(&problem, &mut rng)
        .metrics()
        .rejected_requests;
    assert!(optimal <= rj, "optimal {optimal} vs RJ {rj}");
    assert!(rj <= unicast, "RJ {rj} vs unicast {unicast}");
    // Unicast is hard-limited by the source's single out-slot.
    assert_eq!(unicast, 3);
}
