//! Property-based tests over the core invariants, spanning crates.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use teeve::overlay::{
    validate_forest, ConstructionAlgorithm, CorrelatedRandomJoin, GranLtf, LargestTreeFirst,
    ProblemInstance, RandomJoin, SmallestTreeFirst,
};
use teeve::prelude::*;
use teeve::sim::{simulate, SimConfig};
use teeve::types::{CostMatrix, CostMs, Degree, SiteId, StreamId};

/// Builds an arbitrary problem instance from proptest-drawn parameters.
fn arbitrary_problem(
    n: usize,
    capacity: u32,
    bound: u32,
    edges: &[(u8, u8, u8)], // (subscriber, origin, stream index) mod-mapped
    cost_seed: u8,
) -> Option<ProblemInstance> {
    let streams_per_site = 4u32;
    let costs = CostMatrix::from_fn(n, |i, j| {
        CostMs::new(1 + ((i * 31 + j * 17 + cost_seed as usize) % 9) as u32)
    });
    let mut builder = ProblemInstance::builder(costs, CostMs::new(bound))
        .symmetric_capacities(Degree::new(capacity))
        .streams_per_site(&vec![streams_per_site; n]);
    for &(sub, origin, q) in edges {
        let sub = SiteId::new(u32::from(sub) % n as u32);
        let origin_site = SiteId::new(u32::from(origin) % n as u32);
        if sub == origin_site {
            continue;
        }
        let stream = StreamId::new(origin_site, u32::from(q) % streams_per_site);
        builder = builder.subscribe(sub, stream);
    }
    builder.build().ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever the instance, every algorithm's forest satisfies the
    /// degree and latency constraints and contains only subscribers.
    #[test]
    fn forests_always_satisfy_constraints(
        n in 3usize..7,
        capacity in 1u32..8,
        bound in 2u32..25,
        edges in proptest::collection::vec((0u8..7, 0u8..7, 0u8..4), 0..60),
        cost_seed in 0u8..255,
        algo_seed in 0u64..1000,
    ) {
        let Some(problem) = arbitrary_problem(n, capacity, bound, &edges, cost_seed) else {
            return Ok(());
        };
        let gran = GranLtf::new(1 + (algo_seed as usize % 5));
        let algos: Vec<&dyn ConstructionAlgorithm> = vec![
            &RandomJoin, &LargestTreeFirst, &SmallestTreeFirst, &CorrelatedRandomJoin, &gran,
        ];
        for algo in algos {
            let mut rng = ChaCha8Rng::seed_from_u64(algo_seed);
            let outcome = algo.construct(&problem, &mut rng);
            prop_assert!(validate_forest(&problem, outcome.forest()).is_ok(),
                "{} built an invalid forest", algo.name());
            let m = outcome.metrics();
            prop_assert_eq!(m.accepted_requests + m.rejected_requests, m.total_requests);
            prop_assert!((0.0..=1.0).contains(&m.rejection_ratio));
            prop_assert!((0.0..=1.0).contains(&m.pair_rejection_ratio));
            prop_assert!(m.weighted_rejection >= 0.0);
        }
    }

    /// CO-RJ never loses more *requests* than it must: its forest is valid
    /// and its weighted rejection never exceeds RJ's on the same seed by
    /// more than numerical noise... structurally we assert validity plus
    /// the swap guarantee: every swap preserved degree usage.
    #[test]
    fn corj_is_structurally_sound(
        n in 3usize..6,
        capacity in 1u32..6,
        edges in proptest::collection::vec((0u8..6, 0u8..6, 0u8..4), 0..50),
        seed in 0u64..500,
    ) {
        let Some(problem) = arbitrary_problem(n, capacity, 20, &edges, 7) else {
            return Ok(());
        };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let outcome = CorrelatedRandomJoin.construct(&problem, &mut rng);
        prop_assert!(validate_forest(&problem, outcome.forest()).is_ok());
    }

    /// The simulator conserves frames: delivered == expected for any valid
    /// plan (no loss, no duplication), and latencies are positive.
    #[test]
    fn simulator_conserves_frames(
        n in 3usize..6,
        capacity in 2u32..8,
        edges in proptest::collection::vec((0u8..6, 0u8..6, 0u8..4), 1..40),
        seed in 0u64..500,
    ) {
        let Some(problem) = arbitrary_problem(n, capacity, 40, &edges, 3) else {
            return Ok(());
        };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let outcome = RandomJoin.construct(&problem, &mut rng);
        let plan = DisseminationPlan::from_forest(
            &problem, outcome.forest(), StreamProfile::default());
        let report = simulate(&plan, &SimConfig::short());
        prop_assert_eq!(report.delivery_ratio(), 1.0);
        // Per planned (site, stream) delivery, at least one frame and all
        // with sane latencies.
        for sp in plan.site_plans() {
            for stream in sp.received_streams() {
                let stats = report.stream_stats(sp.site, stream);
                prop_assert!(stats.is_some(), "missing delivery {} at {}", stream, sp.site);
                let stats = stats.unwrap();
                prop_assert!(stats.frames() > 0);
                prop_assert!(stats.max_latency() >= stats.mean_latency());
            }
        }
    }

    /// Workload generation always produces problems the builder accepts,
    /// with demand within the theoretical envelope.
    #[test]
    fn workload_generation_is_well_formed(
        n in 3usize..8,
        seed in 0u64..1000,
        zipf in proptest::bool::ANY,
        heterogeneous in proptest::bool::ANY,
    ) {
        let costs = CostMatrix::from_fn(n, |i, j| CostMs::new(2 + ((i + j) % 7) as u32));
        let config = match (zipf, heterogeneous) {
            (true, true) => WorkloadConfig::zipf_heterogeneous(),
            (true, false) => WorkloadConfig::zipf_uniform(),
            (false, true) => WorkloadConfig::random_heterogeneous(),
            (false, false) => WorkloadConfig::random_uniform(),
        };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let problem = config.generate(&costs, &mut rng).expect("n >= 3");
        prop_assert_eq!(problem.site_count(), n);
        // No site subscribes to itself; all requests reference real streams.
        for r in problem.requests() {
            prop_assert!(r.subscriber != r.stream.origin());
            prop_assert!(r.stream.local_index() < problem.streams_of(r.stream.origin()));
        }
        // Total requests bounded by sites x all remote streams.
        let total_streams: u32 = (0..n)
            .map(|i| problem.streams_of(SiteId::new(i as u32)))
            .sum();
        prop_assert!(problem.total_requests() <= n * total_streams as usize);
    }

    /// The unicast baseline obeys the same invariants as the overlay
    /// algorithms, and its trees never relay (depth ≤ 1).
    #[test]
    fn unicast_baseline_builds_valid_stars(
        n in 3usize..7,
        capacity in 1u32..8,
        bound in 2u32..25,
        edges in proptest::collection::vec((0u8..7, 0u8..7, 0u8..4), 0..60),
        seed in 0u64..500,
    ) {
        let Some(problem) = arbitrary_problem(n, capacity, bound, &edges, 5) else {
            return Ok(());
        };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let outcome = UnicastBaseline.construct(&problem, &mut rng);
        prop_assert!(validate_forest(&problem, outcome.forest()).is_ok());
        for tree in outcome.forest().trees() {
            prop_assert!(tree.depth() <= 1, "unicast must not relay");
        }
        for i in 0..n as u32 {
            prop_assert_eq!(outcome.forest().relay_degree(SiteId::new(i)), 0);
        }
    }

    /// The exact solver is never beaten by any heuristic or the unicast
    /// baseline, and its forest satisfies every constraint.
    #[test]
    fn optimal_lower_bounds_every_heuristic(
        capacity in 1u32..4,
        bound in 4u32..25,
        edges in proptest::collection::vec((0u8..3, 0u8..3, 0u8..2), 0..9),
        seed in 0u64..300,
    ) {
        // 3 sites, 2 streams each, ≤9 raw edges: within the solver caps
        // after duplicate collapsing.
        let streams_per_site = 2u32;
        let costs = CostMatrix::from_fn(3, |i, j| {
            CostMs::new(1 + ((i * 31 + j * 17) % 9) as u32)
        });
        let mut builder = ProblemInstance::builder(costs, CostMs::new(bound))
            .symmetric_capacities(Degree::new(capacity))
            .streams_per_site(&[streams_per_site; 3]);
        for &(sub, origin, q) in &edges {
            let sub = SiteId::new(u32::from(sub) % 3);
            let origin_site = SiteId::new(u32::from(origin) % 3);
            if sub == origin_site {
                continue;
            }
            builder = builder.subscribe(sub, StreamId::new(origin_site, u32::from(q) % streams_per_site));
        }
        let Ok(problem) = builder.build() else { return Ok(()); };

        let optimal = teeve::overlay::OptimalSolver::default()
            .solve(&problem)
            .expect("within caps");
        prop_assert!(validate_forest(&problem, optimal.forest()).is_ok());
        let best = optimal.metrics().rejected_requests;

        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let algos: Vec<&dyn ConstructionAlgorithm> =
            vec![&RandomJoin, &LargestTreeFirst, &SmallestTreeFirst, &UnicastBaseline];
        for algo in algos {
            let h = algo.construct(&problem, &mut rng).metrics().rejected_requests;
            prop_assert!(best <= h, "{} rejected {h} < optimal {best}", algo.name());
        }
    }

    /// `link_changes` partitions the site-level connection consequences
    /// of any delta exactly: what it establishes is new, what it closes is
    /// gone, and established ∪ retained is precisely the after-state.
    #[test]
    fn link_changes_partition_the_connection_graph(
        n in 3usize..7,
        capacity in 1u32..8,
        edges in proptest::collection::vec((0u8..7, 0u8..7, 0u8..4), 1..60),
        ops in proptest::collection::vec((proptest::bool::ANY, 0usize..64), 0..40),
        split in 0usize..40,
        cost_seed in 0u8..255,
    ) {
        use std::collections::BTreeSet;
        use teeve::net::link_changes;
        use teeve::overlay::OverlayManager;
        use teeve::pubsub::PlanDelta;

        let Some(problem) = arbitrary_problem(n, capacity, 30, &edges, cost_seed) else {
            return Ok(());
        };
        let requests: Vec<_> = problem
            .requests()
            .map(|r| (r.subscriber, r.stream))
            .collect();
        if requests.is_empty() {
            return Ok(());
        }
        let mut manager = OverlayManager::new(problem.clone());
        let run = |manager: &mut OverlayManager, ops: &[(bool, usize)]| {
            for &(join, pick) in ops {
                let (sub, stream) = requests[pick % requests.len()];
                if join {
                    let _ = manager.subscribe(sub, stream);
                } else {
                    let _ = manager.unsubscribe(sub, stream);
                }
            }
        };
        let split = split.min(ops.len());
        run(&mut manager, &ops[..split]);
        let before = DisseminationPlan::from_forest(
            &problem, &manager.forest_snapshot(), StreamProfile::default());
        run(&mut manager, &ops[split..]);
        let after = DisseminationPlan::from_forest(
            &problem, &manager.forest_snapshot(), StreamProfile::default());

        let pairs = |plan: &DisseminationPlan| -> BTreeSet<(SiteId, SiteId)> {
            plan.edges().map(|(p, c, _)| (p, c)).collect()
        };
        let before_pairs = pairs(&before);
        let after_pairs = pairs(&after);

        let delta = PlanDelta::diff(&before, &after);
        let changes = link_changes(&before, &delta).expect("delta matches before");
        let established: BTreeSet<_> = changes.established.iter().copied().collect();
        let closed: BTreeSet<_> = changes.closed.iter().copied().collect();
        let retained: BTreeSet<_> = changes.retained.iter().copied().collect();

        // established ∪ retained == after-pairs.
        let after_rebuilt: BTreeSet<_> = established.union(&retained).copied().collect();
        prop_assert_eq!(&after_rebuilt, &after_pairs);
        // closed ∪ retained == before-pairs.
        let before_rebuilt: BTreeSet<_> = closed.union(&retained).copied().collect();
        prop_assert_eq!(&before_rebuilt, &before_pairs);
        // established ∩ before == ∅ — never "open" a live connection.
        prop_assert!(established.is_disjoint(&before_pairs));
        // closed ∩ after == ∅ — never close a connection still in use.
        prop_assert!(closed.is_disjoint(&after_pairs));
        // The three classes never overlap.
        prop_assert!(established.is_disjoint(&closed));
        prop_assert!(established.is_disjoint(&retained));
        prop_assert!(closed.is_disjoint(&retained));
        // Socket-free means exactly: the connection graph is unchanged.
        prop_assert_eq!(changes.is_socket_free(), before_pairs == after_pairs);
    }

    /// Cost matrices sampled from the backbone are metric and symmetric.
    #[test]
    fn backbone_sessions_are_metric(n in 3usize..12, seed in 0u64..200) {
        let topo = teeve::topology::backbone_north_america();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let session = topo.sample_session(n, &mut rng).expect("session");
        prop_assert!(session.costs.is_metric());
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(session.costs.cost_idx(i, j), session.costs.cost_idx(j, i));
                if i != j {
                    prop_assert!(session.costs.cost_idx(i, j) > CostMs::ZERO);
                }
            }
        }
    }
}
