//! Vendored minimal stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`], [`BytesMut`], and the [`Buf`]/[`BufMut`] method
//! traits the wire codec and TCP cluster use. Cheap clones of [`Bytes`]
//! share one allocation via `Arc`, as upstream does; slicing refinements
//! beyond what this workspace needs are omitted.

#![forbid(unsafe_code)]

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply cloneable byte buffer with a consuming read
/// cursor (clones share the underlying allocation).
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    /// Read cursor: bytes before it are consumed.
    start: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: bytes.into(),
            start: 0,
        }
    }

    /// Returns the unconsumed length in bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    /// Returns true if no unconsumed bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a new buffer viewing `range` of the unconsumed bytes
    /// (shares the allocation).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: core::ops::Range<usize>) -> Bytes {
        assert!(range.end <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
        }
        .truncated_to(range.end - range.start)
    }

    fn truncated_to(self, len: usize) -> Bytes {
        if self.len() == len {
            self
        } else {
            Bytes {
                data: self[..len].into(),
                start: 0,
            }
        }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl core::hash::Hash for Bytes {
    fn hash<H: core::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            data: v.into(),
            start: 0,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes {
            data: v.into(),
            start: 0,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Buf for Bytes {
    fn advance(&mut self, count: usize) {
        assert!(count <= self.len(), "advance past end of buffer");
        self.start += count;
    }

    fn get_u8(&mut self) -> u8 {
        let b = self[0];
        self.advance(1);
        b
    }

    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }

    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }
}

/// A growable byte buffer with a consuming read cursor at the front.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut {
    data: Vec<u8>,
    /// Read cursor: bytes before it are consumed.
    start: usize,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
            start: 0,
        }
    }

    /// Returns the unconsumed length.
    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    /// Returns true if no unconsumed bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, bytes: &[u8]) {
        self.compact_if_large();
        self.data.extend_from_slice(bytes);
    }

    /// Splits off and returns the first `at` unconsumed bytes.
    ///
    /// # Panics
    ///
    /// Panics if `at` exceeds the unconsumed length.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let front = self.data[self.start..self.start + at].to_vec();
        self.start += at;
        BytesMut {
            data: front,
            start: 0,
        }
    }

    /// Freezes the unconsumed bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data[self.start..].into(),
            start: 0,
        }
    }

    /// Drops consumed prefix storage once it dominates the buffer.
    fn compact_if_large(&mut self) {
        if self.start > 4096 && self.start * 2 > self.data.len() {
            self.data.drain(..self.start);
            self.start = 0;
        }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(bytes: &[u8]) -> Self {
        BytesMut {
            data: bytes.to_vec(),
            start: 0,
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

/// Read-side accessors over a byte buffer.
pub trait Buf {
    /// Advances the read cursor by `count` bytes.
    fn advance(&mut self, count: usize);
    /// Reads one byte.
    fn get_u8(&mut self) -> u8;
    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;
    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
}

impl Buf for BytesMut {
    fn advance(&mut self, count: usize) {
        assert!(count <= self.len(), "advance past end of buffer");
        self.start += count;
    }

    fn get_u8(&mut self) -> u8 {
        let b = self[0];
        self.advance(1);
        b
    }

    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }

    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }
}

/// Write-side accessors over a byte buffer.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, value: u8);
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, value: u32);
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, value: u64);
    /// Appends a slice.
    fn put_slice(&mut self, bytes: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, value: u8) {
        self.extend_from_slice(&[value]);
    }

    fn put_u32_le(&mut self, value: u32) {
        self.extend_from_slice(&value.to_le_bytes());
    }

    fn put_u64_le(&mut self, value: u64) {
        self.extend_from_slice(&value.to_le_bytes());
    }

    fn put_slice(&mut self, bytes: &[u8]) {
        self.extend_from_slice(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        buf.put_slice(b"tail");
        assert_eq!(buf.get_u8(), 7);
        assert_eq!(buf.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(buf.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(&buf[..], b"tail");
    }

    #[test]
    fn split_to_and_freeze() {
        let mut buf = BytesMut::new();
        buf.put_slice(b"headtail");
        let head = buf.split_to(4);
        assert_eq!(&head[..], b"head");
        assert_eq!(head.freeze().as_ref(), b"head");
        assert_eq!(&buf[..], b"tail");
    }

    #[test]
    fn bytes_clone_shares_contents() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(Bytes::from_static(b"xy").as_ref(), b"xy");
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn compaction_preserves_contents() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_slice(&[0xAA; 8192]);
        buf.advance(8000);
        buf.extend_from_slice(&[0xBB; 4]);
        assert_eq!(buf.len(), 196);
        assert_eq!(buf[buf.len() - 1], 0xBB);
    }
}
