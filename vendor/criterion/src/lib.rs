//! Vendored minimal stand-in for `criterion`.
//!
//! Provides the `criterion_group!`/`criterion_main!` macros, `Criterion`,
//! benchmark groups, and `Bencher::iter`, with a simple mean-of-samples
//! measurement printed to stdout. No statistical analysis, plots, or
//! saved baselines — just honest relative wall-clock numbers, which is
//! what the workspace's benches compare.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// An id made of a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Runs timed closures and records their mean iteration time.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Mean per-iteration time of the last `iter` call.
    last_mean: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, first warming up, then measuring a fixed batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until ~20 ms or 10 iterations, whichever first.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_iters < 10 && warm_start.elapsed() < Duration::from_millis(20) {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;

        // Aim for ~100 ms of measurement, 5..=1000 iterations.
        let target = Duration::from_millis(100);
        let iters = if per_iter.is_zero() {
            1000
        } else {
            (target.as_nanos() / per_iter.as_nanos().max(1)).clamp(5, 1000) as u64
        };
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.last_mean = Some(start.elapsed() / iters as u32);
    }
}

fn print_result(group: Option<&str>, id: &str, mean: Option<Duration>) {
    let name = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    match mean {
        Some(mean) => println!(
            "bench: {name:<60} {:>12.3} µs/iter",
            mean.as_nanos() as f64 / 1e3
        ),
        None => println!("bench: {name:<60} (no measurement)"),
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the sample count is adaptive.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        print_result(Some(&self.name), &id.into().0, bencher.last_mean);
        self
    }

    /// Ends the group (printing is immediate; nothing to flush).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        print_result(None, &id.into().0, bencher.last_mean);
        self
    }
}

/// Declares a benchmark group function running each listed bench.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        b.iter(|| (0..100u64).sum::<u64>());
        assert!(b.last_mean.is_some());
    }

    #[test]
    fn groups_run_their_benches() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut ran = false;
        group
            .sample_size(10)
            .bench_function(BenchmarkId::from_parameter("x"), |b| {
                ran = true;
                b.iter(|| 1 + 1);
            });
        group.finish();
        assert!(ran);
        c.bench_function("standalone", |b| b.iter(|| 2 + 2));
    }
}
