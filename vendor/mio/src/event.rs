//! Readiness records returned by [`Poll::poll`](crate::Poll::poll).

use std::io;

use crate::sys;
use crate::Token;

/// One readiness record: which token, and which ways it is ready.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    token: usize,
    bits: u32,
}

impl Event {
    /// The token the source was registered with.
    pub fn token(&self) -> Token {
        Token(self.token)
    }

    /// True when the source is readable (or has hung up — a read will
    /// observe EOF or the error without blocking).
    pub fn is_readable(&self) -> bool {
        self.bits & (sys::EPOLLIN | sys::EPOLLHUP | sys::EPOLLRDHUP | sys::EPOLLERR) != 0
    }

    /// True when the source is writable (or errored — a write observes
    /// the failure without blocking).
    pub fn is_writable(&self) -> bool {
        self.bits & (sys::EPOLLOUT | sys::EPOLLHUP | sys::EPOLLERR) != 0
    }

    /// True when the peer closed its write half (or the whole stream).
    pub fn is_read_closed(&self) -> bool {
        self.bits & (sys::EPOLLHUP | sys::EPOLLRDHUP) != 0
    }

    /// True when the source is in an error state.
    pub fn is_error(&self) -> bool {
        self.bits & sys::EPOLLERR != 0
    }
}

/// A reusable buffer of readiness records, filled by each poll.
#[derive(Debug)]
pub struct Events {
    raw: Vec<sys::EpollEvent>,
    filled: Vec<Event>,
}

impl Events {
    /// A buffer receiving at most `capacity` records per poll.
    pub fn with_capacity(capacity: usize) -> Events {
        let capacity = capacity.max(1);
        Events {
            raw: vec![sys::EpollEvent { events: 0, data: 0 }; capacity],
            filled: Vec::with_capacity(capacity),
        }
    }

    /// Iterates the records of the most recent poll.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.filled.iter()
    }

    /// True when the most recent poll returned no records (timeout).
    pub fn is_empty(&self) -> bool {
        self.filled.is_empty()
    }

    /// Number of records the most recent poll returned.
    pub fn len(&self) -> usize {
        self.filled.len()
    }

    /// Discards the most recent poll's records.
    pub fn clear(&mut self) {
        self.filled.clear();
    }

    pub(crate) fn fill(&mut self, epfd: i32, timeout_ms: i32) -> io::Result<()> {
        self.filled.clear();
        let n = sys::epoll_poll(epfd, &mut self.raw, timeout_ms)?;
        for record in &self.raw[..n] {
            // Copy out of the packed struct before use.
            let (events, data) = (record.events, record.data);
            self.filled.push(Event {
                token: data as usize,
                bits: events,
            });
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}
