//! Vendored minimal stand-in for the `mio` crate (offline build).
//!
//! Exposes the subset of mio 0.8's API surface the workspace's reactor
//! uses — [`Poll`]/[`Registry`], [`Token`], [`Interest`],
//! [`event::Events`], [`Waker`], and non-blocking
//! [`net::TcpListener`]/[`net::TcpStream`] wrappers — over Linux epoll.
//! Swapping back to upstream mio is a Cargo.toml-only change.
//!
//! Divergences from upstream, chosen for a simpler shim:
//!
//! - Sockets are registered **level-triggered** (upstream is
//!   edge-triggered). A reactor that drains reads to `WouldBlock` and
//!   only keeps `WRITABLE` interest while it has pending writes — which
//!   the workspace's reactor does — behaves identically under both
//!   disciplines.
//! - The [`Waker`]'s eventfd is registered edge-triggered, so repeated
//!   wakes between polls coalesce into one readiness record and the
//!   counter never needs draining, matching upstream semantics.

use std::io;
use std::time::Duration;

mod sys;

pub mod event;
pub mod net;

use event::Events;

/// Associates a registered event source with the readiness records it
/// produces. The value is chosen by the caller (typically a slab index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub usize);

/// Readiness interest: readable, writable, or both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Interest in read readiness (includes peer hang-up).
    pub const READABLE: Interest = Interest(1);
    /// Interest in write readiness (includes connect completion).
    pub const WRITABLE: Interest = Interest(2);

    /// Combines two interests.
    #[must_use]
    pub const fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// True when read readiness is included.
    pub const fn is_readable(self) -> bool {
        self.0 & 1 != 0
    }

    /// True when write readiness is included.
    pub const fn is_writable(self) -> bool {
        self.0 & 2 != 0
    }

    fn epoll_bits(self) -> u32 {
        let mut bits = sys::EPOLLRDHUP;
        if self.is_readable() {
            bits |= sys::EPOLLIN;
        }
        if self.is_writable() {
            bits |= sys::EPOLLOUT;
        }
        bits
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;

    fn bitor(self, rhs: Interest) -> Interest {
        self.add(rhs)
    }
}

/// An event source that can be registered with a [`Registry`].
///
/// Upstream mio's `event::Source` drives registration through the
/// source; the shim only needs the underlying fd.
pub trait Source {
    /// The raw file descriptor epoll watches.
    fn raw_fd(&self) -> i32;
}

/// Handle for registering event sources with a [`Poll`] instance.
#[derive(Debug)]
pub struct Registry {
    epfd: i32,
}

impl Registry {
    /// Registers `source` for `interests`, tagging its events `token`.
    ///
    /// # Errors
    ///
    /// Propagates the `epoll_ctl` failure (e.g. an already-registered
    /// fd).
    pub fn register<S: Source + ?Sized>(
        &self,
        source: &mut S,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        sys::epoll_control(
            self.epfd,
            sys::EPOLL_CTL_ADD,
            source.raw_fd(),
            interests.epoll_bits(),
            token.0 as u64,
        )
    }

    /// Replaces an existing registration's interests and token.
    ///
    /// # Errors
    ///
    /// Propagates the `epoll_ctl` failure (e.g. an unregistered fd).
    pub fn reregister<S: Source + ?Sized>(
        &self,
        source: &mut S,
        token: Token,
        interests: Interest,
    ) -> io::Result<()> {
        sys::epoll_control(
            self.epfd,
            sys::EPOLL_CTL_MOD,
            source.raw_fd(),
            interests.epoll_bits(),
            token.0 as u64,
        )
    }

    /// Removes `source`'s registration.
    ///
    /// # Errors
    ///
    /// Propagates the `epoll_ctl` failure (e.g. an unregistered fd).
    pub fn deregister<S: Source + ?Sized>(&self, source: &mut S) -> io::Result<()> {
        sys::epoll_control(self.epfd, sys::EPOLL_CTL_DEL, source.raw_fd(), 0, 0)
    }
}

/// The readiness poller: an owned epoll instance.
#[derive(Debug)]
pub struct Poll {
    registry: Registry,
}

impl Poll {
    /// Creates a new poller.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_create1` failure (fd exhaustion).
    pub fn new() -> io::Result<Poll> {
        let epfd = sys::epoll_create()?;
        Ok(Poll {
            registry: Registry { epfd },
        })
    }

    /// The registration handle for this poller.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Blocks until at least one registered source is ready or `timeout`
    /// elapses (`None` blocks indefinitely), filling `events`. A timeout
    /// shorter than a millisecond rounds up so a positive timeout never
    /// becomes a busy-spin zero.
    ///
    /// # Errors
    ///
    /// Propagates the `epoll_wait` failure; `Interrupted` (a signal) is
    /// retried internally.
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        let timeout_ms = match timeout {
            None => -1,
            Some(d) => {
                let ms = d.as_millis();
                if ms == 0 && !d.is_zero() {
                    1
                } else {
                    ms.min(i32::MAX as u128) as i32
                }
            }
        };
        loop {
            match events.fill(self.registry.epfd, timeout_ms) {
                Ok(()) => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for Poll {
    fn drop(&mut self) {
        sys::close_fd(self.registry.epfd);
    }
}

/// Wakes a [`Poll`] blocked in [`Poll::poll`] from another thread.
///
/// Backed by an eventfd registered edge-triggered, so wakes between two
/// polls coalesce into a single readiness record for the waker's token.
#[derive(Debug)]
pub struct Waker {
    fd: i32,
}

impl Waker {
    /// Creates a waker delivering readiness records tagged `token`.
    ///
    /// # Errors
    ///
    /// Propagates eventfd creation or registration failure.
    pub fn new(registry: &Registry, token: Token) -> io::Result<Waker> {
        let fd = sys::eventfd_create()?;
        if let Err(e) = sys::epoll_control(
            registry.epfd,
            sys::EPOLL_CTL_ADD,
            fd,
            sys::EPOLLIN | sys::EPOLLET,
            token.0 as u64,
        ) {
            sys::close_fd(fd);
            return Err(e);
        }
        Ok(Waker { fd })
    }

    /// Wakes the poller. Cheap and thread-safe; callers must not hold
    /// locks the poll thread takes while calling this.
    ///
    /// # Errors
    ///
    /// Propagates the eventfd write failure (`WouldBlock` on a saturated
    /// counter is reported but harmless — readiness is already pending).
    pub fn wake(&self) -> io::Result<()> {
        sys::eventfd_signal(self.fd)
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        sys::close_fd(self.fd);
    }
}

#[cfg(test)]
mod tests {
    use super::net::{TcpListener, TcpStream};
    use super::*;
    use std::io::{Read, Write};
    use std::sync::Arc;

    fn drain_until<F: FnMut(&event::Event) -> bool>(
        poll: &mut Poll,
        events: &mut Events,
        mut hit: F,
    ) {
        for _ in 0..200 {
            poll.poll(events, Some(Duration::from_millis(100))).unwrap();
            if events.iter().any(&mut hit) {
                return;
            }
        }
        panic!("expected readiness never arrived");
    }

    #[test]
    fn accept_read_write_roundtrip() {
        let mut poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(16);
        let mut listener = TcpListener::bind("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = listener.local_addr().unwrap();
        poll.registry()
            .register(&mut listener, Token(1), Interest::READABLE)
            .unwrap();

        let mut dialer = TcpStream::connect(addr).unwrap();
        poll.registry()
            .register(&mut dialer, Token(2), Interest::WRITABLE)
            .unwrap();

        drain_until(&mut poll, &mut events, |e| e.token() == Token(1));
        let (mut accepted, _) = listener.accept().unwrap();
        poll.registry()
            .register(&mut accepted, Token(3), Interest::READABLE)
            .unwrap();

        drain_until(&mut poll, &mut events, |e| {
            e.token() == Token(2) && e.is_writable()
        });
        assert!(dialer.take_error().unwrap().is_none());
        dialer.write_all(b"ping").unwrap();

        drain_until(&mut poll, &mut events, |e| {
            e.token() == Token(3) && e.is_readable()
        });
        let mut buf = [0u8; 8];
        let read = accepted.read(&mut buf).unwrap();
        assert_eq!(&buf[..read], b"ping");
    }

    #[test]
    fn waker_wakes_a_blocked_poll_and_coalesces() {
        let mut poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(4);
        let waker = Arc::new(Waker::new(poll.registry(), Token(7)).unwrap());

        let remote = Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            remote.wake().unwrap();
            remote.wake().unwrap();
        });
        drain_until(&mut poll, &mut events, |e| e.token() == Token(7));
        handle.join().unwrap();

        // Coalesced: after the edge fired once, an idle poll times out
        // instead of replaying the second wake.
        poll.poll(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.iter().all(|e| e.token() != Token(7)));
    }

    #[test]
    fn connect_to_dead_port_reports_the_error_on_writable() {
        // Bind-then-drop reserves a port nothing listens on.
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let mut poll = Poll::new().unwrap();
        let mut events = Events::with_capacity(4);
        let mut conn = TcpStream::connect(dead).unwrap();
        poll.registry()
            .register(&mut conn, Token(9), Interest::WRITABLE)
            .unwrap();
        drain_until(&mut poll, &mut events, |e| e.token() == Token(9));
        assert!(
            conn.take_error().unwrap().is_some() || conn.peer_addr().is_err(),
            "refused connect must surface an error"
        );
    }
}
