//! Non-blocking TCP wrappers registerable with a
//! [`Registry`](crate::Registry).

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr};
use std::os::fd::AsRawFd;

use crate::{sys, Source};

/// A non-blocking TCP listener.
#[derive(Debug)]
pub struct TcpListener {
    inner: std::net::TcpListener,
}

impl TcpListener {
    /// Binds a new non-blocking listener on `addr`.
    ///
    /// # Errors
    ///
    /// Propagates bind failure.
    pub fn bind(addr: SocketAddr) -> io::Result<TcpListener> {
        let inner = std::net::TcpListener::bind(addr)?;
        Self::from_std_checked(inner)
    }

    /// Wraps an already-bound std listener, switching it non-blocking.
    ///
    /// Upstream mio's `from_std` requires the caller to have set
    /// non-blocking mode already; the shim sets it itself and panics only
    /// on the (unobserved in practice) fcntl failure, keeping the
    /// signature identical.
    pub fn from_std(inner: std::net::TcpListener) -> TcpListener {
        Self::from_std_checked(inner).expect("set_nonblocking on a bound listener")
    }

    fn from_std_checked(inner: std::net::TcpListener) -> io::Result<TcpListener> {
        inner.set_nonblocking(true)?;
        Ok(TcpListener { inner })
    }

    /// Accepts one pending connection; `WouldBlock` when none is queued.
    /// The accepted stream is non-blocking.
    ///
    /// # Errors
    ///
    /// `WouldBlock` with an empty accept queue; otherwise the accept
    /// failure.
    pub fn accept(&self) -> io::Result<(TcpStream, SocketAddr)> {
        let (stream, addr) = self.inner.accept()?;
        stream.set_nonblocking(true)?;
        Ok((TcpStream { inner: stream }, addr))
    }

    /// The bound local address.
    ///
    /// # Errors
    ///
    /// Propagates the getsockname failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }
}

impl Source for TcpListener {
    fn raw_fd(&self) -> i32 {
        self.inner.as_raw_fd()
    }
}

/// A non-blocking TCP stream.
///
/// Reads and writes return `WouldBlock` instead of blocking; a stream
/// produced by [`connect`](TcpStream::connect) signals completion via
/// writability (check [`take_error`](TcpStream::take_error) then).
#[derive(Debug)]
pub struct TcpStream {
    inner: std::net::TcpStream,
}

impl TcpStream {
    /// Begins a non-blocking connect to `addr`; the returned stream is
    /// writable once the connect completes (or fails — check
    /// [`take_error`](TcpStream::take_error)).
    ///
    /// # Errors
    ///
    /// Propagates synchronous connect failures (bad address family, fd
    /// exhaustion); in-flight completion is not an error.
    pub fn connect(addr: SocketAddr) -> io::Result<TcpStream> {
        let (fd, _connected) = sys::connect_nonblocking(addr)?;
        Ok(TcpStream {
            inner: sys::stream_from_fd(fd),
        })
    }

    /// Wraps an already-connected std stream, switching it non-blocking.
    ///
    /// See [`TcpListener::from_std`] for the divergence from upstream.
    pub fn from_std(inner: std::net::TcpStream) -> TcpStream {
        inner
            .set_nonblocking(true)
            .expect("set_nonblocking on a connected stream");
        TcpStream { inner }
    }

    /// The peer's address; fails while a connect is still in flight.
    ///
    /// # Errors
    ///
    /// `NotConnected` before the handshake completes.
    pub fn peer_addr(&self) -> io::Result<SocketAddr> {
        self.inner.peer_addr()
    }

    /// The local address.
    ///
    /// # Errors
    ///
    /// Propagates the getsockname failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    /// Disables Nagle's algorithm.
    ///
    /// # Errors
    ///
    /// Propagates the setsockopt failure.
    pub fn set_nodelay(&self, nodelay: bool) -> io::Result<()> {
        self.inner.set_nodelay(nodelay)
    }

    /// Takes the pending socket error — how a failed non-blocking
    /// connect surfaces after the writable event.
    ///
    /// # Errors
    ///
    /// Propagates the getsockopt failure itself.
    pub fn take_error(&self) -> io::Result<Option<io::Error>> {
        self.inner.take_error()
    }

    /// Shuts down the read, write, or both halves.
    ///
    /// # Errors
    ///
    /// Propagates the shutdown failure.
    pub fn shutdown(&self, how: Shutdown) -> io::Result<()> {
        self.inner.shutdown(how)
    }
}

impl Source for TcpStream {
    fn raw_fd(&self) -> i32 {
        self.inner.as_raw_fd()
    }
}

impl Read for TcpStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.inner.read(buf)
    }
}

impl Write for TcpStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl Read for &TcpStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        (&self.inner).read(buf)
    }
}

impl Write for &TcpStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        (&self.inner).write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        (&self.inner).flush()
    }
}
