//! Raw Linux syscall bindings for the poll shim.
//!
//! The build image has no `libc` crate, so the handful of calls epoll
//! needs are declared directly against the C runtime std already links.
//! Everything `unsafe` in the shim lives in this module; the public API
//! in `lib.rs` is safe.

use std::io;
use std::os::raw::{c_int, c_uint, c_void};

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;
pub const EPOLLET: u32 = 1 << 31;

pub const EPOLL_CTL_ADD: c_int = 1;
pub const EPOLL_CTL_DEL: c_int = 2;
pub const EPOLL_CTL_MOD: c_int = 3;

const EPOLL_CLOEXEC: c_int = 0x80000;
const EFD_CLOEXEC: c_int = 0x80000;
const EFD_NONBLOCK: c_int = 0x800;

const AF_INET: c_int = 2;
const AF_INET6: c_int = 10;
const SOCK_STREAM: c_int = 1;
const SOCK_NONBLOCK: c_int = 0x800;
const SOCK_CLOEXEC: c_int = 0x80000;

/// `errno` for a non-blocking connect still in flight.
const EINPROGRESS: i32 = 115;

/// One epoll readiness record. x86-64 Linux declares the struct packed,
/// so field reads below copy out of place.
#[repr(C, packed)]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

impl std::fmt::Debug for EpollEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Copy out of the packed struct before formatting.
        let (events, data) = (self.events, self.data);
        f.debug_struct("EpollEvent")
            .field("events", &events)
            .field("data", &data)
            .finish()
    }
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
    fn connect(sockfd: c_int, addr: *const c_void, addrlen: u32) -> c_int;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
}

fn check(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Creates a close-on-exec epoll instance and returns its fd.
pub fn epoll_create() -> io::Result<i32> {
    check(unsafe { epoll_create1(EPOLL_CLOEXEC) })
}

/// Adds, modifies, or removes `fd` on the epoll instance `epfd`.
pub fn epoll_control(epfd: i32, op: c_int, fd: i32, events: u32, data: u64) -> io::Result<()> {
    let mut event = EpollEvent { events, data };
    check(unsafe { epoll_ctl(epfd, op, fd, &mut event) }).map(|_| ())
}

/// Waits for readiness on `epfd`, filling `buf`; `timeout_ms < 0` blocks
/// indefinitely. Returns the number of records filled.
pub fn epoll_poll(epfd: i32, buf: &mut [EpollEvent], timeout_ms: c_int) -> io::Result<usize> {
    let filled = check(unsafe {
        epoll_wait(
            epfd,
            buf.as_mut_ptr(),
            buf.len().min(c_int::MAX as usize) as c_int,
            timeout_ms,
        )
    })?;
    Ok(filled as usize)
}

/// Creates a non-blocking, close-on-exec eventfd (the wake channel).
pub fn eventfd_create() -> io::Result<i32> {
    check(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })
}

/// Adds 1 to an eventfd counter — the wake-up write. Saturation (which
/// would take 2^64-1 unconsumed wakes) reports `WouldBlock` and is
/// harmless: the pending readiness is already observable.
pub fn eventfd_signal(fd: i32) -> io::Result<()> {
    let one: u64 = 1;
    let wrote = unsafe { write(fd, (&one as *const u64).cast(), 8) };
    if wrote == 8 {
        Ok(())
    } else {
        Err(io::Error::last_os_error())
    }
}

/// Closes a raw fd owned by the shim (epoll and eventfd descriptors;
/// sockets are owned and closed by their `std::net` wrappers).
pub fn close_fd(fd: i32) {
    unsafe {
        close(fd);
    }
}

#[repr(C)]
struct SockAddrV4 {
    family: u16,
    /// Port in network byte order.
    port: [u8; 2],
    addr: [u8; 4],
    zero: [u8; 8],
}

#[repr(C)]
struct SockAddrV6 {
    family: u16,
    /// Port in network byte order.
    port: [u8; 2],
    flowinfo: u32,
    addr: [u8; 16],
    scope_id: u32,
}

/// Begins a non-blocking TCP connect to `addr`. Returns the socket fd
/// and whether the connect already completed (loopback often finishes
/// synchronously); a pending connect signals completion via writability.
pub fn connect_nonblocking(addr: std::net::SocketAddr) -> io::Result<(i32, bool)> {
    let family = match addr {
        std::net::SocketAddr::V4(_) => AF_INET,
        std::net::SocketAddr::V6(_) => AF_INET6,
    };
    let fd = check(unsafe { socket(family, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0) })?;
    let ret = match addr {
        std::net::SocketAddr::V4(v4) => {
            let raw = SockAddrV4 {
                family: AF_INET as u16,
                port: v4.port().to_be_bytes(),
                addr: v4.ip().octets(),
                zero: [0; 8],
            };
            unsafe {
                connect(
                    fd,
                    (&raw as *const SockAddrV4).cast(),
                    std::mem::size_of::<SockAddrV4>() as u32,
                )
            }
        }
        std::net::SocketAddr::V6(v6) => {
            let raw = SockAddrV6 {
                family: AF_INET6 as u16,
                port: v6.port().to_be_bytes(),
                flowinfo: v6.flowinfo(),
                addr: v6.ip().octets(),
                scope_id: v6.scope_id(),
            };
            unsafe {
                connect(
                    fd,
                    (&raw as *const SockAddrV6).cast(),
                    std::mem::size_of::<SockAddrV6>() as u32,
                )
            }
        }
    };
    if ret == 0 {
        return Ok((fd, true));
    }
    let err = io::Error::last_os_error();
    if err.raw_os_error() == Some(EINPROGRESS) {
        Ok((fd, false))
    } else {
        close_fd(fd);
        Err(err)
    }
}

/// Wraps a raw socket fd produced by [`connect_nonblocking`] into an
/// owning `std::net::TcpStream`.
pub fn stream_from_fd(fd: i32) -> std::net::TcpStream {
    use std::os::fd::FromRawFd;
    unsafe { std::net::TcpStream::from_raw_fd(fd) }
}
