//! Vendored stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Only [`Mutex`] is provided (the workspace uses nothing else). Like the
//! real crate, `lock` never returns a poison error: a panic while holding
//! the lock does not poison it for later users.

#![forbid(unsafe_code)]

use std::fmt;

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// The guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}
