//! Vendored stand-in for `parking_lot`, backed by `std::sync`.
//!
//! [`Mutex`] and [`RwLock`] are provided (the workspace uses nothing
//! else). Like the real crate, `lock`/`read`/`write` never return a
//! poison error: a panic while holding the lock does not poison it for
//! later users.

#![forbid(unsafe_code)]

use std::fmt;

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// The guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// The shared guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;

/// The exclusive guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a reader-writer lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Returns mutable access without locking (the `&mut` proves
    /// exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_read_write_round_trip() {
        let mut l = RwLock::new(10u32);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!((*a, *b), (10, 10), "shared readers coexist");
        }
        *l.write() += 5;
        assert_eq!(*l.read(), 15);
        *l.get_mut() += 1;
        assert_eq!(l.into_inner(), 16);
    }

    #[test]
    fn rwlock_is_shareable_across_threads() {
        let l = std::sync::Arc::new(RwLock::new(0u64));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let l = std::sync::Arc::clone(&l);
                scope.spawn(move || {
                    for _ in 0..100 {
                        *l.write() += 1;
                    }
                });
            }
        });
        assert_eq!(*l.read(), 400);
    }
}
