//! Vendored minimal stand-in for `proptest`.
//!
//! Implements the slice of the API this workspace's property tests use:
//! the [`proptest!`] macro, [`Strategy`] with `prop_map`, range and tuple
//! strategies, [`any`], `collection::{vec, btree_set}`, `bool::ANY`,
//! [`ProptestConfig`], and the `prop_assert*` macros.
//!
//! Differences from upstream: failing inputs are reported but **not
//! shrunk**, and generation is deterministic per test (fixed seed unless
//! `PROPTEST_SEED` is set in the environment).

#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::fmt;
use std::ops::Range;

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The RNG driving test-case generation.
pub type TestRng = ChaCha8Rng;

/// Error returned by a failing property (via `prop_assert!`).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Runner configuration; only the case count is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Creates the RNG for one property, honoring `PROPTEST_SEED`.
pub fn test_rng(test_name: &str) -> TestRng {
    let base = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0x7e57_ca5e);
    // Mix the test name in so sibling properties draw distinct streams.
    let name_hash = test_name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3)
    });
    TestRng::seed_from_u64(base ^ name_hash)
}

/// A generator of random values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

/// A strategy producing `T`'s full "standard" distribution.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Types with a canonical [`Any`] strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for `T` (`any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl<A: Arbitrary, B: Arbitrary> Arbitrary for (A, B) {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (A::arbitrary(rng), B::arbitrary(rng))
    }
}

impl<A: Arbitrary, B: Arbitrary, C: Arbitrary> Arbitrary for (A, B, C) {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (A::arbitrary(rng), B::arbitrary(rng), C::arbitrary(rng))
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::RngCore;

    /// The strategy generating both booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u32() & 1 == 1
        }
    }

    /// Uniform over `{true, false}`.
    pub const ANY: AnyBool = AnyBool;
}

/// A size specification for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            lo: exact,
            hi: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty collection size range");
        SizeRange {
            lo: range.start,
            hi: range.end,
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::*;

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` targeting a size from `size`
    /// (fewer elements may result when draws collide).
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates sets of `element` values.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = rng.gen_range(self.size.lo..self.size.hi);
            let mut set = BTreeSet::new();
            // Collisions shrink the set; bound the attempts.
            for _ in 0..target.saturating_mul(4) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.generate(rng));
            }
            set
        }
    }
}

/// The common imports property tests pull in with `use
/// proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Asserts a condition inside a property, failing the case (not
/// panicking) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Declares property tests: each function runs its body over many random
/// draws of its `name in strategy` arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest! { @with_config ($config) $($rest)* }
    };
    (@with_config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::test_rng(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "property {} failed at case {case}/{}: {e}",
                        stringify!($name),
                        config.cases,
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest! { @with_config ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..17, f in 0.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_sizes_respect_range(v in crate::collection::vec(0u8..10, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn sets_do_not_exceed_target(
            s in crate::collection::btree_set(0u32..1000, 0..20usize),
            flag in crate::bool::ANY,
        ) {
            prop_assert!(s.len() < 20, "flag draw was {flag}");
        }

        #[test]
        fn maps_apply(pair in (0u8..5).prop_map(|x| (x, x * 2))) {
            prop_assert_eq!(pair.1, pair.0 * 2);
        }

        #[test]
        fn any_tuples_generate(t in any::<(u8, u8, u8)>()) {
            let (_a, _b, _c) = t;
            prop_assert!(true);
        }
    }

    #[test]
    #[should_panic(expected = "property always_fails failed")]
    fn failures_panic_with_context() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            fn always_fails(x in 0u8..1) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
