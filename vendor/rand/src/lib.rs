//! Vendored minimal stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of the `rand 0.8` API it actually uses:
//! [`RngCore`], [`SeedableRng`], [`Rng`] (`gen`, `gen_range`, `gen_bool`),
//! and [`seq::SliceRandom`] (`shuffle`, `choose`). Semantics follow the
//! real crate closely enough for deterministic, seeded simulation work;
//! exact output streams are *not* bit-compatible with upstream.

#![forbid(unsafe_code)]

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator seedable from a fixed-size byte seed or a single `u64`.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 as
    /// the real crate does.
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64 { state };
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A range that can produce a uniform sample (`Rng::gen_range`).
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// A type with a "standard" distribution (`Rng::gen`).
pub trait SampleStandard {
    /// Draws one sample from the standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 random mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in gen_range");
        lo + (hi - lo) * unit_f64(rng)
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the type's standard distribution.
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related sampling (`shuffle`, `choose`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(10u32..=30);
            assert!((10..=30).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = Counter(11);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*v.choose(&mut rng).unwrap() as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
