//! Vendored ChaCha8 random number generator.
//!
//! A genuine ChaCha stream cipher core (8 rounds) driving the workspace's
//! vendored [`rand`] traits. Deterministic per seed; not bit-compatible
//! with the upstream `rand_chacha` output stream.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// A ChaCha8-based RNG, seeded with 32 bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// The 16-word ChaCha input block (constants, key, counter, nonce).
    state: [u32; 16],
    /// Output buffer of the last block.
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means "exhausted".
    index: usize,
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (i, word) in working.iter().enumerate() {
            self.buffer[i] = word.wrapping_add(self.state[i]);
        }
        // 64-bit block counter in words 12..14.
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        // Counter (12, 13) and stream (14, 15) start at zero.
        ChaCha8Rng {
            state,
            buffer: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        hi << 32 | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be unrelated, {same} collisions");
    }

    #[test]
    fn counter_advances_across_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let first_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first_block, second_block);
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
