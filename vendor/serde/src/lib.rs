//! Vendored minimal stand-in for `serde`.
//!
//! The build environment has no registry access, so this crate supplies
//! the serialization machinery the workspace needs: a generic [`Value`]
//! data model, [`Serialize`]/[`Deserialize`] traits over it, impls for the
//! primitives and std containers in use, and derive macros (re-exported
//! from the vendored `serde_derive`).
//!
//! Divergences from upstream, chosen for simplicity:
//!
//! * serialization goes through the in-memory [`Value`] tree rather than a
//!   streaming visitor API;
//! * maps with non-string keys serialize as arrays of `[key, value]`
//!   pairs (upstream `serde_json` errors on them);
//! * only the `#[serde(transparent)]` container attribute is honored.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every serializable type lowers into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / unit / `None`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    UInt(u64),
    /// A signed (negative) integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map with string keys (field order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Returns the object entries if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Returns the array elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

impl fmt::Display for Value {
    /// Renders the value as JSON text (the `serde_json` text layer
    /// delegates to this).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(true) => f.write_str("true"),
            Value::Bool(false) => f.write_str("false"),
            Value::UInt(u) => write!(f, "{u}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.is_finite() {
                    // `{:?}` is the shortest representation reparsing to
                    // the same f64.
                    write!(f, "{x:?}")
                } else {
                    f.write_str("null")
                }
            }
            Value::Str(s) => write_json_string(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(entries) => {
                f.write_str("{")?;
                for (i, (key, val)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(f, key)?;
                    write!(f, ":{val}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_json_string(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Error produced when a [`Value`] does not match the expected shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error from a message.
    pub fn new(message: impl Into<String>) -> Self {
        DeError(message.into())
    }

    /// Creates a "expected X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> Self {
        DeError(format!("expected {what}, found {}", found.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Looks up a required field in an object's entries.
pub fn field<'v>(entries: &'v [(String, Value)], name: &str) -> Result<&'v Value, DeError> {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError(format!("missing field `{name}`")))
}

/// A type that can lower itself into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` to a [`Value`].
    fn to_value(&self) -> Value;
}

/// A type that can reconstruct itself from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Converts a [`Value`] back into `Self`.
    ///
    /// # Errors
    ///
    /// Returns an error when the value's shape does not match.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let raw = match value {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    other => return Err(DeError::expected("unsigned integer", other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v < 0 { Value::Int(v) } else { Value::UInt(v as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let raw: i128 = match value {
                    Value::UInt(u) => *u as i128,
                    Value::Int(i) => *i as i128,
                    other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Float(f) => Ok(*f as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Int(i) => Ok(*i as $t),
                    other => Err(DeError::expected("number", other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

macro_rules! impl_nonzero {
    ($($nz:ty => $base:ty),*) => {$(
        impl Serialize for $nz {
            fn to_value(&self) -> Value {
                self.get().to_value()
            }
        }
        impl Deserialize for $nz {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let raw = <$base>::from_value(value)?;
                <$nz>::new(raw).ok_or_else(|| DeError::new("expected nonzero integer"))
            }
        }
    )*};
}

impl_nonzero!(
    std::num::NonZeroU8 => u8,
    std::num::NonZeroU16 => u16,
    std::num::NonZeroU32 => u32,
    std::num::NonZeroU64 => u64,
    std::num::NonZeroUsize => usize
);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_array()
            .ok_or_else(|| DeError::expected("array", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value.as_array() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(DeError::expected("2-element array", value)),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value.as_array() {
            Some([a, b, c]) => Ok((A::from_value(a)?, B::from_value(b)?, C::from_value(c)?)),
            _ => Err(DeError::expected("3-element array", value)),
        }
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_array()
            .ok_or_else(|| DeError::expected("array", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_array()
            .ok_or_else(|| DeError::expected("array of pairs", value))?
            .iter()
            .map(|pair| match pair.as_array() {
                Some([k, v]) => Ok((K::from_value(k)?, V::from_value(v)?)),
                _ => Err(DeError::expected("[key, value] pair", pair)),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1u32, "a".to_string()), (2, "b".to_string())];
        let back: Vec<(u32, String)> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);

        let mut m = BTreeMap::new();
        m.insert((1u32, 2u32), 3u64);
        let back: BTreeMap<(u32, u32), u64> = Deserialize::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn shape_mismatch_errors() {
        assert!(u32::from_value(&Value::Str("x".into())).is_err());
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(<(u8, u8)>::from_value(&Value::Array(vec![Value::UInt(1)])).is_err());
        assert!(field(&[], "missing").is_err());
    }
}
