//! Vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for
//! the workspace's minimal serde stand-in.
//!
//! The macros parse the item's token stream directly (no `syn`/`quote`
//! available offline) and emit impls of the Value-based traits. Supported
//! shapes — the ones this workspace uses:
//!
//! * structs with named fields;
//! * tuple structs (single-field ones delegate to the inner value, which
//!   also covers `#[serde(transparent)]`);
//! * enums with unit, tuple, and struct variants (externally tagged, as
//!   upstream serde's default representation);
//! * no generic parameters.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum ItemKind {
    Struct(Fields),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Item {
    name: String,
    kind: ItemKind,
}

/// Derives the workspace `Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated impl parses")
}

/// Derives the workspace `Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if matches!(peek_punct(&tokens, i), Some('<')) {
        panic!("derive(Serialize/Deserialize): generics are not supported on `{name}`");
    }

    let kind = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Struct(Fields::Named(parse_named_fields(g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::Struct(Fields::Tuple(count_tuple_fields(g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => ItemKind::Struct(Fields::Unit),
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Enum(parse_variants(g.stream()))
            }
            other => panic!("unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("derive only supports structs and enums, found `{other}`"),
    };

    Item { name, kind }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                *i += 1; // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) / pub(super)
                    }
                }
            }
            _ => break,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("expected identifier, found {other:?}"),
    }
}

fn peek_punct(tokens: &[TokenTree], i: usize) -> Option<char> {
    match tokens.get(i) {
        Some(TokenTree::Punct(p)) => Some(p.as_char()),
        _ => None,
    }
}

/// Skips one type expression: everything up to a comma at angle-depth 0.
/// Returns true if a comma was consumed (more fields may follow).
fn skip_type(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut depth = 0i32;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => {
                    // `->` in fn-pointer types: the '-' was consumed on the
                    // previous iteration without touching depth, and a lone
                    // '>' here would underflow; clamp instead.
                    depth = (depth - 1).max(0);
                }
                ',' if depth == 0 => {
                    *i += 1;
                    return true;
                }
                _ => {}
            }
        }
        *i += 1;
    }
    false
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        match peek_punct(&tokens, i) {
            Some(':') => i += 1,
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        fields.push(name);
        skip_type(&tokens, &mut i);
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        count += 1;
        skip_type(&tokens, &mut i);
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an optional `= discriminant` and the separating comma.
        skip_type(&tokens, &mut i);
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Fields::Named(fields)) => {
            let entries = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Object(::std::vec![{entries}])")
        }
        ItemKind::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        ItemKind::Struct(Fields::Tuple(n)) => {
            let items = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Array(::std::vec![{items}])")
        }
        ItemKind::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        ItemKind::Enum(variants) => {
            let arms = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(\
                             ::std::string::String::from(\"{vname}\")),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vname}(f0) => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from(\"{vname}\"), \
                             ::serde::Serialize::to_value(f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binders = (0..*n)
                                .map(|k| format!("f{k}"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            let items = (0..*n)
                                .map(|k| format!("::serde::Serialize::to_value(f{k})"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!(
                                "{name}::{vname}({binders}) => \
                                 ::serde::Value::Object(::std::vec![\
                                 (::std::string::String::from(\"{vname}\"), \
                                 ::serde::Value::Array(::std::vec![{items}]))]),"
                            )
                        }
                        Fields::Named(fields) => {
                            let binders = fields.join(", ");
                            let entries = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!(
                                "{name}::{vname} {{ {binders} }} => \
                                 ::serde::Value::Object(::std::vec![\
                                 (::std::string::String::from(\"{vname}\"), \
                                 ::serde::Value::Object(::std::vec![{entries}]))]),"
                            )
                        }
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!("match self {{\n{arms}\n}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Fields::Named(fields)) => {
            let inits = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                         ::serde::field(entries, \"{f}\")?)?,"
                    )
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!(
                "let entries = value.as_object().ok_or_else(|| \
                 ::serde::DeError::expected(\"struct {name}\", value))?;\n\
                 ::std::result::Result::Ok({name} {{\n{inits}\n}})"
            )
        }
        ItemKind::Struct(Fields::Tuple(1)) => format!(
            "::std::result::Result::Ok({name}(\
             ::serde::Deserialize::from_value(value)?))"
        ),
        ItemKind::Struct(Fields::Tuple(n)) => {
            let inits = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "let items = value.as_array().ok_or_else(|| \
                 ::serde::DeError::expected(\"tuple struct {name}\", value))?;\n\
                 if items.len() != {n} {{\n\
                 return ::std::result::Result::Err(::serde::DeError::new(\
                 \"wrong arity for tuple struct {name}\"));\n}}\n\
                 ::std::result::Result::Ok({name}({inits}))"
            )
        }
        ItemKind::Struct(Fields::Unit) => {
            format!("::std::result::Result::Ok({name})")
        }
        ItemKind::Enum(variants) => {
            let unit_arms = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vname = &v.name;
                    format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),")
                })
                .collect::<Vec<_>>()
                .join("\n");
            let tagged_arms = variants
                .iter()
                .filter(|v| !matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        Fields::Unit => unreachable!(),
                        Fields::Tuple(1) => format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(\
                             ::serde::Deserialize::from_value(inner)?)),"
                        ),
                        Fields::Tuple(n) => {
                            let inits = (0..*n)
                                .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!(
                                "\"{vname}\" => {{\n\
                                 let items = inner.as_array().ok_or_else(|| \
                                 ::serde::DeError::expected(\"variant {vname} data\", inner))?;\n\
                                 if items.len() != {n} {{\n\
                                 return ::std::result::Result::Err(::serde::DeError::new(\
                                 \"wrong arity for variant {vname}\"));\n}}\n\
                                 ::std::result::Result::Ok({name}::{vname}({inits}))\n}}"
                            )
                        }
                        Fields::Named(fields) => {
                            let inits = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         ::serde::field(entries, \"{f}\")?)?,"
                                    )
                                })
                                .collect::<Vec<_>>()
                                .join("\n");
                            format!(
                                "\"{vname}\" => {{\n\
                                 let entries = inner.as_object().ok_or_else(|| \
                                 ::serde::DeError::expected(\"variant {vname} data\", inner))?;\n\
                                 ::std::result::Result::Ok({name}::{vname} {{\n{inits}\n}})\n}}"
                            )
                        }
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!(
                "match value {{\n\
                 ::serde::Value::Str(tag) => match tag.as_str() {{\n\
                 {unit_arms}\n\
                 _ => ::std::result::Result::Err(::serde::DeError::new(\
                 ::std::format!(\"unknown variant `{{tag}}` of {name}\"))),\n}},\n\
                 ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                 let (tag, inner) = &entries[0];\n\
                 match tag.as_str() {{\n\
                 {tagged_arms}\n\
                 _ => ::std::result::Result::Err(::serde::DeError::new(\
                 ::std::format!(\"unknown variant `{{tag}}` of {name}\"))),\n}}\n}},\n\
                 other => ::std::result::Result::Err(\
                 ::serde::DeError::expected(\"enum {name}\", other)),\n}}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(value: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}"
    )
}
