//! Vendored minimal stand-in for `serde_json`.
//!
//! Renders and parses JSON text over the workspace serde's [`Value`] data
//! model. Supports everything the workspace serializes: objects, arrays,
//! strings (with escapes), integers, floats (shortest-roundtrip via
//! `{:?}`), booleans, and null.

#![forbid(unsafe_code)]

use std::fmt;

use serde::{Deserialize, Serialize};

pub use serde::Value;

/// Error produced by JSON serialization or parsing.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error(message.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.to_string())
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error(e.to_string())
    }
}

/// Lowers any serializable value into the [`Value`] data model.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serializes `value` to a JSON string.
///
/// # Errors
///
/// Infallible for the supported data model; the `Result` mirrors the real
/// crate's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string())
}

/// Serializes `value` as JSON into `writer`.
///
/// # Errors
///
/// Returns an error if the writer fails.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let text = to_string(value)?;
    writer.write_all(text.as_bytes())?;
    Ok(())
}

/// Parses a value from a JSON string.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

/// Parses a value from a JSON reader.
///
/// # Errors
///
/// Returns an error on read failure, malformed JSON, or shape mismatch.
pub fn from_reader<R: std::io::Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    from_str(&text)
}

/// Builds a [`Value`] object literal, as in the real crate's macro. Only
/// the flat-object form the workspace uses is supported.
#[macro_export]
macro_rules! json {
    ({ $($key:tt : $val:expr),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $((::std::string::String::from($key), $crate::to_value(&$val))),*
        ])
    };
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid utf-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .map(|u| Value::Int(-(u as i64)))
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<i32>("-3").unwrap(), -3);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<Option<u8>>("null").unwrap(), None);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "line\nquote\"back\\slash\ttab\u{1}unicode\u{e9}".to_string();
        let json = to_string(&original).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), original);
        assert_eq!(from_str::<String>(r#""é""#).unwrap(), "\u{e9}");
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![vec![1u32, 2], vec![3]];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2],[3]]");
        assert_eq!(from_str::<Vec<Vec<u32>>>(&json).unwrap(), v);
    }

    #[test]
    fn float_precision_survives() {
        let x = 0.1f64 + 0.2;
        let json = to_string(&x).unwrap();
        assert_eq!(from_str::<f64>(&json).unwrap(), x);
    }

    #[test]
    fn json_macro_builds_objects() {
        let v = json!({ "a": 1u32, "b": "text", "c": vec![1u8, 2] });
        let text = to_string(&v).unwrap();
        assert_eq!(text, r#"{"a":1,"b":"text","c":[1,2]}"#);
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("12 34").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<String>("\"open").is_err());
    }

    #[test]
    fn display_prints_json() {
        let v = json!({ "k": 7u8 });
        assert_eq!(to_string(&v).unwrap(), r#"{"k":7}"#);
    }
}
